"""SEC6 — the architectural configurations (paper Figs. 16-18).

Machine-checks Section 6's three claims:

* Fig. 16: pass-through concatenation provides a data path but loses
  end-to-end synchronization (the concatenated system violates the
  end-to-end alternating service);
* Fig. 17: symmetric transport-level conversion cannot restore it (no
  converter exists — same instance as FIG12, posed through the
  architecture API);
* Fig. 18: the asymmetric/co-located placement can (converter exists and
  verifies — same instance as FIG14).
"""

from paper import bench_ms, emit, table

from repro.arch import (
    asymmetric_conversion_scenario,
    concatenated_system,
    concatenation_loses_end_to_end_sync,
    transport_conversion_scenario,
)
from repro.quotient import solve_quotient


def _evaluate_all():
    finding = concatenation_loses_end_to_end_sync()
    fig17 = transport_conversion_scenario()
    fig17_result = solve_quotient(
        fig17.service, fig17.composite, int_events=fig17.interface.int_events
    )
    fig18 = asymmetric_conversion_scenario()
    fig18_result = solve_quotient(
        fig18.service, fig18.composite, int_events=fig18.interface.int_events
    )
    return finding, fig17_result, fig18_result


def test_sec6_architectures(benchmark):
    finding, fig17_result, fig18_result = benchmark(_evaluate_all)

    assert finding.holds  # Fig. 16 anomaly present
    assert not fig17_result.exists  # Fig. 17: no converter
    assert fig18_result.exists  # Fig. 18: converter exists
    assert fig18_result.verification.holds

    rows = [
        [
            "Fig. 16 pass-through",
            "end-to-end sync lost",
            "REPRODUCED (" + finding.detail.split("trace ")[-1] + ")",
        ],
        ["Fig. 17 symmetric conversion", "no converter", "REPRODUCED"],
        [
            "Fig. 18 asymmetric conversion",
            "converter exists",
            f"REPRODUCED ({len(fig18_result.converter.states)} states, "
            "verified)",
        ],
    ]
    emit(
        "SEC6",
        "architectural comparison:\n"
        + table(["configuration", "paper claim", "measured"], rows),
        metrics={
            "fig16_sync_lost": finding.holds,
            "fig17_exists": fig17_result.exists,
            "fig18_exists": fig18_result.exists,
            "fig18_converter_states": len(fig18_result.converter.states),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_sec6_concatenation_size(benchmark):
    """Cost of building the 7-component concatenated system (Fig. 16)."""
    system = benchmark(concatenated_system)
    assert system.alphabet == frozenset({"acc", "del"})
    emit(
        "SEC6-concat",
        f"concatenated system: {len(system.states)} reachable states, "
        f"{len(system.internal)} internal transitions across 7 components",
        metrics={
            "reachable_states": len(system.states),
            "internal_transitions": len(system.internal),
            "mean_ms": bench_ms(benchmark),
        },
    )
