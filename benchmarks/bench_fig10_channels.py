"""FIG10 — the lossy channel models (paper Fig. 10).

Regenerates both channels and re-checks the figure's semantics: loss is an
internal transition, a loss leads to exactly one (never-premature) timeout,
and capacity is one message in flight.
"""

from paper import bench_ms, emit, table

from repro.analysis import spec_stats
from repro.protocols import AB_TIMEOUT, NS_TIMEOUT, ab_channel, ns_channel
from repro.traces import accepts, language_upto


def _build_and_probe():
    ach, nch = ab_channel(), ns_channel()
    probes = {
        "deliver": accepts(nch, ("-D", "+D")),
        "lose_then_timeout": accepts(nch, ("-D", NS_TIMEOUT)),
        "premature_timeout": accepts(nch, (NS_TIMEOUT,)),
        "overfill": accepts(nch, ("-D", "-A")),
        "ab_all_messages": all(
            accepts(ach, (f"-{m}", f"+{m}")) for m in ("d0", "d1", "a0", "a1")
        ),
        "ab_timeout_after_loss": accepts(ach, ("-d0", AB_TIMEOUT)),
    }
    return ach, nch, probes


def test_fig10_channels(benchmark):
    ach, nch, probes = benchmark(_build_and_probe)

    assert probes["deliver"]
    assert probes["lose_then_timeout"]
    assert not probes["premature_timeout"]
    assert not probes["overfill"]
    assert probes["ab_all_messages"]
    assert probes["ab_timeout_after_loss"]
    assert ach.internal and nch.internal  # loss is internal nondeterminism

    rows = [
        [s.name, s.states, s.external_transitions, s.internal_transitions]
        for s in (spec_stats(ach), spec_stats(nch))
    ]
    emit(
        "FIG10",
        "channel machines (reconstructed from Fig. 10):\n"
        + table(["machine", "states", "ext", "int(loss)"], rows)
        + "\nsemantics probes (paper's prose):\n"
        + "\n".join(
            f"  {name:24s} {'yes' if val else 'no'}"
            for name, val in probes.items()
        ),
        metrics={
            "ab_channel_states": len(ach.states),
            "ns_channel_states": len(nch.states),
            **{f"probe_{name}": bool(val) for name, val in probes.items()},
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_fig10_channel_language_growth(benchmark):
    """Depth-k language sizes — a stable structural fingerprint of the
    channel model used by regression comparisons."""
    nch = ns_channel()

    def language_sizes():
        return [len(language_upto(nch, k)) for k in range(1, 6)]

    sizes = benchmark(language_sizes)
    assert sizes == sorted(sizes)  # prefix-closure monotonicity
    emit(
        "FIG10-language",
        "NS channel trace-count by depth: "
        + ", ".join(f"k={k}:{n}" for k, n in enumerate(sizes, start=1)),
        metrics={
            **{f"traces_k{k}": n for k, n in enumerate(sizes, start=1)},
            "mean_ms": bench_ms(benchmark),
        },
    )
