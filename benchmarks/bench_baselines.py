"""BASE — head-to-head with the bottom-up baselines (Section 2).

The paper positions the top-down quotient against two prior approaches;
this bench runs all three on the paper's own conversion problem and
tabulates the comparison the prose makes qualitatively:

* **Okumura (conversion seed)** — derives a candidate from the missing
  peer entities; the candidate must then be checked globally.  Naively it
  is wrong even in the easy (co-located) configuration; with a seed that
  already encodes the bit-tracking insight it succeeds there.  In the
  symmetric configuration its failure proves nothing — only the quotient's
  emptiness certifies nonexistence.
* **Lam (projection / common image)** — the bit-erasing projection relates
  AB to NS structurally, but it is not faithful (stale-ack and duplicate
  paths have no NS counterpart) and the induced stateless relay fails
  verification.
* **top-down quotient (this paper)** — decides both configurations and is
  correct by construction.
"""

from paper import bench_ms, emit, table

from repro.baselines import (
    ConversionSeed,
    MessageCorrespondence,
    ab_to_ns_projection_map,
    is_faithful_projection,
    okumura_converter,
    relay_converter,
)
from repro.compose import compose
from repro.protocols import (
    ab_receiver,
    ab_sender,
    colocated_scenario,
    ns_receiver,
    ns_sender,
    symmetric_scenario,
)
from repro.quotient import solve_quotient
from repro.satisfy import satisfies
from repro.spec import SpecBuilder, extend_alphabet, rename_events


def _direct_ns_sender():
    return (
        SpecBuilder("N0d")
        .external(0, "acc", 1)
        .external(1, "+D", 2)
        .external(2, "-A", 0)
        .initial(0)
        .build()
    )


def _bit_tracking_seed():
    return ConversionSeed(
        SpecBuilder("seed")
        .external("init", "+d0", "h0")
        .external("h0", "+D", "w0")
        .external("w0", "-A", "b0")
        .external("b0", "-a0", "b0")
        .external("b0", "+d0", "b0")
        .external("b0", "+d1", "h1")
        .external("h1", "+D", "w1")
        .external("w1", "-A", "b1")
        .external("b1", "-a1", "b1")
        .external("b1", "+d1", "b1")
        .external("b1", "+d0", "h0")
        .initial("init")
        .build()
    )


def _run_comparison():
    colocated = colocated_scenario()
    symmetric = symmetric_scenario()
    rows = []

    # --- top-down quotient -------------------------------------------
    td_co = solve_quotient(
        colocated.service,
        colocated.composite,
        int_events=colocated.interface.int_events,
    )
    td_sym = solve_quotient(
        symmetric.service,
        symmetric.composite,
        int_events=symmetric.interface.int_events,
    )
    rows.append(
        [
            "top-down quotient",
            f"converter, {len(td_co.converter.states)} states, verified",
            "proves NO converter exists",
        ]
    )

    # --- Okumura, naive ------------------------------------------------
    naive = okumura_converter(
        ab_receiver(), _direct_ns_sender(), p_deliver="del", q_accept="acc"
    )
    naive_report = satisfies(
        compose(colocated.composite, naive.converter), colocated.service
    )
    sym_candidate = okumura_converter(
        ab_receiver(), ns_sender(), p_deliver="del", q_accept="acc"
    )
    sym_report = satisfies(
        compose(symmetric.composite, sym_candidate.converter),
        symmetric.service,
    )
    rows.append(
        [
            "Okumura, trivial seed",
            "candidate FAILS global check "
            f"({'.'.join(naive_report.safety.counterexample or ())})",
            "candidate fails; nonexistence NOT established",
        ]
    )
    assert not naive_report.holds
    assert not sym_report.holds

    # --- Okumura, full-insight seed -------------------------------------
    seeded = okumura_converter(
        ab_receiver(),
        _direct_ns_sender(),
        p_deliver="del",
        q_accept="acc",
        seed=_bit_tracking_seed(),
    )
    seeded_report = satisfies(
        compose(colocated.composite, seeded.converter), colocated.service
    )
    rows.append(
        [
            "Okumura, bit-tracking seed",
            f"converter, {len(seeded.converter.states)} states, verified",
            "seed insight does not transfer",
        ]
    )
    assert seeded_report.holds

    # --- Lam projection --------------------------------------------------
    sender_faithful = is_faithful_projection(
        ab_sender(), ns_sender(), ab_to_ns_projection_map(ab_sender(), role="sender")
    )
    receiver_faithful = is_faithful_projection(
        ab_receiver(),
        ns_receiver(),
        ab_to_ns_projection_map(ab_receiver(), role="receiver"),
    )
    relay = relay_converter(
        MessageCorrespondence(forward={"d0": "D", "d1": "D"}, backward={})
    )
    relay = rename_events(relay, {"-D": "+D"})
    relay = extend_alphabet(relay, ["-A", "-a0", "-a1"])
    relay_report = satisfies(
        compose(colocated.composite, relay), colocated.service
    )
    rows.append(
        [
            "Lam projection relay",
            "stateless relay FAILS (needs the sequence bit)",
            "no common image certificate",
        ]
    )
    assert not sender_faithful and not receiver_faithful
    assert not relay_report.holds

    return rows, td_co, td_sym


def test_baseline_comparison(benchmark):
    rows, td_co, td_sym = benchmark.pedantic(
        _run_comparison, rounds=1, iterations=1
    )
    assert td_co.exists and not td_sym.exists
    emit(
        "BASE",
        "method comparison on the paper's AB-to-NS problem:\n"
        + table(
            ["method", "co-located configuration", "symmetric configuration"],
            rows,
        )
        + "\npaper's Section 2 position (only the top-down method certifies\n"
        "nonexistence; bottom-up methods need the global check and the\n"
        "design insight up front) -> REPRODUCED",
        metrics={
            "methods_compared": len(rows),
            "colocated_exists": td_co.exists,
            "colocated_converter_states": len(td_co.converter.states),
            "symmetric_exists": td_sym.exists,
            "mean_ms": bench_ms(benchmark),
        },
    )
