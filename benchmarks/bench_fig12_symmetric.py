"""FIG12 — the symmetric configuration's quotient (paper Figs. 9 & 12).

Regenerates the safety-phase output for ``B = A0 ‖ Ach ‖ Nch ‖ N1`` and
re-checks every claim the paper makes about it:

* the safety phase yields a nonempty, safety-correct converter
  ("All possible sequences of acc and del ... are prefixes of
  accept, deliver, accept, deliver, ...");
* some traces cannot be extended — after a loss in Nch the user sees no
  further progress while C and A0 exchange useless messages forever
  (the livelock through Fig. 12's states 6/8 and 15/17);
* the progress phase therefore removes every state: **no converter
  exists**.

The timed pipeline is the full quotient computation.
"""

from paper import bench_ms, emit, table

from repro.analysis import find_livelocks
from repro.compose import compose
from repro.protocols import symmetric_scenario
from repro.quotient import solve_quotient
from repro.satisfy import satisfies_safety
from repro.traces import accepts, language_upto


def _solve():
    scen = symmetric_scenario()
    result = solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )
    return scen, result


def test_fig12_symmetric_quotient(benchmark):
    scen, result = benchmark(_solve)

    # headline: no converter exists
    assert not result.exists
    # but the safety phase succeeded with a nonempty machine
    assert result.safety.exists
    assert len(result.c0.states) > 0

    # safety-correctness of B || C0, including the alternation claim
    composite = compose(scen.composite, result.c0)
    assert satisfies_safety(composite, scen.service).holds
    for t in language_upto(composite, 4):
        assert accepts(scen.service, t)

    # the livelock region
    livelock = find_livelocks(composite)
    assert not livelock.livelock_free
    visible = tuple(e for e in (livelock.witness or ()) if e is not None)

    rounds = [
        [r.round_index, len(r.bad_states), r.remaining]
        for r in result.progress.rounds
    ]
    emit(
        "FIG12",
        f"B = {scen.composite.name}: {len(scen.composite.states)} states\n"
        f"safety phase (Fig. 12 machine): {len(result.c0.states)} states, "
        f"{len(result.c0.external)} transitions\n"
        "  B||C0 safety-correct, all acc/del traces alternate -> REPRODUCED\n"
        f"  livelock after user trace {list(visible)}: "
        f"{len(livelock.livelocked)} composite states cycle internally "
        "forever -> REPRODUCED (paper: 'C and A0 exchange useless data and\n"
        "  acknowledgement messages forever', states 6/8, 15/17 of Fig. 12)\n"
        "progress phase rounds:\n"
        + table(["round", "removed", "remaining"], rounds)
        + "\nresult: NO converter exists -> REPRODUCED",
        metrics={
            "composite_states": len(scen.composite.states),
            "c0_states": len(result.c0.states),
            "c0_transitions": len(result.c0.external),
            "converter_exists": result.exists,
            "livelocked_states": len(livelock.livelocked),
            "progress_rounds": len(result.progress.rounds),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_fig12_safety_phase_cost(benchmark):
    """Time the safety phase alone (the exponential part, Section 7)."""
    from repro.quotient import QuotientProblem, safety_phase

    scen = symmetric_scenario()
    problem = QuotientProblem.build(scen.service, scen.composite)

    sp = benchmark(safety_phase, problem)
    assert sp.exists
    emit(
        "FIG12-safety-cost",
        f"safety phase explored {sp.explored} pair sets "
        f"({sp.rejected} rejected) for a {len(sp.spec.states)}-state C0",
        metrics={
            "pairs_explored": sp.explored,
            "pairs_rejected": sp.rejected,
            "c0_states": len(sp.spec.states),
            "mean_ms": bench_ms(benchmark),
        },
    )
