"""FIG13/14 — the co-located configuration's quotient (paper Figs. 13 & 14).

Regenerates the converter for ``B = A0 ‖ Ach ‖ N1`` and re-checks the
paper's claims: a converter exists; its ``+D``/``-A`` events talk directly
to N1; the maximal machine carries superfluous-but-harmless portions (the
dotted boxes), which can be pruned while preserving correctness.
"""

from paper import bench_ms, emit, table

from repro.compose import compose
from repro.protocols import colocated_scenario
from repro.quotient import QuotientProblem, prune_converter, solve_quotient
from repro.satisfy import satisfies
from repro.traces import accepts


def _solve():
    scen = colocated_scenario()
    result = solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )
    return scen, result


def test_fig14_colocated_quotient(benchmark):
    scen, result = benchmark(_solve)

    assert result.exists
    converter = result.converter
    # interface check: direct +D / -A to N1, AB-channel side, no timeout
    assert set(converter.alphabet) == {"+d0", "+d1", "-a0", "-a1", "+D", "-A"}

    # essential behaviour of the Fig. 14 machine
    assert accepts(converter, ("+d0", "+D", "-A", "-a0"))
    assert accepts(converter, ("+d0", "+D", "-A", "-a0", "+d0", "-a0"))  # dup
    assert accepts(
        converter, ("+d0", "+D", "-A", "-a0", "+d1", "+D", "-A", "-a1")
    )

    # independent verification (different code path from the solver)
    composite = compose(scen.composite, converter)
    report = satisfies(composite, scen.service)
    assert report.holds

    rounds = [
        [r.round_index, len(r.bad_states), r.remaining]
        for r in result.progress.rounds
    ]
    emit(
        "FIG14",
        f"B = {scen.composite.name}: {len(scen.composite.states)} states\n"
        f"safety phase: {len(result.c0.states)} states; progress rounds:\n"
        + table(["round", "removed", "remaining"], rounds)
        + f"\nconverter (Fig. 14): {len(converter.states)} states, "
        f"{len(converter.external)} transitions -> EXISTS (REPRODUCED)\n"
        "  bit-0/bit-1 relay + duplicate re-acknowledgement behaviour "
        "present\n"
        f"  independently verified: {report.holds}",
        metrics={
            "composite_states": len(scen.composite.states),
            "c0_states": len(result.c0.states),
            "converter_states": len(converter.states),
            "converter_transitions": len(converter.external),
            "converter_exists": result.exists,
            "verified": report.holds,
            "progress_rounds": len(result.progress.rounds),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_fig14_superfluous_pruning(benchmark):
    """The dotted boxes: prune the maximal converter, stay correct."""
    scen, result = _solve()
    problem = QuotientProblem.build(scen.service, scen.composite)

    pruned = benchmark(
        prune_converter, problem, result.converter, result.f
    )
    assert len(pruned.states) < len(result.converter.states)
    composite = compose(scen.composite, pruned)
    assert satisfies(composite, scen.service).holds
    emit(
        "FIG14-pruned",
        f"maximal converter {len(result.converter.states)} states -> "
        f"pruned {len(pruned.states)} states; correctness preserved\n"
        "(paper: removing the superfluous portions 'is computationally\n"
        " expensive and is best done by hand' — here automated for this "
        "machine size)",
        metrics={
            "maximal_states": len(result.converter.states),
            "pruned_states": len(pruned.states),
            "mean_ms": bench_ms(benchmark),
        },
    )
