"""FIG8 — the non-sequenced protocol (paper Fig. 8).

Regenerates N0/N1 and re-checks the figure's claims: at-least-once
delivery with duplicates possible over the lossy channel — i.e. the NS
service is strictly weaker than the AB service.
"""

from paper import bench_ms, emit, table

from repro.analysis import spec_stats
from repro.protocols import (
    alternating_service,
    at_least_once_service,
    ns_end_to_end,
    ns_receiver,
    ns_sender,
)
from repro.satisfy import satisfies, satisfies_safety
from repro.traces import format_trace


def _pipeline():
    scen = ns_end_to_end()
    exact = satisfies_safety(scen.composite, alternating_service())
    weak = satisfies(scen.composite, at_least_once_service())
    return scen, exact, weak


def test_fig08_ns_protocol(benchmark):
    scen, exact, weak = benchmark(_pipeline)

    assert len(ns_sender().states) == 3
    assert len(ns_receiver().states) == 3
    assert not exact.holds  # duplicates break exactly-once
    assert exact.counterexample == ("acc", "del", "del")
    assert weak.holds  # at-least-once is satisfied

    rows = [
        [s.name, s.states, s.external_transitions, s.internal_transitions]
        for s in (
            spec_stats(ns_sender()),
            spec_stats(ns_receiver()),
            spec_stats(scen.composite),
        )
    ]
    emit(
        "FIG8",
        "NS protocol machines (reconstructed from Fig. 8):\n"
        + table(["machine", "states", "ext", "int"], rows)
        + "\npaper claims:\n"
        + "  may deliver duplicates       -> REPRODUCED, witness "
        + format_trace(exact.counterexample)
        + "\n  at-least-once delivery holds -> "
        + ("REPRODUCED" if weak.holds else "FAILED"),
        metrics={
            "composite_states": len(scen.composite.states),
            "exactly_once_holds": exact.holds,
            "at_least_once_holds": weak.holds,
            "mean_ms": bench_ms(benchmark),
        },
    )
