"""SEC5-W — weakening the service admits a converter (Section 5 remark).

The paper: "It is possible to weaken the service specification to allow
delivery of duplicates, and thereby obtain a converter" for the symmetric
configuration.  The reproduction adds a finding the prose leaves implicit:
the weakening only works when stated with the paper's own
nondeterminism-as-choice idiom —

* **nondeterministic weakening** (hub with a {del} option and an {acc}
  option after each delivery): converter EXISTS;
* **deterministic weakening** (single acceptance set {acc, del}): still NO
  converter, because both events would have to be simultaneously offerable
  while recovery is in flight.
"""

from paper import bench_ms, emit, table

from repro.protocols import (
    at_least_once_service,
    at_least_once_service_strict,
    symmetric_scenario,
)
from repro.quotient import solve_quotient
from repro.traces import language_upto


def _solve_both():
    scen = symmetric_scenario()
    nondet = solve_quotient(
        at_least_once_service(),
        scen.composite,
        int_events=scen.interface.int_events,
    )
    strict = solve_quotient(
        at_least_once_service_strict(),
        scen.composite,
        int_events=scen.interface.int_events,
    )
    return scen, nondet, strict


def test_sec5_weakened_service(benchmark):
    scen, nondet, strict = benchmark(_solve_both)

    # both weakenings share the same trace set ...
    assert language_upto(at_least_once_service(), 5) == language_upto(
        at_least_once_service_strict(), 5
    )
    # ... but only the nondeterministic one admits a converter
    assert nondet.exists
    assert nondet.verification.holds
    assert not strict.exists

    rows = [
        [
            "nondet (hub/options)",
            "(acc del+)*",
            "{del} | {acc}",
            "EXISTS" if nondet.exists else "none",
            len(nondet.converter.states) if nondet.exists else "-",
        ],
        [
            "deterministic",
            "(acc del+)*",
            "{acc, del}",
            "EXISTS" if strict.exists else "none",
            "-",
        ],
    ]
    emit(
        "SEC5-W",
        "symmetric configuration with the duplicate-tolerant service:\n"
        + table(
            ["weakening", "trace set", "acceptance after del", "converter",
             "states"],
            rows,
        )
        + "\npaper claim (converter obtainable by weakening) -> REPRODUCED\n"
        "additional finding: the weakening must use the paper's\n"
        "nondeterministic choice structure; equal trace sets are not enough.",
        metrics={
            "nondet_exists": nondet.exists,
            "nondet_converter_states": len(nondet.converter.states),
            "strict_exists": strict.exists,
            "mean_ms": bench_ms(benchmark),
        },
    )
