"""SEC7 — the complexity claims of Section 7.

The paper: the quotient problem is PSPACE-hard; the algorithm is
exponential in the worst case, but "the progress phase does not add
significantly to its complexity (it is polynomial in the size of the
quotient produced by the safety phase)".

Two sweeps reproduce the *shape* of those claims:

* **exponential safety phase** — a family of k independent relay problems
  (disjoint alphabets, composed): the safety phase's explored pair-set
  count grows exponentially in k;
* **polynomial progress phase** — across instances with growing
  safety-phase outputs, progress-phase work stays a low-order polynomial
  of |C0| (measured as composite τ* evaluations ∝ pairs × rounds).
"""

import time

from paper import bench_ms, emit, table

from repro.compose import compose_many
from repro.quotient import QuotientProblem, progress_phase, safety_phase, solve_quotient
from repro.spec import SpecBuilder, use_kernel


def _relay_problem(k: int):
    """k independent x_i -> m_i -> n_i -> y_i relays, one joint service."""
    services = []
    components = []
    for i in range(k):
        services.append(
            SpecBuilder(f"A{i}")
            .external(0, f"x{i}", 1)
            .external(1, f"y{i}", 0)
            .initial(0)
            .build()
        )
        components.append(
            SpecBuilder(f"B{i}")
            .external(0, f"x{i}", 1)
            .external(1, f"m{i}", 2)
            .external(2, f"n{i}", 3)
            .external(3, f"y{i}", 0)
            .initial(0)
            .build()
        )
    service = compose_many(services, name=f"A^{k}")
    component = compose_many(components, name=f"B^{k}")
    return service, component


def _sweep(max_k: int):
    rows = []
    for k in range(1, max_k + 1):
        service, component = _relay_problem(k)
        problem = QuotientProblem.build(service, component)
        t0 = time.perf_counter()
        sp = safety_phase(problem)
        t_safety = time.perf_counter() - t0
        t0 = time.perf_counter()
        pp = progress_phase(problem, sp.spec, sp.f)
        t_progress = time.perf_counter() - t0
        rows.append(
            {
                "k": k,
                "c0_states": len(sp.spec.states),
                "explored": sp.explored,
                "t_safety_ms": t_safety * 1e3,
                "rounds": len(pp.rounds),
                "t_progress_ms": t_progress * 1e3,
                "exists": pp.exists,
            }
        )
    return rows


def test_sec7_exponential_safety_phase(benchmark):
    rows = benchmark.pedantic(_sweep, args=(3,), rounds=1, iterations=1)

    # exponential shape: explored pair sets grow by more than 2x per k
    explored = [r["explored"] for r in rows]
    assert explored[1] / explored[0] > 2
    assert explored[2] / explored[1] > 2
    assert all(r["exists"] for r in rows)

    # wall times are machine-dependent: they go to BENCH_quotient.json,
    # never into the diffed text report (output-hygiene policy)
    emit(
        "SEC7-safety",
        "safety-phase growth over k independent relay problems:\n"
        + table(
            ["k", "|C0|", "pair sets explored"],
            [[r["k"], r["c0_states"], r["explored"]] for r in rows],
        )
        + "\npaper claim: worst-case exponential safety phase -> shape "
        "REPRODUCED\n"
        f"  growth ratios: {explored[1] / explored[0]:.1f}x, "
        f"{explored[2] / explored[1]:.1f}x per added relay",
        metrics={
            **{f"explored_k{r['k']}": r["explored"] for r in rows},
            **{
                f"safety_ms_k{r['k']}": round(r["t_safety_ms"], 3)
                for r in rows
            },
            **{
                f"progress_ms_k{r['k']}": round(r["t_progress_ms"], 3)
                for r in rows
            },
            "growth_ratio_k2": round(explored[1] / explored[0], 2),
            "growth_ratio_k3": round(explored[2] / explored[1], 2),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_sec7_kernel_speedup(benchmark):
    """The compiled integer-indexed kernel against the reference labeled
    paths on the largest relay instance (k=5, the biggest size this file
    configures).  The text report carries only deterministic work counters
    and the machine-equality verdict; wall times and the speedup factor are
    machine-dependent and go to the JSON metrics only."""
    k = 5
    service, component = _relay_problem(k)
    problem = QuotientProblem.build(service, component)

    def run_phases(enabled: bool):
        with use_kernel(enabled):
            t0 = time.perf_counter()
            sp = safety_phase(problem)
            t_safety = time.perf_counter() - t0
            t0 = time.perf_counter()
            pp = progress_phase(problem, sp.spec, sp.f)
            t_progress = time.perf_counter() - t0
        return sp, pp, t_safety * 1e3, t_progress * 1e3

    ref_sp, ref_pp, ref_safety_ms, ref_progress_ms = run_phases(False)
    sp, pp, kernel_safety_ms, kernel_progress_ms = benchmark.pedantic(
        run_phases, args=(True,), rounds=1, iterations=1
    )

    # identical outputs, work counters, and per-round removal records
    assert sp.spec == ref_sp.spec
    assert sp.f == ref_sp.f
    assert (sp.explored, sp.rejected) == (ref_sp.explored, ref_sp.rejected)
    assert pp.spec == ref_pp.spec
    assert pp.rounds == ref_pp.rounds

    ref_ms = ref_safety_ms + ref_progress_ms
    kernel_ms = kernel_safety_ms + kernel_progress_ms
    speedup = ref_ms / kernel_ms
    # conservative in-test floor (measured ~18x; see BENCH_quotient.json)
    assert speedup > 3

    emit(
        "SEC7-kernel",
        "compiled kernel vs reference labeled paths on the largest relay\n"
        f"instance (k={k}); both paths must produce identical machines:\n"
        + table(
            ["k", "|C0|", "pair sets explored", "progress rounds"],
            [[k, len(sp.spec.states), sp.explored, len(pp.rounds)]],
        )
        + "\nkernel output == reference output (C0, f, converter, per-round\n"
        "removals, work counters) -> VERIFIED\n"
        "wall times and the speedup factor are machine-dependent: see the\n"
        "kernel_* metrics in BENCH_quotient.json",
        metrics={
            "k": k,
            "c0_states": len(sp.spec.states),
            "explored_k5": sp.explored,
            "rounds": len(pp.rounds),
            "ref_safety_ms": round(ref_safety_ms, 3),
            "ref_progress_ms": round(ref_progress_ms, 3),
            "kernel_safety_ms": round(kernel_safety_ms, 3),
            "kernel_progress_ms": round(kernel_progress_ms, 3),
            "speedup": round(speedup, 2),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_sec7_progress_phase_polynomial(benchmark):
    """Progress-phase work against |C0| on the paper's own instances plus
    the relay family: the work/|C0| ratio stays bounded by a low-order
    polynomial.  Work is measured deterministically with the obs counters
    (pairs checked across removal rounds, i.e. composite τ* evaluations),
    so the text report is machine-independent; wall times go to the JSON
    metrics only."""
    from repro import obs
    from repro.protocols import colocated_scenario, symmetric_scenario

    def sweep():
        rows = []
        instances = []
        for k in (1, 2, 3):
            service, component = _relay_problem(k)
            instances.append((f"relay^{k}", service, component))
        for scen, label in (
            (colocated_scenario(), "Fig13"),
            (symmetric_scenario(), "Fig9"),
        ):
            instances.append((label, scen.service, scen.composite))
        for label, service, component in instances:
            problem = QuotientProblem.build(service, component)
            sp = safety_phase(problem)
            t0 = time.perf_counter()
            with obs.use_collector(obs.MetricsCollector()) as collector:
                pp = progress_phase(problem, sp.spec, sp.f)
            dt = time.perf_counter() - t0
            checked = collector.counters.get(
                "quotient.progress.pairs_checked", 0
            )
            n = len(sp.spec.states)
            rows.append(
                [label, n, len(pp.rounds), checked,
                 f"{checked / max(n, 1):.1f}", dt * 1e3]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # polynomial shape: total work bounded by |C0|^2 while |C0| spans 4..58
    assert all(r[3] <= r[1] ** 2 for r in rows)
    emit(
        "SEC7-progress",
        "progress-phase work vs safety-phase output size (work = pairs\n"
        "checked = composite τ* evaluations, from the obs counters):\n"
        + table(
            ["instance", "|C0|", "rounds", "pairs checked", "per C0 state"],
            [r[:5] for r in rows],
        )
        + "\npaper claim: progress phase polynomial in |C0| -> shape "
        "REPRODUCED (per-state work stays low-order while |C0| varies)",
        metrics={
            "instances": len(rows),
            "max_c0_states": max(r[1] for r in rows),
            **{f"pairs_checked_{r[0]}": r[3] for r in rows},
            **{f"progress_ms_{r[0]}": round(r[5], 3) for r in rows},
            "mean_ms": bench_ms(benchmark),
        },
    )
