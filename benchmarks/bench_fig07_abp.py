"""FIG7 — the alternating-bit protocol (paper Fig. 7).

Regenerates the AB sender/receiver machines and re-checks the figure's
implicit claims: a 6-state sender and 6-state receiver which, composed
with their (lossy) channel, provide exactly-once alternating delivery.
The timing measures the full construct-compose-verify pipeline.
"""

from paper import bench_ms, emit, table

from repro.analysis import spec_stats
from repro.protocols import ab_end_to_end, ab_receiver, ab_sender
from repro.satisfy import satisfies


def _pipeline():
    scen = ab_end_to_end(lossy=True)
    report = satisfies(scen.composite, scen.service)
    return scen, report


def test_fig07_ab_protocol(benchmark):
    scen, report = benchmark(_pipeline)

    a0, a1 = ab_sender(), ab_receiver()
    assert len(a0.states) == 6
    assert len(a1.states) == 6
    assert report.holds  # exactly-once alternating delivery over loss

    rows = [
        [s.name, s.states, s.external_transitions, s.internal_transitions]
        for s in (spec_stats(a0), spec_stats(a1), spec_stats(scen.composite))
    ]
    emit(
        "FIG7",
        "AB protocol machines (reconstructed from Fig. 7) and their\n"
        "composition with the lossy channel:\n"
        + table(["machine", "states", "ext", "int"], rows)
        + "\npaper claim: exactly-once alternating delivery  ->  "
        + ("REPRODUCED" if report.holds else "FAILED")
        + f"\n  ({report.safety.describe()}; {report.progress.describe()})",
        metrics={
            "sender_states": len(a0.states),
            "receiver_states": len(a1.states),
            "composite_states": len(scen.composite.states),
            "holds": report.holds,
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_fig07_ab_over_reliable_channel(benchmark):
    def pipeline():
        scen = ab_end_to_end(lossy=False)
        return satisfies(scen.composite, scen.service)

    report = benchmark(pipeline)
    assert report.holds
    emit(
        "FIG7-reliable",
        "AB protocol over a reliable channel also satisfies the service\n"
        "(timeouts declared but never firing): "
        + ("REPRODUCED" if report.holds else "FAILED"),
        metrics={
            "holds": report.holds,
            "mean_ms": bench_ms(benchmark),
        },
    )
