"""SEC7-parallel — the states/sec-vs-workers scaling curve.

Runs the two quotient phases on a large SEC7 relay instance (k=7 by
default: a 16384-state composite component) at workers ∈ {1, 2, 4} via
:mod:`repro.quotient.parallel`, and records throughput (work units per
second: safety pair sets explored + progress pairs checked, over the
summed phase wall time) per worker count into ``BENCH_quotient.json``.

Honesty policy: wall times and speedups are machine-dependent, so they
live only in the JSON — alongside the host's **available CPU count**,
because on a 1-CPU container every ``workers > 1`` point is pure
scheduling overhead and the curve slopes *down*.  The speedup assertion
(≥ 2.5x at 4 workers) therefore only gates hosts with ≥ 4 CPUs; the
byte-identity assertions run everywhere, always — they are the contract
that makes the parallel kernel shippable at all.

The committed text report carries deterministic work counters and the
identity verdict only (output-hygiene policy, see paper.py).

``REPRO_SCALING_K`` overrides the instance size (e.g. 8 on a beefy
multicore host); the committed report pins the default k=7.
"""

import os
import time

from paper import emit, table

from bench_sec7_complexity import _relay_problem

from repro import obs
from repro.quotient import (
    QuotientProblem,
    progress_phase,
    safety_phase,
    use_workers,
)

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.5  # at 4 workers, on hosts that actually have >= 4 CPUs


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _scaling_k() -> int:
    raw = os.environ.get("REPRO_SCALING_K")
    try:
        return max(1, int(raw)) if raw else 7
    except ValueError:
        return 7


def _phase_key(sp, pp):
    """Every result-bearing output of the two phases, for byte-compare."""
    return (
        sp.spec,
        sp.f,
        sp.explored,
        sp.rejected,
        sp.exists,
        pp.spec,
        pp.rounds,
        pp.exists,
    )


def _run_phases(problem, workers):
    """Both phases under *workers*; returns (key, work_units, seconds)."""
    with use_workers(workers):
        t0 = time.perf_counter()
        sp = safety_phase(problem)
        with obs.use_collector(obs.MetricsCollector()) as collector:
            pp = progress_phase(problem, sp.spec, sp.f)
        elapsed = time.perf_counter() - t0
    checked = collector.counters.get("quotient.progress.pairs_checked", 0)
    return _phase_key(sp, pp), sp.explored + checked, elapsed


def test_sec7_parallel_scaling():
    k = _scaling_k()
    cpus = _available_cpus()
    service, component = _relay_problem(k)
    problem = QuotientProblem.build(service, component)

    results = {}
    for workers in WORKER_COUNTS:
        key, units, elapsed = _run_phases(problem, workers)
        results[workers] = {
            "key": key,
            "units": units,
            "elapsed_s": elapsed,
            "states_per_sec": units / elapsed if elapsed > 0 else 0.0,
        }

    # the contract: every worker count produces byte-identical phase
    # outputs and identical deterministic work counters — unconditionally
    base = results[1]
    for workers in WORKER_COUNTS[1:]:
        assert results[workers]["key"] == base["key"], (
            f"workers={workers} diverged from the sequential kernel"
        )
        assert results[workers]["units"] == base["units"]

    speedups = {
        w: base["elapsed_s"] / results[w]["elapsed_s"] for w in WORKER_COUNTS
    }
    # throughput scaling is a property of the host, not the algorithm:
    # only gate it where the CPUs to scale onto actually exist
    if cpus >= 4:
        assert speedups[4] >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at 4 workers on a {cpus}-CPU "
            f"host, measured {speedups[4]:.2f}x"
        )

    emit(
        "SEC7-parallel",
        f"parallel scaling on the k={k} relay instance "
        f"(workers swept: {', '.join(map(str, WORKER_COUNTS))}):\n"
        + table(
            ["workers", "work units", "identical to sequential"],
            [
                [w, results[w]["units"], "yes" if w == 1 else "yes (verified)"]
                for w in WORKER_COUNTS
            ],
        )
        + "\nwork units = safety pair sets explored + progress pairs "
        "checked;\nidentity covers the full phase outputs (C0, f, rounds, "
        "counters).\nthroughput and speedup are machine-dependent: see "
        "BENCH_quotient.json\n(metrics include the host CPU count; the "
        f">= {SPEEDUP_TARGET}x @ 4 workers gate\napplies on hosts with "
        ">= 4 CPUs).",
        metrics={
            "k": k,
            "cpu_count": cpus,
            "work_units": base["units"],
            "identical_w2": True,
            "identical_w4": True,
            "states_per_sec_w1": round(results[1]["states_per_sec"], 1),
            "states_per_sec_w2": round(results[2]["states_per_sec"], 1),
            "states_per_sec_w4": round(results[4]["states_per_sec"], 1),
            "speedup_w2": round(speedups[2], 3),
            "speedup_w4": round(speedups[4], 3),
            "speedup_target_w4": SPEEDUP_TARGET,
            "speedup_gate_active": cpus >= 4,
        },
    )
