"""Shared helpers for the benchmark harness, plus its command-line driver.

Every benchmark regenerates one artifact of the paper's evaluation (a
figure's machine, or a prose claim about it), asserts the qualitative
result the paper states, and *emits* a report twice:

* human-readable text — printed and written under ``benchmarks/out/``
  (committed, referenced by EXPERIMENTS.md);
* machine-readable metrics — a per-experiment dict passed to
  :func:`emit`, aggregated by the pytest session (see ``conftest.py``)
  into the repo-root ``BENCH_quotient.json``, the file that carries the
  repo's perf trajectory across PRs.

Output-hygiene policy (see also docs/observability.md): the committed
``benchmarks/out/*.txt`` files and ``BENCH_quotient.json`` are regenerated
by running the full suite (``python benchmarks/paper.py``); CI runs a fast
subset and validates the JSON schema; ``python benchmarks/paper.py
--check`` regenerates into a scratch directory and fails if any committed
text report went stale.  Timing fields (``*_ms``) are machine-dependent
and therefore live only in the JSON, never in the diffed text reports.

Run ``python benchmarks/paper.py --help`` for the driver's modes.
"""

from __future__ import annotations

import argparse
import contextlib
import difflib
import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)

#: Text reports directory; override with REPRO_BENCH_OUT (used by --check).
OUT_DIR = os.environ.get("REPRO_BENCH_OUT", os.path.join(HERE, "out"))

#: Aggregated metrics file; override with REPRO_BENCH_JSON.
BENCH_JSON = os.environ.get(
    "REPRO_BENCH_JSON", os.path.join(REPO_ROOT, "BENCH_quotient.json")
)

#: The CI smoke subset: fast, covers solve + satisfy + simulate pipelines.
SMOKE_BENCHES = [
    "bench_fig07_abp.py",
    "bench_fig14_colocated.py",
    "bench_sec5_weakened.py",
    "bench_simulation.py",
]

_METRICS: dict[str, dict] = {}


def emit(exp_id: str, text: str, metrics: dict | None = None) -> str:
    """Print an experiment report, persist it, and register its metrics.

    *metrics* is the machine-readable side of the report: a flat-ish dict
    of numbers/strings/bools destined for ``BENCH_quotient.json``.  Every
    experiment must provide at least one metric (the aggregator validates
    this), so a bench cannot silently drop out of the perf trajectory.
    """
    banner = f"[{exp_id}]"
    body = f"{banner}\n{text.rstrip()}\n"
    print("\n" + body)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{exp_id}.txt"), "w", encoding="utf-8") as fh:
        fh.write(body)
    _METRICS[exp_id] = dict(metrics or {})
    return body


def table(headers: list[str], rows: list[list[object]]) -> str:
    """Aligned text table (thin wrapper over the library renderer)."""
    from repro.io import render_table

    return render_table(headers, rows)


def bench_ms(benchmark) -> float | None:
    """Mean wall time of a pytest-benchmark fixture in ms (None when the
    run used ``--benchmark-disable`` and no stats exist)."""
    try:
        return round(benchmark.stats.stats.mean * 1000.0, 3)
    except Exception:
        return None


def metrics_registry() -> dict[str, dict]:
    """The experiments emitted so far in this process (exp_id → metrics)."""
    return _METRICS


# ----------------------------------------------------------------------
# BENCH_quotient.json: aggregation and validation
# ----------------------------------------------------------------------
def write_bench_json(path: str | None = None) -> str:
    """Merge this session's metrics into the aggregate file.

    Merging (rather than overwriting) keeps subset runs — the CI smoke
    job, a single re-run module — from erasing experiments they did not
    execute.  The write is crash-safe: the merged payload goes to a
    temporary file in the same directory and is renamed over the target,
    so a crash mid-write can never leave a truncated aggregate behind.
    """
    target = path or BENCH_JSON
    experiments: dict[str, dict] = {}
    if os.path.exists(target):
        try:
            with open(target, "r", encoding="utf-8") as fh:
                previous = json.load(fh)
            experiments = dict(previous.get("experiments", {}))
        except (OSError, ValueError):
            experiments = {}
    for exp_id, metrics in _METRICS.items():
        experiments[exp_id] = {"metrics": metrics}
    payload = {
        "version": 1,
        "suite": "quotient",
        "source": "benchmarks/ (see benchmarks/paper.py)",
        "experiments": {k: experiments[k] for k in sorted(experiments)},
    }
    directory = os.path.dirname(os.path.abspath(target))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return target


def validate_bench_json(path: str) -> list[str]:
    """Schema problems of a BENCH file ([] when valid).

    Checks: top-level shape, at least one experiment, every experiment
    has a non-empty ``metrics`` dict of scalar values.
    """
    problems: list[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        return [f"cannot read {path!r}: {exc}"]
    except ValueError as exc:
        return [f"{path!r} is not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"{path!r}: top level must be an object"]
    if payload.get("version") != 1:
        problems.append(f"version must be 1, got {payload.get('version')!r}")
    if payload.get("suite") != "quotient":
        problems.append(f"suite must be 'quotient', got {payload.get('suite')!r}")
    experiments = payload.get("experiments")
    if not isinstance(experiments, dict) or not experiments:
        problems.append("experiments must be a non-empty object")
        return problems
    for exp_id, entry in sorted(experiments.items()):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("metrics"), dict
        ):
            problems.append(f"{exp_id}: entry must be an object with 'metrics'")
            continue
        metrics = entry["metrics"]
        if not metrics:
            problems.append(f"{exp_id}: metrics must not be empty")
        for key, value in sorted(metrics.items()):
            if not isinstance(value, (int, float, str, bool)) and value is not None:
                problems.append(
                    f"{exp_id}: metric {key!r} has non-scalar value {value!r}"
                )
    return problems


# ----------------------------------------------------------------------
# perf gate: deterministic work counters vs the committed baseline
# ----------------------------------------------------------------------
def _ensure_import_paths() -> None:
    src = os.path.join(REPO_ROOT, "src")
    for entry in (src, HERE):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _sec7_work_counters() -> dict[str, dict[str, float]]:
    """Recompute the SEC7 *work* counters in-process (kernel on, cheap).

    These are deterministic exploration counts — pair sets examined by the
    safety phase, pairs checked by the progress phase — not wall times, so
    they are stable across machines and suitable for a CI regression gate.
    """
    _ensure_import_paths()
    from bench_sec7_complexity import _relay_problem

    from repro import obs
    from repro.protocols import colocated_scenario, symmetric_scenario
    from repro.quotient import QuotientProblem, progress_phase, safety_phase

    fresh: dict[str, dict[str, float]] = {
        "SEC7-safety": {},
        "SEC7-progress": {},
        "SEC7-kernel": {},
    }
    instances = []
    for k in (1, 2, 3):
        service, component = _relay_problem(k)
        instances.append((f"relay^{k}", service, component))
    for scen, label in (
        (colocated_scenario(), "Fig13"),
        (symmetric_scenario(), "Fig9"),
    ):
        instances.append((label, scen.service, scen.composite))
    for label, service, component in instances:
        problem = QuotientProblem.build(service, component)
        sp = safety_phase(problem)
        with obs.use_collector(obs.MetricsCollector()) as collector:
            progress_phase(problem, sp.spec, sp.f)
        checked = collector.counters.get("quotient.progress.pairs_checked", 0)
        if label.startswith("relay^"):
            k = int(label.split("^")[1])
            fresh["SEC7-safety"][f"explored_k{k}"] = sp.explored
        fresh["SEC7-progress"][f"pairs_checked_{label}"] = checked
    service, component = _relay_problem(5)
    problem = QuotientProblem.build(service, component)
    sp = safety_phase(problem)
    pp = progress_phase(problem, sp.spec, sp.f)
    fresh["SEC7-kernel"]["explored_k5"] = sp.explored
    fresh["SEC7-kernel"]["c0_states"] = len(sp.spec.states)
    fresh["SEC7-kernel"]["rounds"] = len(pp.rounds)
    return fresh


#: Stable ledger fingerprint of the SEC7 work-counter suite (the bench
#: "problem" never varies, so its identity is a constant digest).
BENCH_FINGERPRINT_SEED = b"repro-bench:SEC7"


def bench_fingerprint() -> str:
    import hashlib

    return hashlib.sha256(BENCH_FINGERPRINT_SEED).hexdigest()


def record_bench_run(path: str) -> int:
    """Append one ``bench`` run record with the SEC7 work counters.

    The record lands in the same run ledger the CLI's ``--ledger`` flag
    writes, so ``repro-converter history diff`` (and :func:`perf_gate`
    pointed at the ledger) can compare bench runs across sessions.
    """
    _ensure_import_paths()
    from repro.obs.ledger import append_run, flatten_work

    counters = _sec7_work_counters()
    record = append_run(
        path,
        kind="bench",
        fingerprint=bench_fingerprint(),
        label="SEC7 work counters",
        work=flatten_work(counters),
        phases=counters,
    )
    print(f"ledger: recorded bench run {record.run_id} in {path}")
    return record.run_id


def _ledger_baseline(path: str) -> tuple[dict | None, list[str]]:
    """The newest bench record's counters, nested exp → counter → value."""
    _ensure_import_paths()
    from repro.obs.ledger import Ledger

    records = [r for r in Ledger(path).read() if r.kind == "bench"]
    if not records:
        return None, [f"ledger {path!r} has no bench records to gate against"]
    nested: dict[str, dict[str, float]] = {}
    for key, value in records[-1].work.items():
        exp_id, _, counter = key.partition(".")
        nested.setdefault(exp_id, {})[counter] = value
    return nested, []


def _is_ledger_file(payload: object) -> bool:
    return (
        isinstance(payload, dict)
        and isinstance(payload.get("body"), dict)
        and payload["body"].get("kind") == "ledger"
    )


def perf_gate(path: str) -> list[str]:
    """Regressions of the deterministic SEC7 work counters ([] when clean).

    *path* is either a committed ``BENCH_quotient.json`` or a run ledger
    (the envelope is auto-detected); with a ledger, the newest ``bench``
    record is the baseline.  Fails when a fresh counter *exceeds* its
    baseline (the algorithm started doing more work); a fresh counter
    below the baseline is an improvement and only asks for a refresh.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read baseline {path!r}: {exc}"]
    problems: list[str] = []
    if _is_ledger_file(payload):
        baseline_by_exp, problems = _ledger_baseline(path)
        if baseline_by_exp is None:
            return problems
    else:
        committed = payload.get("experiments", {})
        baseline_by_exp = {
            exp_id: entry.get("metrics")
            for exp_id, entry in committed.items()
            if isinstance(entry, dict)
        }
    for exp_id, counters in sorted(_sec7_work_counters().items()):
        base = baseline_by_exp.get(exp_id)
        if not isinstance(base, dict):
            problems.append(f"{exp_id}: no committed baseline in {path}")
            continue
        for key, value in sorted(counters.items()):
            baseline = base.get(key)
            if baseline is None:
                problems.append(f"{exp_id}: baseline lacks counter {key!r}")
            elif value > baseline:
                problems.append(
                    f"{exp_id}.{key}: work regressed ({baseline} -> {value})"
                )
            elif value < baseline:
                print(
                    f"note: {exp_id}.{key} improved ({baseline} -> {value}); "
                    "refresh the baseline with: python benchmarks/paper.py"
                )
    return problems


# ----------------------------------------------------------------------
# the driver: regenerate / check / validate
# ----------------------------------------------------------------------
def _run_suite(out_dir: str, bench_json: str, *, smoke: bool = False) -> int:
    """Run the benchmark suite with redirected outputs; returns exit code."""
    targets = (
        [os.path.join(HERE, name) for name in SMOKE_BENCHES] if smoke else [HERE]
    )
    env = dict(os.environ)
    env["REPRO_BENCH_OUT"] = out_dir
    env["REPRO_BENCH_JSON"] = bench_json
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider", *targets]
    return subprocess.call(cmd, env=env, cwd=REPO_ROOT)


def _diff_reports(committed_dir: str, fresh_dir: str) -> list[str]:
    """Stale/missing/extra report files, with short unified diffs."""
    problems: list[str] = []
    committed = {
        name for name in os.listdir(committed_dir) if name.endswith(".txt")
    } if os.path.isdir(committed_dir) else set()
    fresh = {name for name in os.listdir(fresh_dir) if name.endswith(".txt")}
    for name in sorted(committed - fresh):
        problems.append(f"{name}: committed but no benchmark regenerates it")
    for name in sorted(fresh - committed):
        problems.append(f"{name}: generated but not committed")
    for name in sorted(committed & fresh):
        with open(os.path.join(committed_dir, name), encoding="utf-8") as fh:
            old = fh.readlines()
        with open(os.path.join(fresh_dir, name), encoding="utf-8") as fh:
            new = fh.readlines()
        if old != new:
            diff = list(
                difflib.unified_diff(
                    old, new, fromfile=f"committed/{name}", tofile=f"fresh/{name}"
                )
            )[:30]
            problems.append(f"{name}: STALE\n" + "".join(diff))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="paper.py",
        description=(
            "Benchmark harness driver: regenerate the committed text "
            "reports and BENCH_quotient.json, check them for staleness, "
            "or validate the metrics file schema."
        ),
    )
    parser.add_argument(
        "--check", action="store_true",
        help="regenerate reports into a scratch directory and fail if any "
        "committed benchmarks/out/*.txt differs (the output-hygiene gate)",
    )
    parser.add_argument(
        "--validate", metavar="FILE", default=None,
        help="validate a BENCH_quotient.json against the schema and exit",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the fast CI subset of benchmarks",
    )
    parser.add_argument(
        "--perf-gate", nargs="?", const=BENCH_JSON, default=None,
        metavar="FILE",
        help="recompute the deterministic SEC7 work counters and fail if "
        "any exceeds its baseline in FILE — a committed "
        "BENCH_quotient.json or a run ledger (newest bench record); "
        "wall times are never compared",
    )
    parser.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="append the SEC7 work counters as one 'bench' record to this "
        "run ledger (inspect with: repro-converter history)",
    )
    args = parser.parse_args(argv)

    if args.ledger is not None:
        record_bench_run(args.ledger)
        if not (args.check or args.smoke or args.validate or args.perf_gate):
            return 0

    if args.perf_gate is not None:
        problems = perf_gate(args.perf_gate)
        if problems:
            print("perf gate FAILED (deterministic work counters regressed):")
            for p in problems:
                print(f"  {p}")
            return 1
        print(f"perf gate passed against {args.perf_gate}")
        return 0

    if args.validate is not None:
        problems = validate_bench_json(args.validate)
        if problems:
            for p in problems:
                print(f"INVALID: {p}")
            return 1
        print(f"{args.validate}: valid ({len(json.load(open(args.validate))['experiments'])} experiments)")
        return 0

    if args.check:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
            fresh_out = os.path.join(scratch, "out")
            fresh_json = os.path.join(scratch, "BENCH_quotient.json")
            code = _run_suite(fresh_out, fresh_json, smoke=args.smoke)
            if code != 0:
                print(f"benchmark suite failed (exit {code})")
                return code
            problems = _diff_reports(os.path.join(HERE, "out"), fresh_out)
            if args.smoke:
                # a subset run regenerates only some reports; ignore the rest
                problems = [p for p in problems if "STALE" in p]
            if problems:
                print("committed benchmark output is stale:\n")
                for p in problems:
                    print(p)
                print(
                    "\nregenerate with: python benchmarks/paper.py "
                    "(and commit benchmarks/out/ + BENCH_quotient.json)"
                )
                return 1
            print("benchmarks/out/ is up to date")
            return 0

    code = _run_suite(OUT_DIR, BENCH_JSON, smoke=args.smoke)
    if code == 0:
        print(f"\nreports: {OUT_DIR}\nmetrics: {BENCH_JSON}")
    return code


if __name__ == "__main__":
    sys.exit(main())
