"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation (a
figure's machine, or a prose claim about it), asserts the qualitative
result the paper states, and *emits* a small text report — printed and
written under ``benchmarks/out/`` so EXPERIMENTS.md can reference the
regenerated numbers.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(exp_id: str, text: str) -> str:
    """Print an experiment report and persist it to benchmarks/out/."""
    banner = f"[{exp_id}]"
    body = f"{banner}\n{text.rstrip()}\n"
    print("\n" + body)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{exp_id}.txt"), "w", encoding="utf-8") as fh:
        fh.write(body)
    return body


def table(headers: list[str], rows: list[list[object]]) -> str:
    """Aligned text table (thin wrapper over the library renderer)."""
    from repro.io import render_table

    return render_table(headers, rows)
