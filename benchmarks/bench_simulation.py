"""SIM — operational validation of the analytical results.

Executes the paper's systems with the discrete-event engine under seeded
fair policies and confirms, at runtime, what the satisfaction checker
proved analytically:

* the AB protocol runs clean (monitor green) across seeds;
* the NS protocol exhibits the duplicate-delivery violation under loss
  pressure, with the monitor catching `...del.del`;
* the derived Fig. 14 converter, dropped into a live system, alternates
  accept/deliver indefinitely.
"""

from paper import bench_ms, emit, table

from repro.protocols import (
    ab_channel,
    ab_receiver,
    ab_sender,
    alternating_service,
    colocated_scenario,
    ns_channel,
    ns_receiver,
    ns_sender,
)
from repro.quotient import solve_quotient
from repro.simulate import BiasedPolicy, simulate_system, stress


def test_sim_ab_protocol_clean(benchmark):
    components = [ab_sender(), ab_channel(), ab_receiver()]

    def run():
        return stress(
            components, alternating_service(), seeds=range(5), steps=1500
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.all_ok
    emit(
        "SIM-ab",
        f"AB protocol, 5 seeded runs × 1500 steps: all clean; "
        f"{report.total_external('del')} total deliveries",
        metrics={
            "runs": len(report.runs),
            "steps_per_run": 1500,
            "deliveries": report.total_external("del"),
            "all_ok": report.all_ok,
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_sim_ns_protocol_duplicates(benchmark):
    components = [ns_sender(), ns_channel(), ns_receiver()]

    def run():
        for seed in range(12):
            result = simulate_system(
                components,
                alternating_service(),
                steps=1500,
                seed=seed,
                policy=BiasedPolicy({"internal": 10.0, "del": 5.0}, seed=seed),
            )
            if not result.monitor.ok:
                return result
        return None

    witness = benchmark.pedantic(run, rounds=1, iterations=1)
    assert witness is not None
    trace = witness.monitor.violation_trace
    assert trace[-2:] == ("del", "del")
    emit(
        "SIM-ns",
        "NS protocol under loss pressure: runtime monitor catches the\n"
        f"duplicate delivery after {len(trace)} external events "
        f"(seed {witness.seed}); witness ends ...del.del",
        metrics={
            "witness_seed": witness.seed,
            "external_events_to_violation": len(trace),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_sim_derived_converter(benchmark):
    scen = colocated_scenario()
    result = solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )
    components = [ab_sender(), ab_channel(), ns_receiver(), result.converter]

    def run():
        return stress(
            components, alternating_service(), seeds=range(5), steps=2000
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.all_ok
    rows = [
        [
            r.seed,
            r.steps,
            r.external_counts.get("acc", 0),
            r.external_counts.get("del", 0),
            r.worst_stall,
        ]
        for r in report.runs
    ]
    for r in report.runs:
        acc = r.external_counts.get("acc", 0)
        dl = r.external_counts.get("del", 0)
        assert acc - 1 <= dl <= acc
    emit(
        "SIM-converter",
        "the derived Fig. 14 converter, executed live (fair random policy):\n"
        + table(["seed", "steps", "accepts", "deliveries", "worst stall"], rows)
        + "\nmonitor green on every run; accept/deliver counts stay within "
        "one in flight.",
        metrics={
            "runs": len(report.runs),
            "deliveries": report.total_external("del"),
            "all_ok": report.all_ok,
            "mean_ms": bench_ms(benchmark),
        },
    )
