"""HS — handshake conversion at the connection-management level.

Section 6 singles out connection management ("end-to-end synchronization",
the orderly-close problem) as where transport conversion gets hard.  This
extension family poses it concretely: a two-way-handshake client against a
three-way-handshake server, service = strict open/ready alternation.

Three measured outcomes:

* accept-then-confirm server: a straightforward relay converter exists;
* confirm-then-accept server: the converter's obvious discipline is
  unsafe, yet the quotient finds a *pipelined* converter that pre-opens
  the next server handshake and uses the server's acceptance of a new
  ``cr`` as an observable proxy for "ready was consumed" — a converter a
  naive hand analysis misses;
* lossy client channel (client has no retransmission): no converter
  exists.
"""

from paper import bench_ms, emit, table

from repro.protocols import handshake_scenario, lossy_handshake_scenario
from repro.quotient import solve_quotient
from repro.traces import accepts


def _solve(scen):
    return solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


def test_hs_conversion_family(benchmark):
    def run_all():
        return {
            "accept_first": _solve(handshake_scenario(accept_first=True)),
            "confirm_first": _solve(handshake_scenario(accept_first=False)),
            "lossy": _solve(lossy_handshake_scenario(accept_first=True)),
        }

    results = benchmark(run_all)

    accept_first = results["accept_first"]
    confirm_first = results["confirm_first"]
    lossy = results["lossy"]

    assert accept_first.exists and accept_first.verification.holds
    assert confirm_first.exists and confirm_first.verification.holds
    assert not lossy.exists and lossy.safety.exists

    # the pipelining discipline: server handshake opened before the
    # client's request is acknowledged; the naive order is absent
    c = confirm_first.converter
    assert accepts(c, ("+cr", "-cc", "+CR", "+ack"))
    assert not accepts(c, ("+CR", "+cr", "-cc", "+ack", "-CC"))

    rows = [
        [
            "accept-then-confirm",
            "EXISTS",
            len(accept_first.converter.states),
            "straight relay",
        ],
        [
            "confirm-then-accept",
            "EXISTS",
            len(confirm_first.converter.states),
            "pipelined (pre-opens next handshake)",
        ],
        [
            "lossy client channel",
            "none",
            "-",
            "lost CR unrecoverable (progress)",
        ],
    ]
    emit(
        "HS",
        "handshake conversion family (extension; Section 6's connection-"
        "management\nconcern made concrete):\n"
        + table(["server variant", "converter", "states", "discipline"], rows)
        + "\nnote: the confirm-first converter was NOT hand-designed — the "
        "maximal\nquotient discovered the pipelining side channel.",
        metrics={
            "accept_first_converter_states": len(
                accept_first.converter.states
            ),
            "confirm_first_converter_states": len(
                confirm_first.converter.states
            ),
            "lossy_exists": lossy.exists,
            "mean_ms": bench_ms(benchmark),
        },
    )
