"""Benchmark-suite conftest: makes `paper` importable from bench modules
and aggregates emitted metrics into BENCH_quotient.json after the run."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's emitted metrics into the aggregate BENCH file.

    Only writes when at least one benchmark emitted metrics, so running
    the tier-1 suite (or an unrelated subset) never touches the file.
    """
    import paper

    if paper.metrics_registry():
        target = paper.write_bench_json()
        print(f"\nbench metrics merged into {target}")
