"""FIG11 — the desired service specification (paper Fig. 11).

Regenerates the strict-alternation service and re-checks its defining
properties: trace set = prefixes of (acc del)*, normal form, and the
acceptance-set structure the quotient algorithm consumes.
"""

from paper import bench_ms, emit

from repro.protocols import alternating_service
from repro.spec import is_normal_form, psi
from repro.spec.graph import sink_acceptance_sets
from repro.traces import language_upto


def _analyze():
    svc = alternating_service()
    lang = language_upto(svc, 6)
    menus = {
        t: sorted(tuple(sorted(m)) for m in sink_acceptance_sets(svc, psi(svc, t)))
        for t in [(), ("acc",), ("acc", "del")]
    }
    return svc, lang, menus


def test_fig11_service(benchmark):
    svc, lang, menus = benchmark(_analyze)

    assert is_normal_form(svc)
    assert len(svc.states) == 2
    # trace set: exactly one trace per length (strict alternation)
    by_len = {}
    for t in lang:
        by_len.setdefault(len(t), []).append(t)
    assert all(len(v) == 1 for v in by_len.values())
    assert menus[()] == [("acc",)]
    assert menus[("acc",)] == [("del",)]
    assert menus[("acc", "del")] == [("acc",)]

    emit(
        "FIG11",
        "service (Fig. 11): 2 states, normal form = "
        f"{is_normal_form(svc)}\n"
        "trace set: prefixes of (acc del)* — one trace per length up to 6: "
        f"{sorted(len(t) for t in lang)}\n"
        "acceptance sets: after ε {acc}; after acc {del}; after acc.del {acc}",
        metrics={
            "service_states": len(svc.states),
            "normal_form": is_normal_form(svc),
            "traces_upto_6": len(lang),
            "mean_ms": bench_ms(benchmark),
        },
    )
