"""ABL — ablations of the design decisions DESIGN.md calls out.

Not paper artifacts; these quantify the choices this implementation made
where the paper left latitude:

* **ABL-normalform** — exact ``normalize(A)`` vs conservative
  ``determinize(A)`` for a genuinely nondeterministic service: the
  conservative route demands more progress and can lose converters the
  exact route finds.
* **ABL-reachable** — reachable-only vs full-product composition: same
  trace semantics, very different state counts/costs.
* **ABL-progress-trim** — the paper-faithful progress phase (``f`` kept
  fixed, Fig. 6) vs a trim-each-round variant: identical final verdicts
  and behaviour on the paper's instances (sanity for Theorem 2's
  robustness), with measured cost difference.
* **ABL-pruning** — the pruning ladder on the Fig. 14 converter: vacuous
  drop, DFA merge, exhaustive greedy deletion.
* **ABL-newproblem** — a conversion problem beyond the paper (AB sender to
  window-1 sliding-window receiver): the quotient generalizes off the
  paper's example.
"""

import time

from paper import bench_ms, emit, table

from repro.compose import compose, compose_many
from repro.protocols import (
    ab_channel,
    ab_sender,
    alternating_service,
    choice_service,
    colocated_scenario,
    symmetric_scenario,
    sw_window_receiver,
)
from repro.quotient import (
    QuotientProblem,
    drop_vacuous_states,
    merge_equivalent_states,
    minimize_converter,
    progress_phase,
    safety_phase,
    solve_quotient,
)
from repro.satisfy import satisfies
from repro.spec import (
    SpecBuilder,
    determinize,
    prune_unreachable,
    trace_equivalent,
)
from repro.spec.spec import Specification


# ----------------------------------------------------------------------
def _nondet_service_instance():
    """A component that can settle into either branch of choice_service."""
    service = choice_service()  # acc -> hub -> {del} | {rej}
    component = (
        SpecBuilder("B")
        .external(0, "acc", 1)
        .external(1, "m", 2)       # converter says: deliver
        .external(2, "del", 0)
        .external(1, "n", 3)       # converter says: reject
        .external(3, "rej", 0)
        .initial(0)
        .build()
    )
    return service, component


def test_abl_normal_form_vs_determinize(benchmark):
    def run_both():
        service, component = _nondet_service_instance()
        exact = solve_quotient(service, component)
        conservative = solve_quotient(determinize(service), component)
        return exact, conservative

    exact, conservative = benchmark(run_both)
    # the exact route finds a converter (pick either branch)...
    assert exact.exists
    # ...the conservative route demands del AND rej be offered after acc,
    # which this component cannot do in one sink: no converter
    assert not conservative.exists
    emit(
        "ABL-normalform",
        "service with a genuine acceptance choice ({del} | {rej}):\n"
        + table(
            ["service handling", "converter"],
            [
                ["normalize (exact acceptance menu)",
                 f"EXISTS ({len(exact.converter.states)} states)"],
                ["determinize (single union set)", "none — over-demands"],
            ],
        )
        + "\nvalidates DESIGN.md's normalize-vs-determinize distinction.",
        metrics={
            "exact_exists": exact.exists,
            "exact_converter_states": len(exact.converter.states),
            "determinized_exists": conservative.exists,
            "mean_ms": bench_ms(benchmark),
        },
    )


# ----------------------------------------------------------------------
def test_abl_reachable_vs_full_product(benchmark):
    def build_both():
        parts = [ab_sender(), ab_channel()]
        reach = compose(parts[0], parts[1], reachable_only=True)
        full = compose(parts[0], parts[1], reachable_only=False)
        return reach, full

    reach, full = benchmark(build_both)
    assert trace_equivalent(reach, full)
    assert len(reach.states) < len(full.states)
    emit(
        "ABL-reachable",
        f"A0 || Ach: reachable-only {len(reach.states)} states vs full "
        f"product {len(full.states)} states (trace-equivalent; the library "
        "defaults to reachable-only)",
        metrics={
            "reachable_states": len(reach.states),
            "full_product_states": len(full.states),
            "mean_ms": bench_ms(benchmark),
        },
    )


# ----------------------------------------------------------------------
def _progress_phase_trimming(problem, c0, f):
    """Variant: prune unreachable states after each removal round."""
    current = c0
    while True:
        pp = progress_phase(problem, current, f)
        if pp.spec is None:
            return None
        trimmed = prune_unreachable(pp.spec)
        if len(trimmed.states) == len(current.states):
            return trimmed
        current = trimmed


def test_abl_progress_trim_equivalence(benchmark):
    def run():
        rows = []
        for scen in (colocated_scenario(), symmetric_scenario()):
            problem = QuotientProblem.build(scen.service, scen.composite)
            sp = safety_phase(problem)
            t0 = time.perf_counter()
            paper_result = progress_phase(problem, sp.spec, sp.f)
            t_paper = time.perf_counter() - t0
            t0 = time.perf_counter()
            trim_result = _progress_phase_trimming(problem, sp.spec, sp.f)
            t_trim = time.perf_counter() - t0
            paper_spec = (
                prune_unreachable(paper_result.spec)
                if paper_result.spec is not None
                else None
            )
            rows.append(
                (scen.title.split(" (")[0], paper_spec, trim_result,
                 t_paper, t_trim)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = []
    for title, paper_spec, trim_spec, t_paper, t_trim in rows:
        if paper_spec is None or trim_spec is None:
            assert paper_spec is None and trim_spec is None
            verdict = "both: no converter"
        else:
            assert trace_equivalent(paper_spec, trim_spec)
            verdict = (
                f"equivalent ({len(paper_spec.states)} vs "
                f"{len(trim_spec.states)} states)"
            )
        printable.append([title, verdict])
    # wall times are machine-dependent: JSON metrics only, never the
    # diffed text report (output-hygiene policy)
    emit(
        "ABL-progress-trim",
        "paper-faithful fixed-f progress phase vs trim-each-round variant:\n"
        + table(["instance", "outcome"], printable)
        + "\nsame verdicts and behaviour on the paper's instances.",
        metrics={
            "instances": len(rows),
            **{
                f"fixed_f_ms_{title.split()[0]}": round(t_paper * 1e3, 3)
                for title, _, _, t_paper, _ in rows
            },
            **{
                f"trimming_ms_{title.split()[0]}": round(t_trim * 1e3, 3)
                for title, _, _, _, t_trim in rows
            },
            "mean_ms": bench_ms(benchmark),
        },
    )


# ----------------------------------------------------------------------
def test_abl_pruning_ladder(benchmark):
    scen = colocated_scenario()
    result = solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )
    problem = QuotientProblem.build(scen.service, scen.composite)

    def ladder():
        maximal = result.converter
        no_vacuous = drop_vacuous_states(maximal, result.f)
        merged = merge_equivalent_states(no_vacuous)
        minimal = minimize_converter(problem, merged)
        return maximal, no_vacuous, merged, minimal

    maximal, no_vacuous, merged, minimal = benchmark.pedantic(
        ladder, rounds=1, iterations=1
    )
    sizes = [len(s.states) for s in (maximal, no_vacuous, merged, minimal)]
    assert sizes == sorted(sizes, reverse=True)
    for candidate in (no_vacuous, merged, minimal):
        composite = compose(scen.composite, candidate)
        assert satisfies(composite, scen.service).holds
    emit(
        "ABL-pruning",
        "pruning ladder on the Fig. 14 converter (all steps re-verified):\n"
        + table(
            ["stage", "states"],
            [
                ["maximal quotient", sizes[0]],
                ["drop vacuous (B-unmatchable) states", sizes[1]],
                ["DFA merge (trace-equivalent states)", sizes[2]],
                ["greedy deletion (inclusion-minimal)", sizes[3]],
            ],
        ),
        metrics={
            "maximal_states": sizes[0],
            "no_vacuous_states": sizes[1],
            "merged_states": sizes[2],
            "minimal_states": sizes[3],
            "mean_ms": bench_ms(benchmark),
        },
    )


# ----------------------------------------------------------------------
def test_abl_new_conversion_problem(benchmark):
    """AB sender to window-1 sliding-window receiver: a conversion problem
    the paper never posed, solved and verified by the same machinery."""

    def run():
        component = compose_many(
            [ab_sender(), ab_channel(), sw_window_receiver(1)],
            name="A0||Ach||SW1",
        )
        return solve_quotient(alternating_service(), component)

    result = benchmark(run)
    assert result.exists
    assert result.verification.holds
    emit(
        "ABL-newproblem",
        "AB sender -> sliding-window(1) receiver conversion:\n"
        f"  B: {len(result.problem.component.states)} states; converter "
        f"{len(result.converter.states)} states, verified\n"
        "  (the AB sequence bit maps onto the window-1 sequence number)",
        metrics={
            "component_states": len(result.problem.component.states),
            "converter_states": len(result.converter.states),
            "verified": result.verification.holds,
            "mean_ms": bench_ms(benchmark),
        },
    )
