"""SW — the sliding-window extension family (beyond the paper).

Validates the window-N protocol against the window-N service and sweeps
the AB-to-sliding-window conversion over the window size: a
protocol-shaped (rather than synthetic) scaling axis for the quotient
algorithm, complementing the SEC7 relay family.
"""

from paper import bench_ms, emit, table

from repro.compose import compose_many
from repro.protocols import (
    ab_channel,
    ab_sender,
    alternating_service,
    sw_window_receiver,
    sw_window_system,
    windowed_alternating_service,
)
from repro.quotient import solve_quotient
from repro.satisfy import satisfies


def test_sw_system_validation(benchmark):
    def validate():
        results = []
        for window in (1, 2):
            system = sw_window_system(window)
            service = windowed_alternating_service(window)
            results.append((window, system, satisfies(system, service)))
        return results

    results = benchmark.pedantic(validate, rounds=1, iterations=1)
    assert all(report.holds for _, _, report in results)
    emit(
        "SW-validate",
        "sliding-window systems vs their window services:\n"
        + table(
            ["window", "system states", "satisfies S(w)"],
            [
                [w, len(system.states), "yes" if report.holds else "NO"]
                for w, system, report in results
            ],
        ),
        metrics={
            **{
                f"system_states_w{w}": len(system.states)
                for w, system, _ in results
            },
            "all_satisfy": all(r.holds for _, _, r in results),
            "mean_ms": bench_ms(benchmark),
        },
    )


def test_sw_conversion_sweep(benchmark):
    def sweep():
        rows = []
        for window in (1, 2):
            component = compose_many(
                [ab_sender(), ab_channel(), sw_window_receiver(window)],
                name=f"A0||Ach||SW{window}",
            )
            result = solve_quotient(alternating_service(), component)
            rows.append((window, component, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for _, _, result in rows:
        assert result.exists
        assert result.verification.holds
    emit(
        "SW-conversion",
        "AB sender -> sliding-window(N) receiver conversions:\n"
        + table(
            ["window", "|B|", "|C0|", "converter states"],
            [
                [
                    w,
                    len(component.states),
                    len(result.c0.states),
                    len(result.converter.states),
                ]
                for w, component, result in rows
            ],
        )
        + "\nthe quotient machinery generalizes beyond the paper's example; "
        "converter size tracks the receiver's sequence space.",
        metrics={
            **{
                f"converter_states_w{w}": len(result.converter.states)
                for w, _, result in rows
            },
            "mean_ms": bench_ms(benchmark),
        },
    )
