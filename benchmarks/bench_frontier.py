"""FRONTIER — mechanizing "weaken the service and obtain a converter".

Section 5 observes that weakening the service admits a converter in the
symmetric configuration.  The frontier analysis turns that one-off remark
into a search: over a family of candidate services (strict alternation,
window-2 exactly-once, duplicate-tolerant in both acceptance styles), find
every achievable service and the *strongest* achievable ones, for both
paper configurations.
"""

from paper import bench_ms, emit, table

from repro.analysis import service_frontier
from repro.protocols import (
    alternating_service,
    at_least_once_service,
    at_least_once_service_strict,
    colocated_scenario,
    symmetric_scenario,
    windowed_alternating_service,
)


def _candidates():
    return [
        alternating_service(),
        windowed_alternating_service(2),
        at_least_once_service(),
        at_least_once_service_strict(),
    ]


def test_service_frontier_both_configs(benchmark):
    def run():
        return {
            "symmetric": service_frontier(
                _candidates(), symmetric_scenario().composite
            ),
            "colocated": service_frontier(
                _candidates(), colocated_scenario().composite
            ),
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    symmetric = reports["symmetric"]
    colocated = reports["colocated"]

    # the paper's Section 5 story as a search result:
    assert symmetric.frontier == ("S+",)
    by_name = {o.name: o for o in colocated.outcomes}
    assert by_name["S"].achievable
    assert "S" in colocated.frontier and "S+" not in colocated.frontier

    rows = []
    for config, report in (("symmetric (Fig. 9)", symmetric),
                           ("co-located (Fig. 13)", colocated)):
        for o in report.outcomes:
            rows.append(
                [
                    config,
                    o.name,
                    "yes" if o.achievable else "no",
                    o.converter_states if o.achievable else "-",
                    "FRONTIER" if o.name in report.frontier else "",
                ]
            )
    emit(
        "FRONTIER",
        "strongest achievable service per configuration (candidates: strict\n"
        "alternation S, window-2 S(w=2), duplicate-tolerant S+ nondet /\n"
        "S+det deterministic):\n"
        + table(
            ["configuration", "service", "achievable", "converter", ""], rows
        )
        + "\nsymmetric: exactly the paper's weakening (S+) is the frontier;\n"
        "co-located: strict alternation itself is achievable (Fig. 14).",
        metrics={
            "candidates": len(symmetric.outcomes),
            "symmetric_frontier": ",".join(symmetric.frontier),
            "colocated_frontier": ",".join(colocated.frontier),
            "colocated_S_converter_states": by_name["S"].converter_states,
            "mean_ms": bench_ms(benchmark),
        },
    )
