"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported as __main__-style run via
runpy) inside a temporary working directory, with argv trimmed, so the
suite catches bitrot in the documented entry points.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    argv = [str(EXAMPLES_DIR / script)]
    if script == "live_converter.py":
        argv += ["120", "3"]  # keep the run short
    if script in ("custom_protocol_dsl.py", "generate_figures.py"):
        argv += [str(tmp_path)]
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_inventory():
    """The README promises eight runnable examples."""
    assert len(EXAMPLES) == 8
    assert "quickstart.py" in EXAMPLES
