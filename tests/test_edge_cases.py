"""Edge-case tests across module boundaries."""

from repro.compose import compose
from repro.events import Alphabet
from repro.io import dumps, loads
from repro.quotient import solve_quotient
from repro.satisfy import satisfies
from repro.spec import SpecBuilder, Specification


class TestDegenerateCompositions:
    def test_compose_identical_alphabets_yields_closed_system(self):
        """Fully shared alphabets leave an empty composite interface."""
        a = SpecBuilder("a").external(0, "e", 1).external(1, "e", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "e", 0).initial(0).build()
        c = compose(a, b)
        assert c.alphabet == Alphabet([])
        assert c.internal  # the synchronized steps survive as λ

    def test_closed_system_satisfaction(self):
        """A closed (empty-alphabet) system satisfies the empty service
        iff it exists — progress over an empty menu is trivial."""
        closed = SpecBuilder("closed").internal(0, 1).internal(1, 0).initial(0).build()
        empty_service = SpecBuilder("svc").initial(0).build()
        report = satisfies(closed, empty_service)
        assert report.holds

    def test_single_state_self_loop_composition(self):
        spin = SpecBuilder("spin").external(0, "t", 0).initial(0).build()
        c = compose(spin, spin.renamed("spin2"))
        # shared 't' synchronizes into a λ self-loop, which is dropped
        assert not c.external
        assert not c.internal
        assert len(c.states) == 1


class TestDegenerateQuotients:
    def test_empty_ext_service(self):
        """Ext = ∅: the service constrains nothing; every Int behaviour of
        B is fine and the maximal converter mirrors B's Int language."""
        service = SpecBuilder("A").initial(0).build()  # empty alphabet
        component = (
            SpecBuilder("B").external(0, "m", 1).external(1, "n", 0).initial(0).build()
        )
        result = solve_quotient(service, component)
        assert result.exists
        from repro.traces import accepts

        assert accepts(result.converter, ("m", "n", "m"))

    def test_component_equal_to_service(self, alternator):
        result = solve_quotient(alternator, alternator.renamed("B"))
        assert result.exists
        assert len(result.converter.states) == 1

    def test_quotient_of_quotient_is_stable(self):
        """Solving against a previously derived converter's composite is a
        no-op problem: the new Int is empty and existence is immediate."""
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B")
            .external(0, "x", 1)
            .external(1, "m", 2)
            .external(2, "y", 0)
            .initial(0)
            .build()
        )
        first = solve_quotient(service, component)
        composed = compose(component, first.converter)
        second = solve_quotient(service, composed)
        assert second.exists
        assert not second.converter.alphabet

    def test_converter_state_annotations_serialize(self):
        """Pair-set states (frozensets of tuples) round-trip through the
        JSON codec when reattached to a machine."""
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B")
            .external(0, "x", 1)
            .external(1, "m", 2)
            .external(2, "y", 0)
            .initial(0)
            .build()
        )
        result = solve_quotient(service, component)
        pairset_machine = result.converter.map_states(dict(result.f))
        assert loads(dumps(pairset_machine)) == pairset_machine


class TestBigAlphabetSmallMachine:
    def test_many_refused_events(self):
        spec = Specification(
            "m", [0], [f"e{i}" for i in range(200)], [], [], 0
        )
        assert len(spec.alphabet) == 200
        assert spec.enabled(0) == Alphabet([])
        assert loads(dumps(spec)) == spec


class TestUnicodeAndOddNames:
    def test_unicode_event_names(self):
        spec = (
            SpecBuilder("μ").external(0, "übergabe", 1).initial(0).build()
        )
        assert loads(dumps(spec)) == spec

    def test_tuple_states_in_dot(self):
        from repro.io import to_dot

        spec = Specification(
            "m", [("a", 0), ("b", 1)], ["e"],
            [(("a", 0), "e", ("b", 1))], [], ("a", 0),
        )
        dot = to_dot(spec)
        assert "digraph" in dot
