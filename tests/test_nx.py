"""Tests for the networkx bridge — including using networkx as an
independent oracle for this library's own graph primitives."""

import networkx as nx
import pytest

from repro.errors import CodecError
from repro.io.nx import condensation, from_networkx, internal_subgraph, to_networkx
from repro.spec import SpecBuilder, random_spec
from repro.spec.graph import internal_sccs, reachable_states, sink_sets


class TestRoundTrip:
    def test_simple_roundtrip(self, alternator):
        assert from_networkx(to_networkx(alternator)) == alternator

    def test_roundtrip_with_internal(self, lossy_hop):
        assert from_networkx(to_networkx(lossy_hop)) == lossy_hop

    def test_refused_events_preserved(self):
        spec = SpecBuilder("m").state(0).event("ghost").initial(0).build()
        assert from_networkx(to_networkx(spec)) == spec

    def test_parallel_edges_preserved(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(0, "b", 1)
            .internal(0, 1)
            .initial(0)
            .build()
        )
        graph = to_networkx(spec)
        assert graph.number_of_edges(0, 1) == 3
        assert from_networkx(graph) == spec

    def test_missing_initial_rejected(self):
        graph = nx.MultiDiGraph()
        graph.add_node(0)
        with pytest.raises(CodecError, match="initial"):
            from_networkx(graph)

    def test_two_initials_rejected(self):
        graph = nx.MultiDiGraph()
        graph.add_node(0, initial=True)
        graph.add_node(1, initial=True)
        with pytest.raises(CodecError, match="exactly one"):
            from_networkx(graph)


class TestAsOracle:
    """Cross-check repro.spec.graph against networkx implementations."""

    @pytest.mark.parametrize("seed", range(8))
    def test_scc_against_networkx(self, seed):
        spec = random_spec(
            n_states=10, events=["a"], internal_density=0.2, seed=seed
        )
        ours, _ = internal_sccs(spec)
        theirs = list(nx.strongly_connected_components(internal_subgraph(spec)))
        assert {frozenset(c) for c in ours} == {frozenset(c) for c in theirs}

    @pytest.mark.parametrize("seed", range(8))
    def test_reachability_against_networkx(self, seed):
        spec = random_spec(
            n_states=10, events=["a", "b"], seed=seed, ensure_connected=False
        )
        graph = to_networkx(spec)
        theirs = nx.descendants(graph, spec.initial) | {spec.initial}
        assert reachable_states(spec) == frozenset(theirs)

    @pytest.mark.parametrize("seed", range(8))
    def test_sink_sets_against_condensation(self, seed):
        spec = random_spec(
            n_states=10, events=["a"], internal_density=0.25, seed=seed
        )
        cond = condensation(spec)
        terminal = {
            frozenset(cond.nodes[n]["members"])
            for n in cond.nodes
            if cond.out_degree(n) == 0
        }
        assert {frozenset(s) for s in sink_sets(spec)} == terminal
