"""Unit tests of the serve layer: jobs, queue, store, supervisor, server.

The end-to-end byte-identity sweeps live in
``tests/test_serve_differential.py``; this file pins the pieces —
request validation and content addressing, admission policy, the durable
store, the supervisor's recovery ladder, and the HTTP surface.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import obs
from repro.chaos import ChaosPlan, use_chaos
from repro.errors import InterruptRequested, ReproError, ServeError
from repro.io.json_codec import spec_to_dict
from repro.obs.core import ThreadSafeCollector
from repro.persist import InterruptController
from repro.persist.checkpoint import problem_fingerprint
from repro.quotient.solve import solve_quotient
from repro.quotient.types import QuotientProblem
from repro.serve import (
    AdmissionQueue,
    DerivationServer,
    JobRequest,
    ResultStore,
    ServeClient,
    WorkerSupervisor,
    execute_job,
)
from repro.serve.workers import DRAIN_REASON, KILL_CHARGE_SPAN
from repro.spec import random_quotient_instance


def solve_doc(seed: int = 3, **extra) -> dict:
    service, component, internal, _ = random_quotient_instance(seed=seed)
    doc = {
        "kind": "solve",
        "payload": {
            "service": spec_to_dict(service),
            "component": spec_to_dict(component),
            "int_events": sorted(internal),
        },
    }
    doc.update(extra)
    return doc


def canonical_body(seed: int) -> dict:
    """What a direct, unserved solve of the same instance produces."""
    service, component, internal, _ = random_quotient_instance(seed=seed)
    result = solve_quotient(service, component, int_events=internal)
    body = result.to_json_dict()
    body.pop("stats", None)
    body.pop("degradations", None)
    return body


class TestJobRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            JobRequest(kind="transmogrify", payload={})

    def test_priority_must_be_int_not_bool(self):
        with pytest.raises(ServeError, match="priority"):
            JobRequest(kind="solve", payload={}, priority=True)
        with pytest.raises(ServeError, match="priority"):
            JobRequest(kind="solve", payload={}, priority="high")

    def test_deadline_must_be_positive(self):
        with pytest.raises(ServeError, match="deadline_s"):
            JobRequest(kind="solve", payload={}, deadline_s=0)

    def test_budget_unknown_fields_rejected(self):
        with pytest.raises(ServeError, match="max_pears"):
            JobRequest(kind="solve", payload={},
                       budget={"max_pears": 10})

    def test_codec_roundtrip(self):
        doc = solve_doc(priority=3, deadline_s=1.5,
                        budget={"max_pairs": 100}, label="x")
        request = JobRequest.from_json_dict(doc)
        assert JobRequest.from_json_dict(request.to_json_dict()) == request

    def test_codec_rejects_unknown_fields(self):
        with pytest.raises(ServeError, match="sneaky"):
            JobRequest.from_json_dict({**solve_doc(), "sneaky": 1})

    def test_codec_rejects_wrong_schema(self):
        with pytest.raises(ServeError, match="schema"):
            JobRequest.from_json_dict({**solve_doc(), "schema": 99})

    def test_solve_fingerprint_is_problem_fingerprint(self):
        service, component, internal, _ = random_quotient_instance(seed=5)
        request = JobRequest.from_json_dict(solve_doc(seed=5))
        problem = QuotientProblem.build(service, component, internal)
        assert request.fingerprint() == problem_fingerprint(problem)

    def test_fingerprint_is_name_insensitive(self):
        doc = solve_doc(seed=6)
        renamed = json.loads(json.dumps(doc))
        renamed["payload"]["service"]["name"] = "a-different-name"
        assert (JobRequest.from_json_dict(doc).fingerprint()
                == JobRequest.from_json_dict(renamed).fingerprint())

    def test_fingerprint_ignores_execution_shaping(self):
        base = JobRequest.from_json_dict(solve_doc(seed=7))
        shaped = JobRequest.from_json_dict(
            solve_doc(seed=7, priority=9, deadline_s=2.0,
                      budget={"max_pairs": 5}, label="urgent")
        )
        assert base.fingerprint() == shaped.fingerprint()

    def test_fingerprint_rejects_malformed_payload_at_admission(self):
        request = JobRequest(kind="solve", payload={"service": {}})
        with pytest.raises(ReproError):
            request.fingerprint()

    def test_analyze_fingerprint_is_order_insensitive(self):
        service, component, _, _ = random_quotient_instance(seed=8)
        a = JobRequest(kind="analyze", payload={
            "specs": [spec_to_dict(service), spec_to_dict(component)]})
        b = JobRequest(kind="analyze", payload={
            "specs": [spec_to_dict(component), spec_to_dict(service)]})
        assert a.fingerprint() == b.fingerprint()


class TestExecuteJob:
    def test_solve_body_is_canonical(self):
        request = JobRequest.from_json_dict(solve_doc(seed=9))
        outcome = execute_job(request)
        assert "stats" not in outcome.body
        assert "degradations" not in outcome.body
        assert outcome.verdict in ("converter", "no-converter")
        assert outcome.body == canonical_body(9)
        assert outcome.counters  # phase counters for the ledger

    def test_analyze_single_spec(self):
        service, _, _, _ = random_quotient_instance(seed=10)
        request = JobRequest(
            kind="analyze", payload={"specs": [spec_to_dict(service)]}
        )
        outcome = execute_job(request)
        assert outcome.verdict in ("clean", "findings")
        assert set(outcome.counters) == {"diagnostics", "errors", "warnings"}


class TestAdmissionQueue:
    def test_accepts_to_capacity_then_rejects(self):
        q = AdmissionQueue(2)
        assert q.offer("a").accepted
        assert q.offer("b").accepted
        rejected = q.offer("c")
        assert not rejected.accepted
        # deterministic, depth-derived backpressure hint
        assert rejected.retry_after_s == pytest.approx(0.05 * 3)
        assert q.depth == 2

    def test_higher_priority_sheds_youngest_lowest(self):
        q = AdmissionQueue(2)
        q.offer("old", priority=0)
        q.offer("young", priority=0)
        admission = q.offer("vip", priority=5)
        assert admission.accepted
        assert admission.shed == "young"  # youngest among the lowest tie
        assert q.pop() == "vip"
        assert q.pop() == "old"

    def test_equal_priority_never_sheds(self):
        q = AdmissionQueue(1)
        q.offer("a", priority=2)
        admission = q.offer("b", priority=2)
        assert not admission.accepted and admission.shed is None

    def test_pop_is_fifo_within_priority(self):
        q = AdmissionQueue(4)
        for name in ("a", "b"):
            q.offer(name, priority=0)
        for name in ("hi1", "hi2"):
            q.offer(name, priority=1)
        assert [q.pop() for _ in range(4)] == ["hi1", "hi2", "a", "b"]

    def test_push_bypasses_the_bound(self):
        q = AdmissionQueue(1)
        q.offer("a")
        q.push("recovered")  # restart recovery: already admitted once
        assert q.depth == 2

    def test_counters(self):
        collector = obs.MetricsCollector()
        with obs.use_collector(collector):
            q = AdmissionQueue(1)
            q.offer("a")
            q.offer("b")                 # rejected
            q.offer("vip", priority=1)   # sheds a
        assert collector.counters["serve.queue.accepted"] == 2
        assert collector.counters["serve.queue.rejected"] == 1
        assert collector.counters["serve.queue.shed"] == 1
        assert collector.gauges["serve.queue.depth"] == 1


class TestResultStore:
    def test_state_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.load_state() == {"next_seq": 0}
        store.save_state({"next_seq": 7})
        assert ResultStore(str(tmp_path)).load_state()["next_seq"] == 7

    def test_result_roundtrip_and_index(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_result("f" * 64, kind="solve", label="x",
                         spec_fingerprints=["s1", "s2"],
                         body={"exists": True}, verdict="converter")
        doc = store.get_result("f" * 64)
        assert doc["result"] == {"exists": True}
        assert doc["verdict"] == "converter"
        assert store.entries_for_spec("s1")["f" * 64]["kind"] == "solve"
        assert store.entries_for_spec("nope") == {}

    def test_corrupt_result_reads_as_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put_result("a" * 64, kind="solve", label="",
                         spec_fingerprints=[], body={}, verdict=None)
        path = tmp_path / "results" / ("a" * 64 + ".json")
        path.write_text(path.read_text()[: 40])  # tear it
        collector = obs.MetricsCollector()
        with obs.use_collector(collector):
            assert store.get_result("a" * 64) is None
        assert collector.counters["serve.cache.corrupt"] == 1

    def test_job_records_and_recovery_filter(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for seq, state in enumerate(
            ("done", "queued", "running", "failed", "interrupted")
        ):
            store.save_job({"job_id": f"j{seq}", "seq": seq, "state": state})
        recoverable = store.recoverable_jobs()
        assert [r["job_id"] for r in recoverable] == ["j1", "j2", "j4"]
        assert store.load_job("j0")["state"] == "done"
        assert store.load_job("missing") is None

    def test_checkpoint_lifecycle(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.load_job_checkpoint("b" * 64) is None
        request = JobRequest.from_json_dict(solve_doc(seed=12))
        controller = InterruptController(at_charge=2)
        with pytest.raises(InterruptRequested) as info:
            execute_job(request, interrupt=controller)
        store.save_job_checkpoint("b" * 64, info.value.checkpoint)
        loaded = store.load_job_checkpoint("b" * 64)
        assert loaded is not None and loaded.phase == info.value.phase
        store.drop_job_checkpoint("b" * 64)
        assert store.load_job_checkpoint("b" * 64) is None


class TestWorkerSupervisor:
    def _run(self, seed, store, supervisor, **request_extra):
        request = JobRequest.from_json_dict(solve_doc(seed, **request_extra))
        return supervisor.run_job(request, store)

    def test_healthy_run_is_byte_identical(self, tmp_path):
        supervisor = WorkerSupervisor(sleep=lambda s: None)
        outcome = self._run(21, ResultStore(str(tmp_path)), supervisor)
        assert outcome.state == "done"
        assert outcome.body == canonical_body(21)
        assert outcome.attempts == 1 and outcome.worker_deaths == 0

    def test_kill_charge_span_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KILL_CHARGE_SPAN", "1")
        assert WorkerSupervisor(sleep=lambda s: None).kill_charge_span == 1
        # an explicit argument wins over the environment
        sup = WorkerSupervisor(sleep=lambda s: None, kill_charge_span=5)
        assert sup.kill_charge_span == 5
        for bad in ("0", "-3", "many"):
            monkeypatch.setenv("REPRO_KILL_CHARGE_SPAN", bad)
            with pytest.raises(ReproError):
                WorkerSupervisor(sleep=lambda s: None)
        monkeypatch.delenv("REPRO_KILL_CHARGE_SPAN")
        assert (
            WorkerSupervisor(sleep=lambda s: None).kill_charge_span
            == KILL_CHARGE_SPAN
        )

    def test_injected_raise_is_retried_transparently(self, tmp_path):
        collector = ThreadSafeCollector()
        plan = ChaosPlan(seed=1, raise_at=(0,), sites=("serve.job",))
        supervisor = WorkerSupervisor(sleep=lambda s: None)
        with obs.use_collector(collector), use_chaos(plan):
            outcome = self._run(22, ResultStore(str(tmp_path)), supervisor)
        assert outcome.state == "done"
        assert outcome.body == canonical_body(22)
        assert collector.counters["chaos.injected.serve.job.raise"] == 1
        assert collector.counters["retry.retries"] == 1
        assert collector.counters["retry.recoveries"] == 1

    def test_kill_checkpoints_and_resumes(self, tmp_path):
        collector = ThreadSafeCollector()
        plan = ChaosPlan(seed=2, kill_at=(0,), sites=("serve.job",))
        supervisor = WorkerSupervisor(sleep=lambda s: None,
                                      kill_charge_span=2)
        with obs.use_collector(collector), use_chaos(plan):
            outcome = self._run(23, ResultStore(str(tmp_path)), supervisor)
        assert outcome.state == "done"
        assert outcome.worker_deaths == 1
        assert outcome.resumed and outcome.checkpointed
        assert outcome.body == canonical_body(23)
        assert collector.counters["serve.worker.deaths"] == 1
        assert collector.counters["serve.worker.respawns"] == 1
        assert collector.counters["serve.jobs.resumed"] == 1

    def test_respawn_exhaustion_degrades_but_stays_exact(self, tmp_path):
        store = ResultStore(str(tmp_path))
        plan = ChaosPlan(seed=3, kill_at=(0,), sites=("serve.job",))
        supervisor = WorkerSupervisor(respawn_budget=0,
                                      sleep=lambda s: None,
                                      kill_charge_span=2)
        with use_chaos(plan):
            outcome = self._run(24, store, supervisor)
            assert outcome.state == "done"
            assert outcome.body == canonical_body(24)
            assert supervisor.degraded
            assert any("respawn budget" in d["reason"]
                       for d in outcome.degradations)
            # degraded mode: chaos is no longer consulted, later jobs
            # drain in-process and carry the degradation record
            later = self._run(25, store, supervisor)
        assert later.state == "done"
        assert later.body == canonical_body(25)
        assert any("degraded" in d["reason"] for d in later.degradations)

    def test_budget_trip_checkpoints_then_resubmit_resumes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        supervisor = WorkerSupervisor(sleep=lambda s: None)
        first = self._run(27, store, supervisor, budget={"max_pairs": 2})
        assert first.state == "failed"
        assert first.outcome == "partial-budget"
        assert first.checkpointed
        # an unbudgeted resubmission of the same fingerprint resumes
        second = self._run(27, store, supervisor)
        assert second.state == "done" and second.resumed
        assert second.body == canonical_body(27)

    def test_drain_interrupt_parks_job_as_recoverable(self, tmp_path):
        store = ResultStore(str(tmp_path))
        supervisor = WorkerSupervisor(sleep=lambda s: None)
        drain = InterruptController()
        drain.request(DRAIN_REASON)
        request = JobRequest.from_json_dict(solve_doc(seed=26))
        outcome = supervisor.run_job(request, store, drain=drain)
        assert outcome.state == "interrupted"
        assert outcome.outcome == "partial-interrupt"
        assert outcome.checkpointed
        # and the checkpoint resumes to the exact answer
        resumed = supervisor.run_job(request, store)
        assert resumed.state == "done" and resumed.resumed
        assert resumed.body == canonical_body(26)

    def test_unservable_job_fails_cleanly(self, tmp_path):
        supervisor = WorkerSupervisor(sleep=lambda s: None)
        request = JobRequest(kind="analyze", payload={"specs": [{}]})
        outcome = supervisor.run_job(
            request, ResultStore(str(tmp_path)), fingerprint="x" * 64
        )
        assert outcome.state == "failed"
        assert outcome.outcome == "failed"
        assert outcome.error


class TestServerAdmission:
    """The event-loop admission logic, driven directly (no sockets)."""

    def _server(self, tmp_path, **kw):
        kw.setdefault("capacity", 2)
        return DerivationServer(str(tmp_path / "store"), **kw)

    def test_accept_then_join_then_cache(self, tmp_path):
        server = self._server(tmp_path)
        doc = solve_doc(seed=31)
        status, first = server._submit(doc)
        assert status == 202 and first["job"]["state"] == "queued"
        status, joined = server._submit(doc)
        assert status == 202 and joined["joined"]
        assert joined["job"]["job_id"] == first["job"]["job_id"]
        # complete it, then the same submission is a cache hit
        server._run_one(first["job"]["job_id"])
        server._finalize(first["job"]["job_id"])
        status, hit = server._submit(doc)
        assert status == 200 and hit["job"]["cache"] == "hit"
        assert hit["result"] == canonical_body(31)

    def test_overflow_rejects_with_retry_after(self, tmp_path):
        server = self._server(tmp_path, capacity=2)
        server._submit(solve_doc(seed=32))
        server._submit(solve_doc(seed=33))
        with pytest.raises(ServeError) as info:
            server._submit(solve_doc(seed=34))
        assert info.value.status == 429

    def test_overflow_sheds_lowest_priority(self, tmp_path):
        server = self._server(tmp_path, capacity=2)
        server._submit(solve_doc(seed=35))
        _, low = server._submit(solve_doc(seed=36))
        status, vip = server._submit(solve_doc(seed=37, priority=5))
        assert status == 202
        shed = server._records[low["job"]["job_id"]]
        assert shed["state"] == "shed"
        assert "resubmit" in shed["error"]
        # the shed record is persisted — the client gets a structured
        # answer, not a lost job
        assert server.store.load_job(shed["job_id"])["state"] == "shed"

    def test_draining_rejects_with_503(self, tmp_path):
        server = self._server(tmp_path)
        server.draining = True
        with pytest.raises(ServeError) as info:
            server._submit(solve_doc(seed=38))
        assert info.value.status == 503

    def test_malformed_submission_is_a_structured_400(self, tmp_path):
        server = self._server(tmp_path)
        with pytest.raises(ServeError) as info:
            server._submit({"kind": "solve", "payload": {"service": {}}})
        assert info.value.status == 400


@pytest.fixture
def live_server(tmp_path):
    """A real server on an ephemeral port, drained at teardown."""
    started: list[tuple[DerivationServer, threading.Thread]] = []

    def start(**kw) -> tuple[DerivationServer, ServeClient]:
        kw.setdefault("capacity", 8)
        kw.setdefault("workers", 2)
        root = kw.pop("root", None) or str(tmp_path / "store")
        server = DerivationServer(root, **kw)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                server.run(ready=lambda s: ready.set())
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(10), "server did not come up"
        started.append((server, thread))
        return server, ServeClient("127.0.0.1", server.port)

    yield start
    for server, thread in started:
        if thread.is_alive():
            try:
                ServeClient("127.0.0.1", server.port).shutdown()
            except Exception:
                pass
            thread.join(15)


class TestServerHTTP:
    def test_solve_roundtrip_and_cache(self, live_server):
        _, client = live_server()
        doc = solve_doc(seed=41)
        status, accepted = client.submit(doc)
        assert status == 202
        final = client.wait(accepted["job"]["job_id"], timeout_s=60)
        assert final["job"]["state"] == "done"
        assert final["result"] == canonical_body(41)
        assert any(e["event"] == "done" for e in final["progress"])
        status, hit = client.submit(doc)
        assert status == 200 and hit["result"] == canonical_body(41)

    def test_analyze_roundtrip(self, live_server):
        _, client = live_server()
        service, component, _, _ = random_quotient_instance(seed=42)
        status, accepted = client.submit({
            "kind": "analyze",
            "payload": {"specs": [spec_to_dict(service),
                                  spec_to_dict(component)]},
        })
        assert status == 202
        final = client.wait(accepted["job"]["job_id"], timeout_s=60)
        assert final["job"]["state"] == "done"
        assert final["job"]["verdict"] in ("clean", "findings")
        assert "diagnostics" in final["result"]

    def test_operational_endpoints(self, live_server):
        server, client = live_server()
        health = client.health()
        assert health["status"] == "ok"
        doc = solve_doc(seed=43)
        _, accepted = client.submit(doc)
        client.wait(accepted["job"]["job_id"], timeout_s=60)
        metrics = client.metrics()
        assert metrics["counters"]["serve.jobs.submitted"] >= 1
        index = client.index()
        assert len(index["entries"]) == 1
        (fp,) = index["entries"]
        assert client.result(fp)["result"] == canonical_body(43)
        spec_fp = index["entries"][fp]["specs"][0]
        assert fp in client.index(spec=spec_fp)["entries"]
        assert client.gc()["scanned"] >= 1
        jobs = client.jobs()["jobs"]
        assert [j["job_id"] for j in jobs] == [accepted["job"]["job_id"]]

    def test_error_surfaces(self, live_server):
        _, client = live_server()
        with pytest.raises(ServeError) as info:
            client.job("j999")
        assert info.value.status == 404
        status, doc = client.call("GET", "/no/such/route")
        assert status == 404
        status, doc = client.call("POST", "/jobs", {"kind": "nope",
                                                    "payload": {}})
        assert status == 400 and "unknown job kind" in doc["error"]

    def test_shutdown_drains_cleanly(self, live_server):
        server, client = live_server()
        assert client.shutdown()["draining"]
        # a draining (or already-closed) server refuses new work
        try:
            client.submit(solve_doc(seed=44))
        except ServeError as exc:
            assert exc.status == 503
        except OSError:
            pass  # socket already closed: fully drained
        else:
            pytest.fail("draining server accepted a submission")
