"""Resumable resilience sweeps: crash mid-matrix, resume, recompute nothing.

The contract under test:

* with a checkpoint path, the sweep durably snapshots after every
  completed cell, so a crash (simulated here by a cooperative interrupt
  and by killing the run between cells) loses at most the in-flight cell;
* ``resume=True`` skips every cell in the checkpoint — asserted via the
  ``faults.resume.*`` counters, with ``faults.cells`` counting only the
  cells actually computed — and the final matrix equals the
  uninterrupted one's cell for cell;
* a sweep checkpoint for a different system is rejected by lint rule
  ``QUOT104``.
"""

import pytest

from repro import obs
from repro.errors import InterruptRequested, LintError
from repro.faults import evaluate_resilience
from repro.obs import MetricsCollector
from repro.persist import InterruptController, load_checkpoint
from repro.quotient import solve_quotient
from repro.spec import random_quotient_instance


@pytest.fixture(scope="module")
def system():
    # seed 1 yields a converter; target=0 faults the lone component
    service, component, internal, _ = random_quotient_instance(seed=1)
    result = solve_quotient(service, component, int_events=internal)
    assert result.exists
    return service, component, internal, result.converter


def _sweep(system, **kwargs):
    service, component, internal, converter = system
    return evaluate_resilience(
        service,
        [component],
        converter,
        int_events=internal,
        target=0,
        **kwargs,
    )


def _faults_counters(collector):
    counters = collector.snapshot().counters
    return {k: v for k, v in counters.items() if k.startswith("faults.")}


class TestResumableSweep:
    def test_interrupt_resume_recomputes_zero_completed_cells(
        self, system, tmp_path
    ):
        path = str(tmp_path / "sweep.ckpt")
        baseline = _sweep(system)
        probe = InterruptController()
        assert _sweep(system, interrupt=probe) == baseline
        total_charges = probe.charges

        with pytest.raises(InterruptRequested) as exc:
            _sweep(
                system,
                interrupt=InterruptController(at_charge=total_charges // 2),
                checkpoint=path,
            )
        sweep_ckpt = exc.value.checkpoint
        assert sweep_ckpt is not None and sweep_ckpt.kind == "resilience"
        completed = len(sweep_ckpt.payload["cells"])
        assert 0 < completed < len(baseline.cells)
        assert sweep_ckpt.payload["total"] == len(baseline.cells)
        # the snapshot on disk matches the in-flight checkpoint
        assert load_checkpoint(path) == sweep_ckpt

        with obs.use_collector(MetricsCollector()) as collector:
            resumed = _sweep(system, checkpoint=path, resume=True)
        counters = _faults_counters(collector)
        assert resumed == baseline
        assert counters["faults.resume.cells_skipped"] == completed
        assert counters["faults.resume.resumed"] == 1
        # zero completed cells recomputed:
        assert counters["faults.cells"] == len(baseline.cells) - completed

    def test_per_cell_snapshots_survive_a_hard_crash(self, system, tmp_path):
        # simulate a kill -9 between cells: run the whole sweep with a
        # checkpoint, then "crash" by just using the file a fresh process
        # would find — it must hold every cell
        path = str(tmp_path / "sweep.ckpt")
        baseline = _sweep(system, checkpoint=path)
        ckpt = load_checkpoint(path)
        assert len(ckpt.payload["cells"]) == len(baseline.cells)

        with obs.use_collector(MetricsCollector()) as collector:
            resumed = _sweep(system, checkpoint=path, resume=True)
        counters = _faults_counters(collector)
        assert resumed == baseline
        assert counters["faults.resume.cells_skipped"] == len(baseline.cells)
        assert "faults.cells" not in counters  # nothing recomputed

    def test_resume_requires_checkpoint_path(self, system):
        with pytest.raises(ValueError, match="requires a checkpoint path"):
            _sweep(system, resume=True)

    def test_stale_sweep_checkpoint_rejected(self, system, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        _sweep(system, checkpoint=path)
        service, component, internal, _ = random_quotient_instance(seed=18)
        result = solve_quotient(service, component, int_events=internal)
        assert result.exists
        with pytest.raises(LintError, match="QUOT104"):
            evaluate_resilience(
                service,
                [component],
                result.converter,
                int_events=internal,
                target=0,
                checkpoint=path,
                resume=True,
            )
