"""Unit tests for the seeded random-instance generators."""

from repro.quotient import QuotientProblem
from repro.spec import (
    is_normal_form,
    random_deterministic_service,
    random_quotient_instance,
    random_spec,
    reachable_states,
)


class TestRandomSpec:
    def test_reproducible(self):
        a = random_spec(n_states=8, events=["a", "b"], seed=42)
        b = random_spec(n_states=8, events=["a", "b"], seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_spec(n_states=8, events=["a", "b"], seed=1)
        b = random_spec(n_states=8, events=["a", "b"], seed=2)
        assert a != b

    def test_all_states_reachable_when_connected(self):
        spec = random_spec(n_states=12, events=["a", "b", "c"], seed=7)
        assert reachable_states(spec) == spec.states

    def test_alphabet_as_given(self):
        spec = random_spec(n_states=5, events=["x", "y"], seed=0)
        assert set(spec.alphabet) == {"x", "y"}

    def test_densities_respected_at_extremes(self):
        empty = random_spec(
            n_states=6,
            events=["a"],
            external_density=0.0,
            internal_density=0.0,
            seed=0,
            ensure_connected=False,
        )
        # no transitions at all -> everything except state 0 pruned
        assert len(empty.states) == 1
        dense = random_spec(
            n_states=4,
            events=["a"],
            external_density=1.0,
            internal_density=1.0,
            seed=0,
        )
        assert all(dense.enabled(s) for s in dense.states)


class TestRandomService:
    def test_always_normal_form(self):
        for seed in range(10):
            svc = random_deterministic_service(
                n_states=5, events=["x", "y", "z"], seed=seed
            )
            assert svc.is_deterministic()
            assert is_normal_form(svc)

    def test_reproducible(self):
        a = random_deterministic_service(n_states=5, events=["x"], seed=9)
        b = random_deterministic_service(n_states=5, events=["x"], seed=9)
        assert a == b


class TestRandomInstance:
    def test_builds_valid_problem(self):
        for seed in range(8):
            service, component, int_events, ext = random_quotient_instance(
                seed=seed
            )
            problem = QuotientProblem.build(service, component)
            assert set(problem.interface.ext_events) == set(ext)
            # Int may lose events the component never uses? no: alphabet is
            # declared, so the partition is exact
            assert set(problem.interface.int_events) == set(int_events)

    def test_instances_solvable_without_error(self):
        from repro.quotient import solve_quotient

        outcomes = set()
        for seed in range(6):
            service, component, _, _ = random_quotient_instance(seed=seed)
            result = solve_quotient(service, component)
            outcomes.add(result.exists)
            if result.exists:
                assert result.verification.holds
        # across seeds we expect to see at least one of each outcome
        # (not guaranteed in principle; chosen seeds make it stable)
        assert outcomes
