"""Tests for the executable simulation layer."""

import pytest

from repro.compose import compose_many
from repro.errors import CompositionError
from repro.protocols import (
    ab_channel,
    ab_receiver,
    ab_sender,
    alternating_service,
    ns_channel,
    ns_receiver,
    ns_sender,
)
from repro.simulate import (
    BiasedPolicy,
    FairRandomPolicy,
    ProgressWatchdog,
    RandomPolicy,
    RoundRobinPolicy,
    ScriptedPolicy,
    ServiceMonitor,
    Simulator,
    simulate_system,
    stress,
)
from repro.spec import SpecBuilder
from repro.traces import accepts


def ping_pong():
    left = SpecBuilder("L").external(0, "ping", 1).external(1, "go", 0).initial(0).build()
    right = SpecBuilder("R").external(0, "go", 1).external(1, "pong", 0).initial(0).build()
    return [left, right]


class TestEngine:
    def test_enabled_moves_deterministic_order(self):
        sim = Simulator(ping_pong(), RoundRobinPolicy())
        first = [m.label() for m in sim.enabled_moves()]
        second = [m.label() for m in sim.enabled_moves()]
        assert first == second == ["ping"]

    def test_interaction_requires_both(self):
        sim = Simulator(ping_pong(), RoundRobinPolicy())
        sim.step()  # ping (external to L)
        labels = [m.label() for m in sim.enabled_moves()]
        assert labels == ["go"]  # the shared handoff
        move = sim.step()
        assert move.kind == "interaction"
        assert move.participants == (0, 1)

    def test_run_respects_handoff_discipline(self):
        sim = Simulator(ping_pong(), RoundRobinPolicy())
        log = sim.run(30)
        assert not log.deadlocked
        assert log.external_trace[0] == "ping"
        # pipelining is bounded: L may run at most two pings ahead of R's
        # pongs (one in L's hand, one handed over), never the reverse
        for i in range(1, len(log.external_trace) + 1):
            prefix = log.external_trace[:i]
            pings = prefix.count("ping")
            pongs = prefix.count("pong")
            assert 0 <= pings - pongs <= 2

    def test_deadlock_reported(self):
        stuck = SpecBuilder("S").external(0, "once", 1).initial(0).build()
        sim = Simulator([stuck], RoundRobinPolicy())
        log = sim.run(10)
        assert log.deadlocked
        assert log.external_trace == ("once",)

    def test_internal_moves_logged(self, lossy_hop):
        sim = Simulator([lossy_hop], ScriptedPolicy(["send", "λ@0", "timeout"]))
        sim.run(3)
        kinds = [m.kind for m in sim.log.steps]
        assert kinds == ["external", "internal", "external"]

    def test_reset(self):
        sim = Simulator(ping_pong(), RoundRobinPolicy())
        sim.run(5)
        sim.reset()
        assert sim.states == (0, 0)
        assert not sim.log.steps

    def test_three_way_sharing_rejected(self):
        a = SpecBuilder("a").external(0, "e", 0).initial(0).build()
        with pytest.raises(CompositionError, match="three or more"):
            Simulator([a, a.renamed("b"), a.renamed("c")], RoundRobinPolicy())

    def test_empty_components_rejected(self):
        with pytest.raises(CompositionError):
            Simulator([], RoundRobinPolicy())

    def test_executed_trace_is_composite_trace(self):
        """Agreement with the analytical semantics: the external trace of
        any run is a trace of the composed machine."""
        components = [ab_sender(), ab_channel(), ab_receiver()]
        composite = compose_many(components)
        for seed in range(5):
            sim = Simulator(components, RandomPolicy(seed))
            log = sim.run(400)
            assert accepts(composite, log.external_trace)


class TestPolicies:
    def test_random_reproducible(self):
        runs = []
        for _ in range(2):
            sim = Simulator(
                [ab_sender(), ab_channel(), ab_receiver()], RandomPolicy(7)
            )
            runs.append(sim.run(200).external_trace)
        assert runs[0] == runs[1]

    def test_fair_policy_reaches_external_events(self):
        components = [ab_sender(), ab_channel(), ab_receiver()]
        sim = Simulator(components, FairRandomPolicy(3))
        log = sim.run(2000)
        assert log.count("acc") > 10
        assert log.count("del") > 10

    def test_biased_policy_prefers_losses(self):
        components = [ns_sender(), ns_channel(), ns_receiver()]
        lossy = BiasedPolicy({"internal": 25.0}, seed=5)
        sim = Simulator(components, lossy)
        log = sim.run(1500)
        internal = sum(1 for m in log.steps if m.kind == "internal")
        fair_sim = Simulator(components, RandomPolicy(5))
        fair_log = fair_sim.run(1500)
        fair_internal = sum(1 for m in fair_log.steps if m.kind == "internal")
        assert internal > fair_internal

    def test_scripted_policy_consumes_script(self):
        policy = ScriptedPolicy(["ping", "go", "pong"])
        sim = Simulator(ping_pong(), policy)
        sim.run(3)
        assert policy.exhausted
        assert sim.log.external_trace == ("ping", "pong")


class TestMonitors:
    def test_service_monitor_accepts_valid_run(self, alternator):
        monitor = ServiceMonitor(alternator)
        for e in ("acc", "del", "acc", "del"):
            assert monitor.observe(e)
        assert monitor.verdict().ok

    def test_service_monitor_flags_violation_with_trace(self, alternator):
        monitor = ServiceMonitor(alternator)
        monitor.observe("acc")
        assert not monitor.observe("acc")
        verdict = monitor.verdict()
        assert not verdict.ok
        assert verdict.violation_trace == ("acc", "acc")
        assert "VIOLATION" in verdict.describe()

    def test_monitor_sticky_after_violation(self, alternator):
        monitor = ServiceMonitor(alternator)
        monitor.observe("del")
        assert not monitor.observe("acc")
        assert monitor.verdict().violation_trace == ("del",)

    def test_watchdog_triggers_on_stall(self):
        watchdog = ProgressWatchdog(limit=3)
        from repro.simulate.engine import Move

        internal = Move("internal", None, (0,), (0,), (0,))
        for _ in range(3):
            assert watchdog.observe_move(internal)
        assert not watchdog.observe_move(internal)
        assert watchdog.triggered
        assert "TRIGGERED" in watchdog.describe()

    def test_watchdog_resets_on_external(self):
        watchdog = ProgressWatchdog(limit=3)
        from repro.simulate.engine import Move

        internal = Move("internal", None, (0,), (0,), (0,))
        external = Move("external", "x", (0,), (0,), (0,))
        for _ in range(10):
            watchdog.observe_move(internal)
            watchdog.observe_move(internal)
            watchdog.observe_move(external)
        assert not watchdog.triggered
        assert watchdog.worst_stall == 2


class TestHarness:
    def test_ab_protocol_clean_under_stress(self):
        components = [ab_sender(), ab_channel(), ab_receiver()]
        report = stress(
            components, alternating_service(), seeds=range(6), steps=1200
        )
        assert report.all_ok
        assert report.total_external("del") > 0

    def test_ns_protocol_violates_under_loss_pressure(self):
        """The duplicate-delivery anomaly shows up operationally."""
        components = [ns_sender(), ns_channel(), ns_receiver()]
        violated = False
        for seed in range(12):
            report = simulate_system(
                components,
                alternating_service(),
                steps=1500,
                seed=seed,
                policy=BiasedPolicy(
                    {"internal": 10.0, "del": 5.0}, seed=seed
                ),
            )
            if not report.monitor.ok:
                violated = True
                trace = report.monitor.violation_trace
                # the witness always ends in a duplicate delivery
                assert trace[-2:] == ("del", "del")
                break
        assert violated

    def test_derived_converter_runs_clean(self):
        from repro.protocols import colocated_scenario, ns_receiver
        from repro.quotient import solve_quotient

        scen = colocated_scenario()
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        components = [ab_sender(), ab_channel(), ns_receiver(), result.converter]
        report = stress(
            components, alternating_service(), seeds=range(4), steps=1200
        )
        assert report.all_ok
        # every accept is matched by a delivery (within one in flight)
        for run in report.runs:
            acc = run.external_counts.get("acc", 0)
            del_ = run.external_counts.get("del", 0)
            assert acc - 1 <= del_ <= acc

    def test_report_describe(self):
        components = [ab_sender(), ab_channel(), ab_receiver()]
        report = simulate_system(
            components, alternating_service(), steps=300, seed=0
        )
        text = report.describe()
        assert "seed 0" in text
        assert "monitor OK" in text
