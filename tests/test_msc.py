"""Tests for the ASCII message-sequence-chart renderer."""

from repro.protocols import ab_channel, ab_receiver, ab_sender
from repro.simulate import (
    RoundRobinPolicy,
    ScriptedPolicy,
    Simulator,
    render_msc,
)
from repro.spec import SpecBuilder


def run_ping_pong(steps=6):
    left = (
        SpecBuilder("L").external(0, "ping", 1).external(1, "go", 0).initial(0).build()
    )
    right = (
        SpecBuilder("R").external(0, "go", 1).external(1, "pong", 0).initial(0).build()
    )
    sim = Simulator([left, right], RoundRobinPolicy())
    sim.run(steps)
    return sim


class TestMsc:
    def test_header_has_all_lanes(self):
        sim = run_ping_pong()
        chart = render_msc(sim.log, sim.components)
        header = chart.splitlines()[0]
        assert "L" in header and "R" in header and "(env)" in header

    def test_one_row_per_step(self):
        sim = run_ping_pong(6)
        chart = render_msc(sim.log, sim.components)
        # header + 6 step rows
        assert len(chart.splitlines()) == 7

    def test_interaction_arrow_between_lanes(self):
        sim = run_ping_pong(2)
        chart = render_msc(sim.log, sim.components)
        go_row = next(l for l in chart.splitlines() if "go" in l)
        assert ">" in go_row

    def test_internal_moves_marked(self, lossy_hop):
        sim = Simulator([lossy_hop], ScriptedPolicy(["send", "λ@0", "timeout"]))
        sim.run(3)
        chart = render_msc(sim.log, sim.components)
        assert "* λ" in chart

    def test_internal_moves_hidden_when_asked(self, lossy_hop):
        sim = Simulator([lossy_hop], ScriptedPolicy(["send", "λ@0", "timeout"]))
        sim.run(3)
        chart = render_msc(sim.log, sim.components, include_internal=False)
        assert "* λ" not in chart

    def test_truncation_note(self):
        sim = run_ping_pong(8)
        chart = render_msc(sim.log, sim.components, max_steps=3)
        assert "more steps" in chart

    def test_deadlock_marker(self):
        once = SpecBuilder("S").external(0, "e", 1).initial(0).build()
        sim = Simulator([once], RoundRobinPolicy())
        sim.run(5)
        chart = render_msc(sim.log, sim.components)
        assert "DEADLOCK" in chart

    def test_receive_arrows_point_inward(self):
        components = [ab_sender(), ab_channel(), ab_receiver()]
        sim = Simulator(
            components, ScriptedPolicy(["acc", "-d0", "+d0", "del"])
        )
        sim.run(4)
        chart = render_msc(sim.log, sim.components)
        # +d0 is an interaction between Ach and A1, drawn with an arrow
        assert any("+d0" in line and (">" in line or "<" in line)
                   for line in chart.splitlines())
