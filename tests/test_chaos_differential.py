"""Differential suite: chaotic runs are byte-identical to fault-free runs.

The contract pinned here is the whole point of the supervision layer
(see ``docs/robustness.md``): for ANY problem and ANY seeded
:class:`~repro.chaos.ChaosPlan` — workers killed or hung at arbitrary
tasks, tasks raising, results arriving late or twice, store I/O hitting
``ENOSPC``/``EIO``/torn writes — every observable output (converter,
``f``, phase records, deterministic work counters, budget trip points,
checkpoints) equals the fault-free run's.  Chaos may only change
*scheduling* statistics and add ``chaos.*``/``retry.*``/supervision
counters.

The sweep drives the REAL :class:`~repro.quotient.parallel.ShardExecutor`
supervision logic (detection, inline recovery, respawn accounting,
degradation) over :class:`~repro.chaos.testing.InlinePool` process
doubles with a fake clock, so 200+ random problems run without process
spawns or real waiting; ``TestRealPoolSupervision`` then pins the same
behaviours on actual multiprocessing pools.
"""

import time

import pytest

from repro import obs
from repro.chaos import ChaosPlan, use_chaos
from repro.chaos.testing import chaos_executor_factory
from repro.errors import BudgetExceeded
from repro.persist import (
    InterruptController,
    load_checkpoint,
    save_checkpoint,
)
from repro.quotient import Budget, solve_quotient
from repro.quotient.parallel import ShardExecutor, _use_executor_factory
from repro.quotient.types import QuotientProblem
from repro.spec import random_quotient_instance

#: Deterministic work counters that must survive any fault schedule.
DETERMINISTIC_PREFIXES = ("quotient.",)

#: Fault archetypes swept below.  Each gets its own band of problem
#: seeds, so the suite covers ``len(ARCHETYPES) * SEEDS_PER_ARCHETYPE``
#: distinct problems (>= 200), each under a problem-seeded schedule.
ARCHETYPES = {
    "kills": dict(p_kill=0.15),
    "hangs": dict(hang_at=(0, 2), p_hang=0.05),
    "raises": dict(p_raise=0.2),
    "late-and-twice": dict(p_delay=0.3, p_dup=0.3, delay_polls=3),
    "mixed": dict(p_kill=0.08, p_raise=0.08, p_delay=0.15, p_dup=0.15),
    "massacre": dict(kill_at=(0,), p_kill=0.5),  # degradation territory
}
SEEDS_PER_ARCHETYPE = 34


def _solve(instance, **kwargs):
    service, component, internal, _ = instance
    return solve_quotient(service, component, int_events=internal, **kwargs)


def _key(result):
    return (
        result.exists,
        result.converter,
        result.f,
        result.c0,
        result.c0_f,
        result.safety.spec,
        result.safety.f,
        result.safety.explored,
        result.safety.rejected,
        None if result.progress is None else result.progress.rounds,
        None if result.verification is None else result.verification.holds,
    )


def _work_counters(stats):
    return {
        name: value
        for name, value in stats.counters.items()
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


# ----------------------------------------------------------------------
# the 200+-problem sweep (in-process pool doubles, fake clock)
# ----------------------------------------------------------------------
class TestChaosDifferentialSweep:
    @pytest.mark.parametrize("archetype", sorted(ARCHETYPES))
    def test_archetype_is_byte_identical(self, archetype):
        knobs = ARCHETYPES[archetype]
        base = sorted(ARCHETYPES).index(archetype) * SEEDS_PER_ARCHETYPE
        respawn_budget = 0 if archetype == "massacre" else 1_000
        degradations = 0
        for seed in range(base, base + SEEDS_PER_ARCHETYPE):
            instance = random_quotient_instance(seed=seed)
            with obs.use_collector() as collector:
                baseline = _solve(instance)
            base_work = _work_counters(collector.snapshot())
            plan = ChaosPlan(seed=seed, **knobs)
            factory = chaos_executor_factory(respawn_budget=respawn_budget)
            workers = 2 + seed % 3
            with use_chaos(plan), _use_executor_factory(factory), \
                    obs.use_collector() as collector:
                chaotic = _solve(instance, workers=workers)
            assert _key(chaotic) == _key(baseline), (
                f"{archetype}: outputs diverged at seed {seed}"
            )
            assert _work_counters(collector.snapshot()) == base_work, (
                f"{archetype}: work counters diverged at seed {seed}"
            )
            degradations += len(chaotic.degradations)
        if archetype == "massacre":
            # respawn_budget=0 plus a guaranteed first-task kill: the
            # sweep must actually exercise sequential draining
            assert degradations > 0

    def test_sweep_covers_at_least_200_problems(self):
        assert len(ARCHETYPES) * SEEDS_PER_ARCHETYPE >= 200


# ----------------------------------------------------------------------
# budget trip points survive crash schedules (charged exactly once)
# ----------------------------------------------------------------------
class TestBudgetUnderChaos:
    # seeds with runs long enough to have an interior trip point
    SEEDS = (1, 18, 20, 22, 53)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_trip_point_identical_under_crashes_and_duplicates(self, seed):
        instance = random_quotient_instance(seed=seed)
        probe = InterruptController()
        _solve(instance, interrupt=probe)
        if probe.charges < 4:
            pytest.skip("run too short for an interior budget limit")
        budget = Budget(max_pairs=probe.charges // 2)

        def trip(**kwargs):
            try:
                _solve(instance, budget=budget, **kwargs)
            except BudgetExceeded as exc:
                return exc.phase, exc.partial, exc.checkpoint.to_json_dict()
            return None

        baseline = trip()
        assert baseline is not None
        plan = ChaosPlan(
            seed=seed, p_kill=0.1, p_raise=0.1, p_delay=0.2, p_dup=0.3
        )
        with use_chaos(plan), _use_executor_factory(chaos_executor_factory()):
            chaotic = trip(workers=4)
        assert chaotic is not None
        got, want = dict(chaotic[1]), dict(baseline[1])
        got.pop("elapsed_s"), want.pop("elapsed_s")
        assert got == want  # same partial work: units charged exactly once
        assert chaotic[0] == baseline[0]
        assert chaotic[2] == baseline[2]  # identical checkpoint payload


# ----------------------------------------------------------------------
# checkpoint round-trips under store fault schedules
# ----------------------------------------------------------------------
class TestCheckpointsUnderStoreChaos:
    SEEDS = (1, 18, 20)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_interrupt_persist_resume_under_io_faults(self, seed, tmp_path):
        from repro.errors import InterruptRequested

        instance = random_quotient_instance(seed=seed)
        probe = InterruptController()
        baseline = _solve(instance, interrupt=probe)
        if probe.charges < 3:
            pytest.skip("run too short to interrupt")
        at_charge = probe.charges // 2
        with pytest.raises(InterruptRequested) as excinfo:
            _solve(
                instance,
                interrupt=InterruptController(at_charge=at_charge),
            )
        ckpt = excinfo.value.checkpoint
        assert ckpt is not None
        path = str(tmp_path / "ckpt.json")
        # the save hits transient ENOSPC then a torn write on rewrite;
        # the load hits a transient read error — all healed invisibly
        plan = ChaosPlan(seed=seed, write_enospc_at=(0,), read_error_at=(0,))
        with use_chaos(plan):
            save_checkpoint(path, ckpt)
            loaded = load_checkpoint(path)
        resumed = _solve(instance, resume_from=loaded)
        assert _key(resumed) == _key(baseline)


# ----------------------------------------------------------------------
# real multiprocessing pools: kill, hang, degrade, leak-free exit
# ----------------------------------------------------------------------
def _build_problem(seed=0):
    service, component, internal, _ = random_quotient_instance(seed=seed)
    return QuotientProblem.build(service, component, internal)


class TestRealPoolSupervision:
    def test_killed_workers_recover_byte_identical(self, monkeypatch):
        """Workers killed at their 2nd task at --workers 4: the solve
        completes, outputs match, and no unit is charged twice."""
        monkeypatch.setenv("REPRO_RESPAWN_BUDGET", "10000")
        instance = random_quotient_instance(seed=1)
        probe = InterruptController()
        baseline = _solve(instance, interrupt=probe)
        plan = ChaosPlan(kill_at=(1,))
        chaotic_probe = InterruptController()
        with use_chaos(plan), obs.use_collector() as collector:
            chaotic = _solve(
                instance, workers=4, interrupt=chaotic_probe
            )
        assert _key(chaotic) == _key(baseline)
        # the interrupt controller counts charges: identical totals mean
        # completed units were not re-charged by the recovery machinery
        assert chaotic_probe.charges == probe.charges
        counters = collector.snapshot().counters
        if "kernel.parallel.worker_deaths" in counters:
            assert counters["kernel.parallel.worker_deaths"] >= 1
        assert chaotic.degradations == ()

    def test_hung_workers_recover_via_task_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_DEADLINE", "0.1")
        instance = random_quotient_instance(seed=1)
        baseline = _solve(instance)
        # both workers wedge on their first task for far longer than the
        # deadline; the coordinator must recover inline and move on
        plan = ChaosPlan(hang_at=(0,), hang_s=20.0)
        with use_chaos(plan), obs.use_collector() as collector:
            chaotic = _solve(instance, workers=2)
        assert _key(chaotic) == _key(baseline)
        counters = collector.snapshot().counters
        assert counters.get("kernel.parallel.recovered_units", 0) >= 1

    def test_respawn_exhaustion_degrades_to_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESPAWN_BUDGET", "0")
        instance = random_quotient_instance(seed=1)
        baseline = _solve(instance)
        plan = ChaosPlan(kill_at=(0,))  # every worker dies at its 1st task
        with use_chaos(plan), obs.use_collector() as collector:
            chaotic = _solve(instance, workers=2)
        assert _key(chaotic) == _key(baseline)
        assert len(chaotic.degradations) >= 1
        record = chaotic.degradations[0]
        assert "respawn budget" in record.reason
        assert record.worker_deaths >= 1
        # the structured record also lands in the stats event stream and
        # the JSON payload, so ledgers and dashboards can see it
        snapshot = collector.snapshot()
        assert any(
            e.name == "executor.degraded" for e in snapshot.events
        )
        payload = chaotic.to_json_dict()
        assert payload["degradations"][0]["reason"] == record.reason

    def test_healthy_runs_carry_no_degradations(self):
        instance = random_quotient_instance(seed=1)
        result = _solve(instance, workers=2)
        assert result.degradations == ()
        assert "degradations" not in result.to_json_dict()


class TestExecutorLifecycle:
    def test_context_manager_terminates_pool_on_exception(self):
        problem = _build_problem(seed=0)
        with pytest.raises(RuntimeError, match="boom"):
            with ShardExecutor(problem, 2) as executor:
                procs = list(executor._pool._pool)
                assert all(p.is_alive() for p in procs)
                raise RuntimeError("boom")
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in procs):
            assert time.monotonic() < deadline, "worker processes leaked"
            time.sleep(0.02)
        assert executor._closed

    def test_close_is_idempotent(self):
        problem = _build_problem(seed=0)
        executor = ShardExecutor(problem, 2)
        executor.close()
        executor.close()
        with ShardExecutor(problem, 2) as again:
            pass
        again.close()

    def test_degraded_executor_drains_inline_and_closes(self):
        """Unit-level degradation: pending work is still delivered after
        the pool is gone, and close() stays safe."""
        problem = _build_problem(seed=0)
        with ShardExecutor(problem, 2) as executor:
            cp = executor._cp
            start = cp.ext_closure(
                [cp.ca.initial * cp.n_component + cp.cb.initial]
            )
            assert start is not None
            executor.submit(("k", start), "safety", (start,))
            executor._degrade("test-forced degradation")
            assert executor._pool is None
            out = executor.result(("k", start))
            expected = tuple(
                cp.extend(start, k) for k in range(len(cp.int_events))
            )
            assert out == expected
        from repro.quotient.parallel import drain_degradations

        records = drain_degradations()
        assert any(r.reason == "test-forced degradation" for r in records)


class TestMeterDuplicateAccounting:
    def test_duplicate_units_are_counted_and_charged_once(self):
        from repro.quotient.budget import BudgetMeter

        meter = BudgetMeter(Budget(), "safety")
        meter.charge_unit("u", pairs=1)
        meter.charge_unit("u", pairs=1)
        meter.charge_unit("u", pairs=1)
        assert meter.pairs == 1
        assert meter.duplicate_units == 2
