"""Fault-injection tests for the persist store's resilience layers.

Exercises the two defence lines of :mod:`repro.persist.store` through
the :mod:`repro.chaos` seams:

* the **retry policy** heals transient I/O faults (``ENOSPC`` that
  clears, an ``EIO`` hiccup) invisibly, counting ``retry.*``;
* the **``.prev`` fallback** absorbs what retries cannot — a torn
  primary left by an injected partial write — counting
  ``persist.fallbacks``.

Every schedule here is deterministic (explicit ``*_at`` indices), and
every assertion checks both the recovered *data* and the counters that
say the recovery happened.
"""

import pytest

from repro import obs
from repro.chaos import ChaosPlan, RetryPolicy, use_chaos
from repro.errors import PersistError
from repro.persist.store import read_envelope, write_envelope

BODY_A = {"value": "first", "n": 1}
BODY_B = {"value": "second", "n": 2}


# ----------------------------------------------------------------------
# transient write faults: the retry layer heals them
# ----------------------------------------------------------------------
class TestTransientWriteFaults:
    def test_enospc_once_is_retried_and_recovered(self, tmp_path):
        path = str(tmp_path / "doc.json")
        plan = ChaosPlan(write_enospc_at=(0,))
        with use_chaos(plan), obs.use_collector() as collector:
            write_envelope(path, BODY_A)
        assert read_envelope(path) == BODY_A
        counters = collector.snapshot().counters
        assert counters["chaos.injected.store.write.enospc"] == 1
        assert counters["retry.retries"] == 1
        assert counters["retry.recoveries"] == 1

    def test_transient_eio_is_retried_and_recovered(self, tmp_path):
        path = str(tmp_path / "doc.json")
        plan = ChaosPlan(write_error_at=(0,))
        with use_chaos(plan), obs.use_collector() as collector:
            write_envelope(path, BODY_A)
        assert read_envelope(path) == BODY_A
        assert collector.snapshot().counters["retry.recoveries"] == 1

    def test_persistent_write_fault_surfaces_as_persist_error(self, tmp_path):
        path = str(tmp_path / "doc.json")
        plan = ChaosPlan(write_enospc_at=(0, 1, 2, 3))  # outlasts retries
        with use_chaos(plan), obs.use_collector() as collector:
            with pytest.raises(PersistError, match="ENOSPC"):
                write_envelope(path, BODY_A)
        counters = collector.snapshot().counters
        assert counters["retry.giveups"] == 1
        assert counters["retry.attempts"] == 3

    def test_failed_write_preserves_the_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        plan = ChaosPlan(write_error_at=(0, 1, 2, 3))
        with use_chaos(plan):
            with pytest.raises(PersistError):
                write_envelope(path, BODY_B)
        # the error fired before any rename: the primary is still good
        assert read_envelope(path) == BODY_A

    def test_custom_retry_policy_budget_is_respected(self, tmp_path):
        path = str(tmp_path / "doc.json")
        plan = ChaosPlan(write_enospc_at=(0, 1, 2))
        generous = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with use_chaos(plan):
            write_envelope(path, BODY_A, retry=generous)  # 4th attempt wins
        assert read_envelope(path) == BODY_A
        stingy = RetryPolicy(max_attempts=1)
        with use_chaos(ChaosPlan(write_enospc_at=(0,))):
            with pytest.raises(PersistError):
                write_envelope(path, BODY_B, retry=stingy)


# ----------------------------------------------------------------------
# partial writes: torn primary, .prev fallback
# ----------------------------------------------------------------------
class TestPartialWrites:
    def test_partial_write_falls_back_to_prev(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        plan = ChaosPlan(write_partial_at=(0,))
        with use_chaos(plan), obs.use_collector() as collector:
            write_envelope(path, BODY_B)  # "succeeds", primary is torn
        chaos_counters = collector.snapshot().counters
        assert chaos_counters["chaos.injected.store.write.partial"] == 1
        with obs.use_collector() as collector:
            assert read_envelope(path) == BODY_A  # previous good snapshot
        assert collector.snapshot().counters["persist.fallbacks"] == 1

    def test_partial_write_without_prev_is_unreadable(self, tmp_path):
        path = str(tmp_path / "doc.json")
        plan = ChaosPlan(write_partial_at=(0,))
        with use_chaos(plan):
            write_envelope(path, BODY_A)
        with pytest.raises(PersistError):
            read_envelope(path)

    def test_fallback_disabled_surfaces_the_torn_primary(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        with use_chaos(ChaosPlan(write_partial_at=(0,))):
            write_envelope(path, BODY_B)
        with pytest.raises(PersistError, match="corrupt"):
            read_envelope(path, fallback=False)

    def test_next_good_write_repairs_the_primary(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        with use_chaos(ChaosPlan(write_partial_at=(0,))):
            write_envelope(path, BODY_B)
        write_envelope(path, BODY_B)  # fault-free rewrite
        assert read_envelope(path) == BODY_B
        with obs.use_collector() as collector:
            read_envelope(path)
        assert "persist.fallbacks" not in collector.snapshot().counters


# ----------------------------------------------------------------------
# read faults
# ----------------------------------------------------------------------
class TestReadFaults:
    def test_transient_read_fault_is_retried(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        plan = ChaosPlan(read_error_at=(0,))
        with use_chaos(plan), obs.use_collector() as collector:
            assert read_envelope(path) == BODY_A
        counters = collector.snapshot().counters
        assert counters["chaos.injected.store.read"] == 1
        assert counters["retry.recoveries"] == 1
        assert "persist.fallbacks" not in counters

    def test_persistent_read_fault_falls_back_to_prev(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        write_envelope(path, BODY_B)  # rotates A to .prev
        # primary read fails across all retry attempts; .prev read is clean
        plan = ChaosPlan(read_error_at=(0, 1, 2))
        with use_chaos(plan), obs.use_collector() as collector:
            assert read_envelope(path) == BODY_A
        counters = collector.snapshot().counters
        assert counters["persist.fallbacks"] == 1
        assert counters["retry.giveups"] == 1

    def test_everything_failing_reports_both_errors(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_envelope(path, BODY_A)
        write_envelope(path, BODY_B)
        plan = ChaosPlan(read_error_at=tuple(range(8)))  # primary and .prev
        with use_chaos(plan):
            with pytest.raises(PersistError, match="both snapshots"):
                read_envelope(path)


# ----------------------------------------------------------------------
# checkpoints and the ledger ride the same machinery
# ----------------------------------------------------------------------
class TestHigherLevelsInheritResilience:
    def _checkpoint(self, marker=1):
        from repro.persist import Checkpoint

        return Checkpoint(
            kind="quotient",
            fingerprint=format(marker, "064d"),
            phase="safety",
            payload={"marker": marker},
        )

    def test_checkpoint_save_survives_transient_enospc(self, tmp_path):
        from repro.persist import load_checkpoint, save_checkpoint

        ckpt = self._checkpoint()
        path = str(tmp_path / "ckpt.json")
        with use_chaos(ChaosPlan(write_enospc_at=(0,))):
            save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path)
        assert loaded.to_json_dict() == ckpt.to_json_dict()

    def test_checkpoint_partial_write_falls_back(self, tmp_path):
        from repro.persist import load_checkpoint, save_checkpoint

        ckpt = self._checkpoint()
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, ckpt)
        torn = self._checkpoint(marker=2)
        with use_chaos(ChaosPlan(write_partial_at=(0,))):
            save_checkpoint(path, torn)
        with obs.use_collector() as collector:
            loaded = load_checkpoint(path)
        assert loaded.to_json_dict() == ckpt.to_json_dict()
        assert collector.snapshot().counters["persist.fallbacks"] == 1

    def test_ledger_append_survives_transient_write_fault(self, tmp_path):
        from repro.obs.ledger import Ledger, append_run

        path = str(tmp_path / "ledger.json")
        append_run(path, kind="solve", fingerprint="f1", outcome="complete")
        with use_chaos(ChaosPlan(write_enospc_at=(0,))):
            append_run(path, kind="solve", fingerprint="f2", outcome="complete")
        runs = Ledger(path).read()
        assert [r.fingerprint for r in runs] == ["f1", "f2"]
