"""CLI tests for the ``resilience`` subcommand and the budget flags."""

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).resolve().parent / "golden"


class TestResilienceCommand:
    def test_scenario_text_matches_golden(self, capsys):
        assert main(["resilience", "--scenario", "colocated"]) == 0
        out = capsys.readouterr().out
        assert out == (GOLDEN / "resilience_colocated.txt").read_text()

    def test_scenario_json_matches_golden(self, capsys):
        assert (
            main(["resilience", "--scenario", "colocated", "--format", "json"])
            == 0
        )
        ours = json.loads(capsys.readouterr().out)
        golden = json.loads(
            (GOLDEN / "resilience_colocated.json").read_text()
        )
        assert ours == golden

    def test_fault_and_severity_filters(self, capsys):
        assert (
            main(
                [
                    "resilience",
                    "--scenario",
                    "colocated",
                    "--faults",
                    "loss",
                    "--severities",
                    "1",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 1
        assert payload["cells"][0]["model"]["kind"] == "loss"
        assert payload["cells"][0]["verdict"] == "tolerated"

    def test_unknown_fault_kind_is_an_error(self, capsys):
        assert (
            main(["resilience", "--scenario", "colocated", "--faults", "nope"])
            == 2
        )
        assert "unknown fault kinds" in capsys.readouterr().err

    def test_budget_interrupt_exits_3(self, capsys):
        assert (
            main(
                [
                    "resilience",
                    "--scenario",
                    "colocated",
                    "--budget-pairs",
                    "3",
                ]
            )
            == 3
        )
        assert "budget exceeded" in capsys.readouterr().out

    def test_file_mode_requires_arguments(self, capsys):
        assert main(["resilience"]) == 2
        assert "resilience needs" in capsys.readouterr().err

    def test_scenario_and_file_are_exclusive(self, capsys, tmp_path):
        f = tmp_path / "x.spec"
        f.write_text("spec S\n    initial 0\n    0 -> 0 : acc\nend\n")
        assert (
            main(["resilience", str(f), "--scenario", "colocated"]) == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_no_rederive_runs(self, capsys):
        assert (
            main(
                [
                    "resilience",
                    "--scenario",
                    "colocated",
                    "--no-rederive",
                    "--faults",
                    "duplication",
                    "--severities",
                    "1",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        cell = payload["cells"][0]
        assert cell["verdict"] == "safety-broken"
        assert cell["rederive"]["attempted"] is False


class TestSolveBudgetFlags:
    @pytest.fixture()
    def problem_file(self, tmp_path):
        # tiny solvable quotient problem: service = component's externals
        path = tmp_path / "p.spec"
        path.write_text(
            "spec service\n"
            "    initial 0\n"
            "    0 -> 1 : a\n"
            "    1 -> 0 : b\n"
            "end\n"
            "spec component\n"
            "    initial 0\n"
            "    0 -> 1 : a\n"
            "    1 -> 2 : m\n"
            "    2 -> 0 : b\n"
            "end\n"
        )
        return str(path)

    def test_budget_exceeded_exit_code(self, problem_file, capsys):
        code = main(
            ["solve", problem_file, "service", "component",
             "--budget-pairs", "1"]
        )
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().out

    def test_budget_exceeded_json(self, problem_file, capsys):
        code = main(
            ["solve", problem_file, "service", "component",
             "--budget-pairs", "1", "--format", "json"]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "budget-exceeded"
        assert payload["phase"] == "safety"

    def test_generous_budget_solves_normally(self, problem_file, capsys):
        code = main(
            ["solve", problem_file, "service", "component",
             "--budget-pairs", "100000"]
        )
        assert code == 0


class TestSimulateDeadlockSurfacing:
    def test_deadlock_location_is_printed(self, capsys, tmp_path):
        f = tmp_path / "dead.spec"
        # `stop` leads to a state with no outgoing transition: deadlock
        f.write_text(
            "spec only\n"
            "    initial 0\n"
            "    0 -> 1 : stop\n"
            "end\n"
        )
        assert main(["simulate", str(f), "only", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "DEADLOCKED" in out
        assert "deadlock at step 1 in state (only=1)" in out
