"""Differential property test: interrupt anywhere, resume, compare.

The pinned contract (the heart of crash-safe resume): for ANY problem and
ANY charge boundary, a solve interrupted there and resumed from its
checkpoint produces results identical to the uninterrupted run — same
converter, same ``f``, same safety machine, same work counters, same
progress rounds — on the compiled-kernel and the reference path alike.

The interrupt point is drawn as a fraction of the run's total charge
count (probed with a counting :class:`InterruptController`), so the test
exercises interruptions in the safety phase, the progress phase, and the
final verification alike.  The checkpoint is additionally round-tripped
through JSON on every example, so what is compared is what a crash would
actually leave on disk.
"""

import json

from hypothesis import assume, given, settings, strategies as st

from repro.errors import InterruptRequested
from repro.persist import Checkpoint, InterruptController
from repro.quotient import solve_quotient
from repro.spec import random_quotient_instance, use_kernel

SEEDS = st.integers(min_value=0, max_value=10_000)
FRACTIONS = st.floats(min_value=0.0, max_value=1.0)


def _solve(instance, **kwargs):
    service, component, internal, _ = instance
    return solve_quotient(service, component, int_events=internal, **kwargs)


def _key(result):
    return (
        result.exists,
        result.converter,
        result.f,
        result.c0,
        result.c0_f,
        result.safety.spec,
        result.safety.f,
        result.safety.explored,
        result.safety.rejected,
        None if result.progress is None else result.progress.rounds,
        None if result.verification is None else result.verification.holds,
    )


def _interrupt_and_resume(instance, fraction, *, resume_kernel=None):
    """Interrupt at ``fraction`` of the run's charges, then resume."""
    probe = InterruptController()
    baseline = _solve(instance, interrupt=probe)
    total = probe.charges
    assume(total >= 2)  # trivial runs have no interior boundary
    at_charge = 1 + round(fraction * (total - 2))
    try:
        _solve(instance, interrupt=InterruptController(at_charge=at_charge))
    except InterruptRequested as exc:
        ckpt = exc.checkpoint
        assert ckpt is not None
        # resume from what a crash would leave on disk
        ckpt = Checkpoint.from_json_dict(
            json.loads(json.dumps(ckpt.to_json_dict()))
        )
        if resume_kernel is None:
            resumed = _solve(instance, resume_from=ckpt)
        else:
            with use_kernel(resume_kernel):
                resumed = _solve(instance, resume_from=ckpt)
        return _key(baseline), _key(resumed)
    # at_charge <= total, so the interrupt must have fired
    raise AssertionError(
        f"interrupt at charge {at_charge}/{total} never fired"
    )


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, fraction=FRACTIONS)
def test_resume_identical_kernel_path(seed, fraction):
    instance = random_quotient_instance(seed=seed)
    with use_kernel(True):
        baseline, resumed = _interrupt_and_resume(instance, fraction)
    assert resumed == baseline


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, fraction=FRACTIONS)
def test_resume_identical_reference_path(seed, fraction):
    instance = random_quotient_instance(seed=seed)
    with use_kernel(False):
        baseline, resumed = _interrupt_and_resume(instance, fraction)
    assert resumed == baseline


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, fraction=FRACTIONS, to_kernel=st.booleans())
def test_resume_crosses_paths(seed, fraction, to_kernel):
    """Checkpoints are path-independent: interrupt on one path, resume on
    the other, still identical (pair sets are stored in the reference
    representation, never as kernel codes)."""
    instance = random_quotient_instance(seed=seed)
    with use_kernel(not to_kernel):
        baseline, resumed = _interrupt_and_resume(
            instance, fraction, resume_kernel=to_kernel
        )
    assert resumed == baseline
