"""Golden-file tests for the observability exporters.

A deterministic snapshot (fake clock: 1 ms per reading) is rendered
through every exporter and compared byte-for-byte against the stored
goldens.  To regenerate after an intentional format change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_export.py

— and describe the change in docs/observability.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.obs import MetricsCollector
from repro.obs.export import attr_safe, write_chrome_trace

GOLDEN = Path(__file__).resolve().parent / "golden"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        value = self.now
        self.now += 0.001
        return value


def _deterministic_snapshot():
    """A small but representative solve-shaped span tree."""
    collector = MetricsCollector(clock=FakeClock())
    with obs.use_collector(collector):
        with obs.span("solve_quotient", service="S", component="B") as sp:
            with obs.span("safety_phase") as safety:
                obs.add("quotient.safety.pairs_explored", 9)
                obs.gauge("quotient.safety.c0_states", 4)
                safety.set(exists=True)
            with obs.span("progress_phase"):
                with obs.span("progress_round", round=0):
                    obs.add("quotient.progress.pairs_checked", 6)
                obs.add("quotient.progress.rounds", 1)
                obs.gauge("quotient.progress.final_states", 4)
            obs.event("checkpoint.write", path="run.ckpt", phase="progress")
            obs.event("budget.exceeded", phase="progress", limit="max_pairs")
            sp.set(exists=True)
        collector.span_start("left_open")
    return collector.snapshot()


def _check_golden(name: str, rendered: str) -> None:
    path = GOLDEN / name
    if UPDATE:
        path.write_text(rendered, encoding="utf-8")
    assert path.exists(), f"missing golden {path}; regenerate (see module docstring)"
    assert rendered == path.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def snapshot():
    return _deterministic_snapshot()


class TestTextRendering:
    def test_profile_tree_golden(self, snapshot):
        _check_golden("obs_profile.txt", snapshot.render_text() + "\n")

    def test_metrics_text_golden(self, snapshot):
        _check_golden("obs_metrics.txt", snapshot.render_metrics_text() + "\n")

    def test_open_span_is_marked(self, snapshot):
        assert "(open)" in snapshot.render_text()

    def test_empty_snapshot_renders_placeholder(self):
        empty = MetricsCollector(clock=FakeClock()).snapshot()
        assert empty.render_text() == "(no telemetry recorded)"
        assert empty.render_metrics_text() == "(no metrics recorded)"


class TestJsonExport:
    def test_json_golden(self, snapshot):
        _check_golden("obs_snapshot.json", snapshot.to_json() + "\n")

    def test_dict_shape(self, snapshot):
        payload = snapshot.to_dict()
        assert payload["version"] == 1
        assert [s["name"] for s in payload["spans"]][0] == "solve_quotient"
        roots = [s for s in payload["spans"] if s["parent"] is None]
        assert {s["name"] for s in roots} == {"solve_quotient", "left_open"}
        for s in payload["spans"]:
            assert s["duration_ms"] >= 0
        assert payload["counters"]["quotient.safety.pairs_explored"] == 9
        assert payload["gauges"]["quotient.progress.final_states"] == 4

    def test_json_round_trips(self, snapshot):
        assert json.loads(snapshot.to_json()) == snapshot.to_dict()


class TestChromeTrace:
    def test_trace_golden(self, snapshot, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(snapshot, str(path))
        _check_golden("obs_trace.json", path.read_text(encoding="utf-8"))

    def test_trace_event_structure(self, snapshot):
        doc = snapshot.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "C", "i"}
        assert events[0]["ph"] == "M"  # process metadata first
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(snapshot.spans)
        for e in complete:
            assert isinstance(e["ts"], int) and isinstance(e["dur"], int)
            assert e["pid"] == 1 and e["tid"] == 1
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == len(snapshot.counters) + len(snapshot.gauges)

    def test_instant_events(self, snapshot):
        instants = [
            e for e in snapshot.to_chrome_trace()["traceEvents"]
            if e["ph"] == "i"
        ]
        assert [e["name"] for e in instants] == [
            "checkpoint.write", "budget.exceeded",
        ]
        for e in instants:
            assert e["s"] == "g"  # global scope: visible across the track
            assert isinstance(e["ts"], int)
            assert e["pid"] == 1 and e["tid"] == 1
        assert instants[0]["args"] == {"path": "run.ckpt", "phase": "progress"}


class TestAttrSafe:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert attr_safe(value) == value

    def test_sets_sorted_deterministically(self):
        assert attr_safe({3, 1, 2}) == [1, 2, 3]
        assert attr_safe(frozenset({"b", "a"})) == ["a", "b"]

    def test_nested_containers(self):
        assert attr_safe((1, [2, {"k": {4, 3}}])) == [1, [2, {"k": [3, 4]}]]

    def test_dict_keys_stringified_and_sorted(self):
        assert attr_safe({2: "b", 1: "a"}) == {"1": "a", "2": "b"}

    def test_fallback_is_repr(self):
        class Weird:
            def __repr__(self) -> str:
                return "<weird>"

        assert attr_safe(Weird()) == "<weird>"
