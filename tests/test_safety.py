"""Unit tests for safety satisfaction (trace inclusion)."""

import pytest

from repro.errors import AlphabetError
from repro.satisfy import satisfies_safety, trace_inclusion_counterexample
from repro.spec import SpecBuilder, extend_alphabet
from repro.traces import accepts


class TestSafetyHolds:
    def test_reflexive(self, alternator):
        result = satisfies_safety(alternator, alternator)
        assert result.holds
        assert result.counterexample is None
        assert bool(result)

    def test_subset_behaviour_satisfies(self, alternator):
        # a machine that does one acc/del round then stops
        once = (
            SpecBuilder("once")
            .external(0, "acc", 1)
            .external(1, "del", 2)
            .event("acc")
            .event("del")
            .initial(0)
            .build()
        )
        assert satisfies_safety(once, alternator).holds

    def test_empty_machine_satisfies_everything(self, alternator):
        silent = (
            SpecBuilder("silent").state(0).event("acc").event("del").initial(0).build()
        )
        assert satisfies_safety(silent, alternator).holds

    def test_nondeterministic_impl_within_spec(self, lossy_hop, alternator):
        renamed = (
            SpecBuilder("svc")
            .external(0, "send", 1)
            .external(1, "arrive", 0)
            .external(1, "timeout", 0)
            .initial(0)
            .build()
        )
        assert satisfies_safety(lossy_hop, renamed).holds


class TestSafetyFails:
    def test_counterexample_is_shortest(self, alternator):
        eager = (
            SpecBuilder("eager")
            .external(0, "acc", 1)
            .external(1, "acc", 0)
            .event("del")
            .initial(0)
            .build()
        )
        result = satisfies_safety(eager, alternator)
        assert not result.holds
        assert result.counterexample == ("acc", "acc")

    def test_counterexample_is_a_trace_of_impl_not_service(self, alternator):
        bad = (
            SpecBuilder("bad").external(0, "del", 0).event("acc").initial(0).build()
        )
        result = satisfies_safety(bad, alternator)
        assert result.counterexample == ("del",)
        assert accepts(bad, result.counterexample)
        assert not accepts(alternator, result.counterexample)

    def test_violation_behind_internal_steps(self, alternator):
        sneaky = (
            SpecBuilder("sneaky")
            .external(0, "acc", 1)
            .internal(1, 2)
            .external(2, "acc", 0)
            .event("del")
            .initial(0)
            .build()
        )
        result = satisfies_safety(sneaky, alternator)
        assert not result.holds
        assert result.counterexample == ("acc", "acc")

    def test_nondeterministic_service_union_semantics(self):
        # service can do a.b or a.c depending on hidden choice; impl doing
        # a then both b and c is still safe (trace union), impl doing a.d is not
        service = (
            SpecBuilder("svc")
            .internal(0, 1)
            .internal(0, 2)
            .external(1, "a", 3)
            .external(2, "a", 4)
            .external(3, "b", 3)
            .external(4, "c", 4)
            .event("d")
            .initial(0)
            .build()
        )
        both = (
            SpecBuilder("impl")
            .external(0, "a", 1)
            .external(1, "b", 2)
            .external(1, "c", 3)
            .event("d")
            .initial(0)
            .build()
        )
        assert satisfies_safety(both, service).holds
        bad = (
            SpecBuilder("impl2")
            .external(0, "a", 1)
            .external(1, "d", 2)
            .event("b").event("c")
            .initial(0)
            .build()
        )
        result = satisfies_safety(bad, service)
        assert result.counterexample == ("a", "d")


class TestInterfaceValidation:
    def test_alphabet_mismatch_rejected(self, alternator):
        other = SpecBuilder("o").external(0, "zzz", 0).initial(0).build()
        with pytest.raises(AlphabetError, match="identical interfaces"):
            satisfies_safety(other, alternator)

    def test_extended_alphabet_fixes_mismatch(self, alternator):
        partial = SpecBuilder("p").external(0, "acc", 1).initial(0).build()
        aligned = extend_alphabet(partial, ["del"])
        assert satisfies_safety(aligned, alternator).holds


class TestConvenienceWrapper:
    def test_counterexample_none_when_included(self, alternator):
        assert trace_inclusion_counterexample(alternator, alternator) is None

    def test_counterexample_returned(self, alternator):
        bad = SpecBuilder("b").external(0, "del", 0).event("acc").initial(0).build()
        assert trace_inclusion_counterexample(bad, alternator) == ("del",)

    def test_describe_mentions_trace(self, alternator):
        bad = SpecBuilder("b").external(0, "del", 0).event("acc").initial(0).build()
        text = satisfies_safety(bad, alternator).describe()
        assert "del" in text and "violated" in text
