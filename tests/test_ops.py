"""Unit tests for structural spec operations."""

import pytest

from repro.errors import SpecError
from repro.events import Alphabet
from repro.spec import (
    SpecBuilder,
    Specification,
    complete,
    extend_alphabet,
    hide_events,
    prune_unreachable,
    relabel_canonical,
    remove_states,
    rename_events,
    restrict_events,
)
from repro.traces import accepts


@pytest.fixture
def machine():
    return (
        SpecBuilder("m")
        .external(0, "a", 1)
        .external(1, "b", 2)
        .external(2, "c", 0)
        .internal(1, 0)
        .initial(0)
        .build()
    )


class TestRenameEvents:
    def test_rename(self, machine):
        renamed = rename_events(machine, {"a": "x"})
        assert "x" in renamed.alphabet
        assert "a" not in renamed.alphabet
        assert (0, "x", 1) in renamed.external

    def test_unmapped_events_kept(self, machine):
        renamed = rename_events(machine, {"a": "x"})
        assert (1, "b", 2) in renamed.external

    def test_merge_rejected(self, machine):
        with pytest.raises(SpecError, match="merges"):
            rename_events(machine, {"a": "b"})

    def test_swap_is_legal(self, machine):
        swapped = rename_events(machine, {"a": "b", "b": "a"})
        assert (0, "b", 1) in swapped.external
        assert (1, "a", 2) in swapped.external


class TestHideEvents:
    def test_hidden_event_becomes_internal(self, machine):
        hidden = hide_events(machine, ["b"])
        assert "b" not in hidden.alphabet
        assert (1, 2) in hidden.internal
        assert all(e != "b" for _, e, _ in hidden.external)

    def test_hiding_preserves_visible_traces(self, machine):
        hidden = hide_events(machine, ["b"])
        assert accepts(hidden, ("a", "c"))
        assert not accepts(hidden, ("a", "b"))

    def test_hide_unknown_event_rejected(self, machine):
        with pytest.raises(SpecError, match="not in alphabet"):
            hide_events(machine, ["zzz"])

    def test_hidden_self_loop_dropped(self):
        spec = SpecBuilder("m").external(0, "a", 0).initial(0).build()
        hidden = hide_events(spec, ["a"])
        assert hidden.internal == frozenset()


class TestAlphabetOps:
    def test_extend_alphabet(self, machine):
        extended = extend_alphabet(machine, ["zzz"])
        assert "zzz" in extended.alphabet
        assert extended.external == machine.external

    def test_restrict_events_drops_transitions(self, machine):
        restricted = restrict_events(machine, ["a", "b"])
        assert restricted.alphabet == Alphabet(["a", "b"])
        assert all(e != "c" for _, e, _ in restricted.external)

    def test_restrict_keeps_internal(self, machine):
        restricted = restrict_events(machine, ["a"])
        assert restricted.internal == machine.internal


class TestPruneAndRemove:
    def test_prune_unreachable(self):
        spec = Specification(
            "m", [0, 1, 99], ["a"], [(0, "a", 1), (99, "a", 0)], [], 0
        )
        pruned = prune_unreachable(spec)
        assert pruned.states == frozenset([0, 1])
        assert all(s != 99 for s, _, _ in pruned.external)

    def test_prune_noop_returns_same_object(self, machine):
        assert prune_unreachable(machine) is machine

    def test_remove_states(self, machine):
        removed = remove_states(machine, [2])
        assert 2 not in removed.states
        assert all(2 not in (s, s2) for s, _, s2 in removed.external)

    def test_remove_initial_rejected(self, machine):
        with pytest.raises(SpecError, match="initial"):
            remove_states(machine, [0])


class TestComplete:
    def test_every_event_enabled_everywhere(self, machine):
        total = complete(machine)
        for s in total.states:
            assert total.enabled(s) == total.alphabet

    def test_sink_absorbs(self, machine):
        total = complete(machine)
        assert "__sink__" in total.states
        for e in total.alphabet:
            assert total.successors("__sink__", e) == frozenset(["__sink__"])

    def test_collision_rejected(self):
        spec = SpecBuilder("m").external("__sink__", "a", "__sink__").build()
        with pytest.raises(SpecError, match="collides"):
            complete(spec)

    def test_original_traces_preserved(self, machine):
        total = complete(machine)
        assert accepts(total, ("a", "b", "c"))
        # and completion adds everything else too
        assert accepts(total, ("c", "c", "c"))


class TestRelabelCanonical:
    def test_idempotent_on_canonical(self, machine):
        once = relabel_canonical(machine)
        assert relabel_canonical(once) == once

    def test_initial_becomes_zero(self):
        spec = SpecBuilder("m").external("x", "a", "y").initial("x").build()
        assert relabel_canonical(spec).initial == 0
