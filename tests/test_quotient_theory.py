"""Property-level tests of the Section 4 theory: the paper's P1-P3
properties, ψ/h consistency, and the invariants (1)-(5) the safety phase
guarantees — checked on random instances against definitional (bounded)
evaluations of `safe` and `h`."""

from hypothesis import given, settings, strategies as st

from repro.quotient import (
    QuotientProblem,
    extend_pairs,
    initial_pairs,
    ok,
    safety_phase,
)
from repro.spec import psi, random_quotient_instance
from repro.traces import (
    accepts,
    enumerate_traces,
    i_projection,
    o_projection,
    states_after,
)

SEEDS = st.integers(min_value=0, max_value=5_000)


def _problem(seed: int) -> QuotientProblem:
    service, component, _, _ = random_quotient_instance(
        n_service=3, n_component=4, n_int_events=2, n_ext_events=2, seed=seed
    )
    return QuotientProblem.build(service, component)


def _h_by_definition(problem: QuotientProblem, r, depth: int):
    """Evaluate h.r directly from its definition over B-traces of bounded
    length.  Exact for pair membership whose witnesses fit in `depth`."""
    component = problem.component
    service = problem.service
    iface = problem.interface
    pairs = set()
    for t in enumerate_traces(component, depth):
        if i_projection(iface, t) != tuple(r):
            continue
        hub = psi(service, o_projection(iface, t))
        if hub is None:
            continue  # o.t not a service trace: contributes no (safe) pair
        for b in states_after(component, t):
            pairs.add((hub, b))
    return frozenset(pairs)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_h_epsilon_matches_definition(seed):
    problem = _problem(seed)
    computed = initial_pairs(problem)
    if computed is None:
        return  # unsafe instance; separate test covers this case
    # bounded definitional evaluation is a subset (witnesses may be longer);
    # and for these small machines depth 8 is exhaustive enough to be equal
    by_def = _h_by_definition(problem, (), 8)
    assert by_def <= computed
    assert computed <= _h_by_definition(problem, (), 10) | computed
    # every computed pair must be definitionally reachable at some depth;
    # spot-check via depth-10 evaluation
    assert computed == _h_by_definition(problem, (), 10) or by_def <= computed


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_phi_matches_definition_one_step(seed):
    problem = _problem(seed)
    start = initial_pairs(problem)
    if start is None:
        return
    for e in sorted(problem.interface.int_events):
        computed = extend_pairs(problem, start, e)
        if computed is None:
            continue
        by_def = _h_by_definition(problem, (e,), 8)
        assert by_def <= computed


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_p1_p2_inductive_safety(seed):
    """P1/P2: every state the safety phase keeps satisfies ok, and the
    resulting machine's traces are exactly the kept extensions."""
    problem = _problem(seed)
    sp = safety_phase(problem)
    if not sp.exists:
        assert initial_pairs(problem) is None
        return
    for pair_set in sp.spec.states:
        assert ok(problem, pair_set)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_c0_transition_function_is_phi(seed):
    """Invariant (3)/(4): following C0's transitions replays φ."""
    problem = _problem(seed)
    sp = safety_phase(problem)
    if not sp.exists:
        return
    spec = sp.spec
    for state in spec.states:
        for e in sorted(problem.interface.int_events):
            targets = spec.successors(state, e)
            candidate = extend_pairs(problem, state, e)
            if candidate is None:
                assert not targets
            else:
                assert targets == frozenset([candidate])


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_c0_traces_lead_to_h_of_trace(seed):
    """Invariant: ↦r c  ⇒  f.c = h.r — walk a few converter traces and
    compare the reached pair set with the definitional h.r (bounded)."""
    problem = _problem(seed)
    sp = safety_phase(problem)
    if not sp.exists:
        return
    spec = sp.spec
    for r in enumerate_traces(spec, 2):
        reached = states_after(spec, r)
        assert len(reached) == 1  # C0 is deterministic
        (pair_set,) = reached
        by_def = _h_by_definition(problem, r, 8)
        assert by_def <= pair_set


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_unsafe_epsilon_iff_component_alone_violates(seed):
    """ok(h.ε) fails exactly when B, with no converter cooperation, can
    reach an Ext-violation of the service through Ext-only behaviour."""
    problem = _problem(seed)
    component = problem.component
    service = problem.service
    iface = problem.interface
    computed = initial_pairs(problem)

    violating = False
    for t in enumerate_traces(component, 6):
        if i_projection(iface, t) != ():
            continue
        o = o_projection(iface, t)
        if not accepts(service, o):
            violating = True
            break
    if violating:
        assert computed is None
