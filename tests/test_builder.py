"""Unit tests for SpecBuilder."""

import pytest

from repro.errors import SpecError
from repro.events import Alphabet
from repro.spec import SpecBuilder


class TestBuilder:
    def test_fluent_chaining_returns_self(self):
        b = SpecBuilder("m")
        assert b.external(0, "a", 1) is b
        assert b.internal(1, 0) is b
        assert b.initial(0) is b
        assert b.state(2) is b
        assert b.event("ghost") is b

    def test_states_inferred_from_transitions(self):
        spec = SpecBuilder("m").external(0, "a", 1).internal(1, 2).build()
        assert spec.states == frozenset([0, 1, 2])

    def test_alphabet_inferred_from_transitions(self):
        spec = SpecBuilder("m").external(0, "a", 1).external(1, "b", 0).build()
        assert spec.alphabet == Alphabet(["a", "b"])

    def test_declared_event_without_transitions(self):
        spec = SpecBuilder("m").state(0).event("refused").initial(0).build()
        assert "refused" in spec.alphabet
        assert spec.enabled(0) == Alphabet([])

    def test_default_initial_is_first_mentioned(self):
        spec = SpecBuilder("m").external("a0", "e", "a1").build()
        assert spec.initial == "a0"

    def test_explicit_initial_overrides(self):
        spec = SpecBuilder("m").external(0, "e", 1).initial(1).build()
        assert spec.initial == 1

    def test_initial_declares_new_state(self):
        spec = SpecBuilder("m").initial("lonely").build()
        assert spec.states == frozenset(["lonely"])

    def test_empty_builder_rejected(self):
        with pytest.raises(SpecError, match="no states"):
            SpecBuilder("m").build()

    def test_bulk_externals(self):
        spec = (
            SpecBuilder("m")
            .externals([(0, "a", 1), (1, "b", 0)])
            .initial(0)
            .build()
        )
        assert len(spec.external) == 2

    def test_bulk_internals(self):
        spec = (
            SpecBuilder("m")
            .internals([(0, 1), (1, 2)])
            .initial(0)
            .build()
        )
        assert len(spec.internal) == 2

    def test_build_is_repeatable(self):
        b = SpecBuilder("m").external(0, "a", 1).initial(0)
        assert b.build() == b.build()

    def test_duplicate_transitions_collapse(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(0, "a", 1)
            .initial(0)
            .build()
        )
        assert len(spec.external) == 1
