"""Tests for budgeted solving (:mod:`repro.quotient.budget`).

The contract under test:

* a budget that is never hit leaves every result **byte-identical** to an
  unbudgeted run (same converter, same ``f``, same phase records);
* count limits (``max_pairs`` / ``max_states``) trip **deterministically**
  — at the same charge, with the same partial statistics — on the
  compiled-kernel and reference paths alike;
* :class:`~repro.errors.BudgetExceeded` is structured: it names the
  interrupted phase, the violated limit, and carries partial progress.
"""

import pytest

from repro.compose import compose
from repro.errors import BudgetExceeded
from repro.protocols.configs import colocated_scenario
from repro.quotient import Budget, solve_quotient
from repro.quotient.budget import TIME_CHECK_INTERVAL, BudgetMeter
from repro.spec import use_kernel


@pytest.fixture(scope="module")
def scenario():
    return colocated_scenario()


def _solve(scenario, **kwargs):
    return solve_quotient(
        scenario.service,
        scenario.composite,
        int_events=scenario.interface.int_events,
        **kwargs,
    )


class TestBudgetValueObject:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_pairs=0)
        with pytest.raises(ValueError):
            Budget(max_states=-1)
        with pytest.raises(ValueError):
            Budget(wall_time_s=0.0)

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_pairs=1).unlimited

    def test_json(self):
        d = Budget(max_pairs=5, wall_time_s=1.5).to_json_dict()
        assert d == {
            "max_pairs": 5,
            "max_states": None,
            "wall_time_s": 1.5,
        }

    def test_meter_charges_and_trips(self):
        meter = Budget(max_pairs=2).meter("safety")
        meter.charge(pairs=1)
        meter.charge(pairs=1)
        with pytest.raises(BudgetExceeded) as exc:
            meter.charge(pairs=1, frontier=7)
        err = exc.value
        assert err.phase == "safety"
        assert err.limit == "max_pairs"
        assert err.partial["pairs"] == 3
        assert err.partial["frontier"] == 7
        assert err.to_json_dict()["error"] == "budget-exceeded"

    def test_meter_is_per_phase(self):
        budget = Budget(max_states=3)
        a = budget.meter("safety")
        b = budget.meter("progress")
        assert isinstance(a, BudgetMeter) and a is not b
        a.charge(states=3)
        b.charge(states=3)  # fresh count — no trip


class TestByteIdenticalWhenNotHit:
    def test_generous_budget_changes_nothing(self, scenario):
        plain = _solve(scenario)
        budgeted = _solve(
            scenario, budget=Budget(max_pairs=10**6, max_states=10**6)
        )
        assert budgeted.exists == plain.exists
        assert budgeted.converter == plain.converter
        assert budgeted.f == plain.f
        assert budgeted.safety.explored == plain.safety.explored
        assert (
            budgeted.progress.rounds == plain.progress.rounds
            if plain.progress is not None
            else budgeted.progress is None
        )

    def test_none_budget_is_default(self, scenario):
        assert _solve(scenario, budget=None).converter == _solve(
            scenario
        ).converter


class TestDeterministicTrips:
    def _trip(self, scenario, budget):
        with pytest.raises(BudgetExceeded) as exc:
            _solve(scenario, budget=budget)
        return exc.value

    @pytest.mark.parametrize("limit", [3, 5, 9])
    def test_kernel_and_reference_trip_identically(self, scenario, limit):
        budget = Budget(max_pairs=limit)
        with use_kernel(True):
            on = self._trip(scenario, budget)
        with use_kernel(False):
            off = self._trip(scenario, budget)
        assert on.phase == off.phase == "safety"
        assert on.limit == off.limit == "max_pairs"
        assert on.partial["pairs"] == off.partial["pairs"]
        assert on.partial["states"] == off.partial["states"]

    def test_max_states_trips_safety(self, scenario):
        err = self._trip(scenario, Budget(max_states=2))
        assert err.phase == "safety"
        assert err.limit == "max_states"

    def test_progress_phase_budget(self, scenario):
        # generous safety, tight total pairs: safety passes (36 states,
        # ~200 pair evaluations), progress's per-round charges then trip
        plain = _solve(scenario)
        safety_pairs = plain.safety.explored
        budget = Budget(max_pairs=safety_pairs)
        # safety alone fits exactly; progress gets a fresh meter but its
        # first rounds charge len(needed) per surviving state and exceed it
        result_or_err = None
        try:
            result_or_err = _solve(scenario, budget=budget)
        except BudgetExceeded as exc:
            result_or_err = exc
        if isinstance(result_or_err, BudgetExceeded):
            assert result_or_err.phase in {"progress", "compose"}

    def test_compose_budget(self, scenario):
        big = scenario.composite
        with pytest.raises(BudgetExceeded) as exc:
            compose(big, scenario.service, budget=Budget(max_states=2))
        assert exc.value.phase == "compose"
        assert exc.value.limit == "max_states"

    def test_compose_generous_budget_identical(self, scenario):
        parts = scenario.components
        plain = compose(parts[0], parts[1])
        budgeted = compose(parts[0], parts[1], budget=Budget(max_states=10**6))
        assert plain == budgeted

    def test_wall_time_budget_trips(self):
        # injected clock: the wall-time contract is tested without ever
        # measuring (or asserting on) real elapsed time
        now = [100.0]
        meter = BudgetMeter(
            Budget(wall_time_s=5.0), "safety", clock=lambda: now[0]
        )
        meter.charge(pairs=1)  # first charge reads the clock: 0.0s, fine
        now[0] = 106.0
        with pytest.raises(BudgetExceeded) as exc:
            for _ in range(TIME_CHECK_INTERVAL):
                meter.charge(pairs=1)
        err = exc.value
        assert err.phase == "safety"
        assert err.limit == "wall_time_s"
        assert err.partial["elapsed_s"] == pytest.approx(6.0)

    def test_wall_time_checked_lazily(self):
        # under TIME_CHECK_INTERVAL charges between clock reads, an
        # already-expired deadline is not noticed — the hot loop stays
        # free of per-charge clock reads
        now = [0.0]
        meter = BudgetMeter(
            Budget(wall_time_s=1.0), "safety", clock=lambda: now[0]
        )
        meter.charge(pairs=1)
        now[0] = 50.0
        for _ in range(TIME_CHECK_INTERVAL - 1):
            meter.charge(pairs=1)  # no read yet, so no trip
