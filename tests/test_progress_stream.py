"""Tests for repro.obs.progress: the live progress stream.

Covers the reporter in isolation (fake clock drives rate limiting
deterministically), the module-level current-reporter plumbing, the
budget-charge hook-in via ``make_meter``, and — the load-bearing
guarantee — that ``--progress`` / ``--progress-json`` leave every byte
of solver output unchanged (differential CLI test).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs.progress import (
    ProgressReporter,
    current_reporter,
    set_reporter,
    use_reporter,
)
from repro.quotient.budget import Budget, make_meter

DSL = """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "specs.dsl"
    path.write_text(DSL)
    return str(path)


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def _reporter(clock, **kwargs):
    kwargs.setdefault("jsonl", io.StringIO())
    kwargs.setdefault("probe_every", 1)
    kwargs.setdefault("interval_s", 1.0)
    return ProgressReporter(clock=clock, **kwargs)


def _events(reporter):
    return [json.loads(line) for line in reporter._jsonl.getvalue().splitlines()]


class FakeMeter:
    """The duck-typed sliver of BudgetMeter the reporter observes."""

    def __init__(self, phase="safety"):
        self.phase = phase
        self.pairs = 0
        self.states = 0

    def elapsed(self) -> float:
        return 0.0


class TestReporterUnit:
    def test_phase_transition_emits_immediately(self):
        clock = ManualClock()
        reporter = _reporter(clock, interval_s=1000.0)
        reporter.tick(FakeMeter("safety"))
        events = _events(reporter)
        assert events[0] == {"v": 1, "event": "phase", "phase": "safety"}

    def test_heartbeat_rate_limited_by_interval(self):
        clock = ManualClock()
        reporter = _reporter(clock, interval_s=1.0)
        meter = FakeMeter()
        # interval has "elapsed" before the first charge, so it emits once,
        # then stays quiet until the clock moves a full interval
        for _ in range(10):
            meter.pairs += 1
            reporter.tick(meter)
        assert reporter.heartbeats == 1
        clock.advance(1.5)
        meter.pairs += 1
        reporter.tick(meter)
        assert reporter.heartbeats == 2
        beats = [e for e in _events(reporter) if e["event"] == "heartbeat"]
        assert [b["pairs"] for b in beats] == [1, 11]

    def test_probe_every_bounds_clock_reads(self):
        reads = []

        class CountingClock(ManualClock):
            def __call__(self):
                reads.append(1)
                return self.now

        clock = CountingClock()
        reporter = _reporter(clock, probe_every=64, interval_s=0.0)
        baseline = len(reads)
        meter = FakeMeter()
        for _ in range(640):
            reporter.tick(meter)
        # one read per probe (every 64 charges), not one per charge
        assert len(reads) - baseline <= 640 // 64 + 1

    def test_budget_fraction_tracks_most_consumed_dimension(self):
        clock = ManualClock()
        reporter = _reporter(clock, limits=Budget(max_pairs=100, max_states=10).to_json_dict())
        assert reporter.budget_fraction(10, 2) == 0.2
        assert reporter.budget_fraction(90, 1) == 0.9
        assert reporter.budget_fraction(500, 500) == 1.0  # capped
        assert _reporter(clock).budget_fraction(10, 10) is None

    def test_checkpoint_and_note_events(self):
        clock = ManualClock()
        reporter = _reporter(clock)
        reporter.note(cell="loss@2", cell_index=3)
        reporter.checkpoint_written("run.ckpt")
        events = _events(reporter)
        assert events[0]["event"] == "note"
        assert events[0]["cell"] == "loss@2"
        assert events[1]["event"] == "checkpoint"
        assert events[1]["path"] == "run.ckpt"
        # note context sticks to subsequent events
        assert events[1]["cell"] == "loss@2"

    def test_finish_is_idempotent(self):
        clock = ManualClock()
        reporter = _reporter(clock)
        reporter.finish("partial-budget")
        reporter.finish("complete")
        done = [e for e in _events(reporter) if e["event"] == "done"]
        assert [e["outcome"] for e in done] == ["partial-budget"]

    def test_human_line_mentions_phase_and_counts(self):
        clock = ManualClock()
        human = io.StringIO()
        reporter = ProgressReporter(
            human=human, clock=clock, probe_every=1, interval_s=0.0
        )
        meter = FakeMeter("safety")
        meter.pairs, meter.states = 7, 3
        clock.advance(1.0)
        reporter.tick(meter, frontier=2)
        text = human.getvalue()
        assert "[safety]" in text
        assert "7 pairs" in text
        assert "frontier 2" in text

    def test_rejects_bad_probe_every(self):
        with pytest.raises(ValueError):
            ProgressReporter(probe_every=0)


class TestCurrentReporter:
    def test_default_is_none(self):
        assert current_reporter() is None

    def test_use_reporter_installs_and_restores(self):
        reporter = _reporter(ManualClock())
        with use_reporter(reporter) as installed:
            assert installed is reporter
            assert current_reporter() is reporter
        assert current_reporter() is None

    def test_use_reporter_restores_on_error(self):
        reporter = _reporter(ManualClock())
        with pytest.raises(RuntimeError):
            with use_reporter(reporter):
                raise RuntimeError("boom")
        assert current_reporter() is None

    def test_set_reporter_returns_previous(self):
        first = _reporter(ManualClock())
        assert set_reporter(first) is None
        assert set_reporter(None) is first


class TestMeterIntegration:
    def test_make_meter_creates_meter_for_reporter_alone(self):
        assert make_meter(None, "safety") is None
        with use_reporter(_reporter(ManualClock())):
            meter = make_meter(None, "safety")
            assert meter is not None
            assert meter.progress is current_reporter()

    def test_charges_flow_into_the_stream(self):
        reporter = _reporter(
            ManualClock(),
            interval_s=0.0,
            probe_every=1,
            limits=Budget(max_pairs=100).to_json_dict(),
        )
        with use_reporter(reporter):
            meter = make_meter(Budget(max_pairs=100), "safety")
            for _ in range(3):
                meter.charge(pairs=1, states=1, frontier=5)
        beats = [e for e in _events(reporter) if e["event"] == "heartbeat"]
        assert beats
        assert beats[-1]["pairs"] == 3
        assert beats[-1]["frontier"] == 5
        assert beats[-1]["budget_fraction"] == 0.03


class TestCliDifferential:
    """--progress must never change what the solver prints."""

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_solve_output_byte_identical(self, dsl_file, capsys, tmp_path, fmt):
        base_args = ["solve", dsl_file, "service", "component", "--format", fmt]
        assert main(base_args) == 0
        plain = capsys.readouterr().out
        stream = tmp_path / "progress.jsonl"
        assert main(
            base_args + ["--progress", "--progress-json", str(stream)]
        ) == 0
        withprog = capsys.readouterr()
        assert withprog.out == plain
        events = [
            json.loads(line) for line in stream.read_text().splitlines()
        ]
        assert events[0]["event"] == "phase"
        assert events[-1] == {
            "v": 1,
            "event": "done",
            "outcome": "complete",
            "elapsed_s": events[-1]["elapsed_s"],
        }

    def test_partial_budget_outcome_in_stream(self, dsl_file, capsys, tmp_path):
        stream = tmp_path / "progress.jsonl"
        code = main(
            [
                "solve", dsl_file, "service", "component",
                "--budget-pairs", "1", "--progress-json", str(stream),
            ]
        )
        assert code == 3
        events = [json.loads(line) for line in stream.read_text().splitlines()]
        assert events[-1]["event"] == "done"
        assert events[-1]["outcome"] == "partial-budget"

    def test_progress_streams_go_to_stderr_not_stdout(self, dsl_file, capsys):
        assert main(
            ["solve", dsl_file, "service", "component",
             "--progress", "--progress-json", "-"]
        ) == 0
        captured = capsys.readouterr()
        assert '"event"' not in captured.out
        assert '"event":"done"' in captured.err
        assert "[done] complete" in captured.err

    def test_resilience_notes_cells(self, dsl_file, capsys, tmp_path):
        stream = tmp_path / "progress.jsonl"
        assert main(
            ["resilience", "--scenario", "colocated", "--severities", "1",
             "--faults", "loss", "--progress-json", str(stream)]
        ) == 0
        events = [json.loads(line) for line in stream.read_text().splitlines()]
        notes = [e for e in events if e["event"] == "note"]
        assert notes and notes[0]["cell"].startswith("loss")
        assert events[-1]["outcome"] == "complete"
