"""Golden-file regression tests for the paper's derived machines.

The library promises deterministic exploration ("identical runs,
identical machines, identical numbering").  These tests pin the claim:
re-deriving the Section 5 machines must reproduce the stored goldens
*exactly* — same states, same numbering, same transitions.

If an intentional algorithm change alters the machines, regenerate with::

    python -c "
    from repro.io import dump
    from repro.protocols import colocated_scenario, symmetric_scenario
    from repro.quotient import solve_quotient
    c = colocated_scenario()
    r = solve_quotient(c.service, c.composite, int_events=c.interface.int_events)
    dump(r.converter, 'tests/golden/fig14_converter.json')
    dump(r.c0, 'tests/golden/fig14_c0.json')
    s = symmetric_scenario()
    r2 = solve_quotient(s.service, s.composite, int_events=s.interface.int_events)
    dump(r2.c0, 'tests/golden/fig12_c0.json')
    "

— and record the change in EXPERIMENTS.md.
"""

from pathlib import Path

import pytest

from repro.io import load
from repro.protocols import colocated_scenario, symmetric_scenario
from repro.quotient import solve_quotient

GOLDEN = Path(__file__).resolve().parent / "golden"


@pytest.fixture(scope="module")
def colocated_result():
    scen = colocated_scenario()
    return solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


@pytest.fixture(scope="module")
def symmetric_result():
    scen = symmetric_scenario()
    return solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


class TestGoldenMachines:
    def test_fig14_converter_exact(self, colocated_result):
        golden = load(str(GOLDEN / "fig14_converter.json"))
        assert colocated_result.converter == golden

    def test_fig14_c0_exact(self, colocated_result):
        golden = load(str(GOLDEN / "fig14_c0.json"))
        assert colocated_result.c0 == golden

    def test_fig12_c0_exact(self, symmetric_result):
        golden = load(str(GOLDEN / "fig12_c0.json"))
        assert symmetric_result.c0 == golden

    def test_golden_sizes_documented(self):
        """The documented headline numbers match the stored machines."""
        converter = load(str(GOLDEN / "fig14_converter.json"))
        assert len(converter.states) == 16
        c0_sym = load(str(GOLDEN / "fig12_c0.json"))
        assert len(c0_sym.states) == 58

    def test_rederivation_is_deterministic(self, colocated_result):
        """Two in-process derivations are structurally identical."""
        scen = colocated_scenario()
        again = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        assert again.converter == colocated_result.converter
        assert again.f == colocated_result.f
