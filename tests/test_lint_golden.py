"""Golden-file test pinning the JSON diagnostic output for a broken spec.

If a deliberate change to the lint subsystem alters the report shape, update
the pinned file with::

    PYTHONPATH=src python - <<'EOF'
    from repro.io.json_codec import load
    from repro.lint import lint_spec
    report = lint_spec(load("examples/broken_spec.json"))
    with open("tests/golden/lint_broken.json", "w") as fh:
        fh.write(report.to_json(indent=2) + "\n")
    EOF
"""

import json
from pathlib import Path

from repro.io.json_codec import load
from repro.lint import lint_spec

ROOT = Path(__file__).resolve().parent.parent
BROKEN = ROOT / "examples" / "broken_spec.json"
GOLDEN = ROOT / "tests" / "golden" / "lint_broken.json"


def test_broken_spec_json_report_matches_golden():
    report = lint_spec(load(str(BROKEN)))
    expected = json.loads(GOLDEN.read_text())
    assert json.loads(report.to_json(indent=2)) == expected


def test_golden_text_is_exactly_the_serialized_report():
    # byte-for-byte: catches key-ordering / indentation drift, not just content
    report = lint_spec(load(str(BROKEN)))
    assert report.to_json(indent=2) + "\n" == GOLDEN.read_text()


def test_golden_covers_acceptance_floor():
    codes = {d["code"] for d in json.loads(GOLDEN.read_text())["diagnostics"]}
    assert len(codes) >= 5
    assert {"SPEC001", "SPEC004", "SPEC005"} <= codes
