"""Golden-file test pinning the JSON diagnostic output for a broken spec.

If a deliberate change to the lint subsystem alters the report shape, update
the pinned file with::

    PYTHONPATH=src python - <<'EOF'
    from repro.io.json_codec import load
    from repro.lint import lint_spec
    report = lint_spec(load("examples/broken_spec.json"))
    with open("tests/golden/lint_broken.json", "w") as fh:
        fh.write(report.to_json(indent=2) + "\n")
    EOF
"""

import json
from pathlib import Path

from repro.io.json_codec import load
from repro.lint import lint_spec

ROOT = Path(__file__).resolve().parent.parent
BROKEN = ROOT / "examples" / "broken_spec.json"
GOLDEN = ROOT / "tests" / "golden" / "lint_broken.json"


def test_broken_spec_json_report_matches_golden():
    report = lint_spec(load(str(BROKEN)))
    expected = json.loads(GOLDEN.read_text())
    assert json.loads(report.to_json(indent=2)) == expected


def test_golden_text_is_exactly_the_serialized_report():
    # byte-for-byte: catches key-ordering / indentation drift, not just content
    report = lint_spec(load(str(BROKEN)))
    assert report.to_json(indent=2) + "\n" == GOLDEN.read_text()


def test_golden_covers_acceptance_floor():
    codes = {d["code"] for d in json.loads(GOLDEN.read_text())["diagnostics"]}
    assert len(codes) >= 5
    assert {"SPEC001", "SPEC004", "SPEC005"} <= codes


GOLDEN_SARIF = ROOT / "tests" / "golden" / "lint_broken.sarif"


def test_sarif_matches_golden_byte_for_byte():
    # regenerate (after a deliberate change) with:
    #   PYTHONPATH=src python - <<'EOF'
    #   from repro.io.json_codec import load
    #   from repro.lint import lint_spec
    #   report = lint_spec(load("examples/broken_spec.json"))
    #   with open("tests/golden/lint_broken.sarif", "w") as fh:
    #       fh.write(report.to_sarif(indent=2) + "\n")
    #   EOF
    report = lint_spec(load(str(BROKEN)))
    assert report.to_sarif(indent=2) + "\n" == GOLDEN_SARIF.read_text()


def test_sarif_rules_carry_help_uri_and_metadata():
    sarif = json.loads(GOLDEN_SARIF.read_text())
    driver = sarif["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    by_id = {r["id"]: r for r in driver["rules"]}
    assert "SPEC001" in by_id
    for rid, entry in by_id.items():
        assert entry["helpUri"].endswith(f"docs/lint.md#{rid.lower()}")
        # registered rules also carry their catalogue metadata
        assert entry["name"]
        assert entry["shortDescription"]["text"]
        assert entry["defaultConfiguration"]["level"] in (
            "error", "warning", "note"
        )


def test_sarif_results_carry_logical_locations():
    sarif = json.loads(GOLDEN_SARIF.read_text())
    results = sarif["runs"][0]["results"]
    spec001 = next(r for r in results if r["ruleId"] == "SPEC001")
    [loc] = spec001["locations"][0]["logicalLocations"]
    assert loc["kind"] == "state"
    assert loc["fullyQualifiedName"] == "broken::4"
