"""Self-checks of the lint rule registry against the documentation.

Rule codes must be unique, every registered rule must be catalogued in
``docs/lint.md`` with a matching ``#### CODE `name` (severity)``
heading, and every such heading must correspond to a registered rule —
documentation and registry cannot drift apart silently.
"""

import re
from pathlib import Path

from repro import lint  # noqa: F401 — importing registers every rule family
from repro.lint.rules import all_rules

ROOT = Path(__file__).resolve().parent.parent
DOC = ROOT / "docs" / "lint.md"

HEADING_RE = re.compile(
    r"^#### (?P<code>[A-Z]+\d+) `(?P<name>[a-z0-9-]+)` \((?P<severity>error|warning|info)[,)]",
    re.MULTILINE,
)

#: Diagnosis codes that legitimately appear in docs without being
#: registry rules (produced post-solve by repro.quotient.diagnose).
DIAGNOSIS_CODES = {"QUOT101", "QUOT102", "QUOT103"}


def doc_headings():
    return {
        m.group("code"): (m.group("name"), m.group("severity"))
        for m in HEADING_RE.finditer(DOC.read_text(encoding="utf-8"))
    }


def test_rule_codes_are_unique():
    rules = all_rules()
    codes = [r.code for r in rules]
    assert len(codes) == len(set(codes)), "duplicate rule codes registered"


def test_rule_names_are_unique():
    rules = all_rules()
    names = [r.name for r in rules]
    assert len(names) == len(set(names)), "duplicate rule names registered"


def test_every_registered_rule_is_documented():
    documented = doc_headings()
    missing = [r.code for r in all_rules() if r.code not in documented]
    assert not missing, f"rules missing from docs/lint.md: {missing}"


def test_documented_metadata_matches_registry():
    documented = doc_headings()
    for r in all_rules():
        name, severity = documented[r.code]
        assert name == r.name, f"{r.code}: docs say {name!r}, registry {r.name!r}"
        assert severity == r.severity, (
            f"{r.code}: docs say {severity!r}, registry {r.severity!r}"
        )


def test_every_documented_rule_is_registered():
    registered = {r.code for r in all_rules()}
    stray = [
        code
        for code in doc_headings()
        if code not in registered and code not in DIAGNOSIS_CODES
    ]
    assert not stray, f"docs/lint.md documents unregistered rules: {stray}"


def test_semantic_family_is_registered():
    by_code = {r.code: r for r in all_rules()}
    for code in (
        "SEM201", "SEM202", "SEM203", "SEM204", "SEM205", "SEM206",
        "SEM207", "SEM208",
    ):
        assert code in by_code, f"{code} not registered"
    assert by_code["SEM203"].severity == "error"
    assert by_code["SEM207"].scope == "semantic-converter"
    assert by_code["SEM208"].scope == "semantic-result"
