"""Unit tests for trace theory: core algebra, projections, language queries."""

import pytest

from repro.errors import AlphabetError
from repro.events import Interface
from repro.spec import SpecBuilder
from repro.traces import (
    EPSILON,
    accepts,
    concat,
    enabled_after,
    enumerate_traces,
    format_trace,
    i_projection,
    initial_closure,
    interleavings_count,
    is_prefix,
    is_prefix_closed,
    language_upto,
    longest_trace_bounded,
    merges,
    o_projection,
    prefix_close,
    prefixes,
    project,
    proper_prefixes,
    sample_trace,
    split,
    states_after,
    subset_step,
    trace,
)


class TestCoreAlgebra:
    def test_trace_constructor(self):
        assert trace("a", "b") == ("a", "b")
        assert trace() == EPSILON

    def test_concat_juxtaposition(self):
        assert concat(("a",), ("b", "c")) == ("a", "b", "c")
        assert concat((), ()) == EPSILON

    def test_prefixes_shortest_first(self):
        assert list(prefixes(("a", "b"))) == [(), ("a",), ("a", "b")]

    def test_proper_prefixes(self):
        assert list(proper_prefixes(("a", "b"))) == [(), ("a",)]

    def test_is_prefix(self):
        assert is_prefix((), ("a",))
        assert is_prefix(("a",), ("a", "b"))
        assert not is_prefix(("b",), ("a", "b"))
        assert is_prefix(("a", "b"), ("a", "b"))

    def test_format_trace(self):
        assert format_trace(("acc", "del")) == "⟨acc.del⟩"
        assert format_trace(()) == "⟨⟩"

    def test_prefix_close(self):
        closed = prefix_close([("a", "b")])
        assert closed == frozenset({(), ("a",), ("a", "b")})

    def test_is_prefix_closed(self):
        assert is_prefix_closed({(), ("a",)})
        assert not is_prefix_closed({("a",)})  # missing ε
        assert not is_prefix_closed({(), ("a", "b")})  # missing ("a",)


class TestProjections:
    IFACE = Interface(["m", "n"], ["x", "y"])

    def test_project_erases(self):
        assert project(("x", "m", "y", "n"), {"m", "n"}) == ("m", "n")

    def test_i_and_o(self):
        t = ("x", "m", "y", "n")
        assert i_projection(self.IFACE, t) == ("m", "n")
        assert o_projection(self.IFACE, t) == ("x", "y")

    def test_split(self):
        assert split(self.IFACE, ("x", "m")) == (("m",), ("x",))

    def test_split_rejects_unknown_event(self):
        with pytest.raises(AlphabetError):
            split(self.IFACE, ("zzz",))

    def test_projection_concat_homomorphism(self):
        t1, t2 = ("x", "m"), ("n", "y")
        assert i_projection(self.IFACE, t1 + t2) == i_projection(
            self.IFACE, t1
        ) + i_projection(self.IFACE, t2)

    def test_merges_inverse_of_projections(self):
        for merged in merges(("m", "n"), ("x",)):
            assert i_projection(self.IFACE, merged) == ("m", "n")
            assert o_projection(self.IFACE, merged) == ("x",)

    def test_merges_count_is_binomial(self):
        assert len(merges(("m", "n"), ("x", "y"))) == interleavings_count(2, 2)
        assert interleavings_count(2, 2) == 6

    def test_interleavings_rejects_negative(self):
        with pytest.raises(AlphabetError):
            interleavings_count(-1, 0)


class TestLanguage:
    def test_initial_closure(self, lossy_hop):
        assert initial_closure(lossy_hop) == frozenset([0])

    def test_states_after_includes_trailing_closure(self, lossy_hop):
        # after 'send' the system may be in 1 or silently in 2
        assert states_after(lossy_hop, ("send",)) == frozenset([1, 2])

    def test_states_after_non_trace_is_empty(self, lossy_hop):
        assert states_after(lossy_hop, ("timeout",)) == frozenset()

    def test_accepts(self, alternator):
        assert accepts(alternator, ())
        assert accepts(alternator, ("acc", "del", "acc"))
        assert not accepts(alternator, ("del",))
        assert not accepts(alternator, ("acc", "acc"))

    def test_subset_step(self, lossy_hop):
        after = subset_step(lossy_hop, frozenset([1, 2]), "timeout")
        assert after == frozenset([0])
        assert subset_step(lossy_hop, frozenset([0]), "timeout") == frozenset()

    def test_enabled_after(self, lossy_hop):
        assert set(enabled_after(lossy_hop, ("send",))) == {"arrive", "timeout"}
        assert set(enabled_after(lossy_hop, ())) == {"send"}

    def test_enumerate_traces_is_prefix_closed(self, alternator):
        traces = set(enumerate_traces(alternator, 5))
        assert is_prefix_closed(traces)

    def test_enumerate_respects_bound(self, alternator):
        assert max(len(t) for t in enumerate_traces(alternator, 3)) == 3

    def test_language_upto_exact_content(self, alternator):
        assert language_upto(alternator, 2) == frozenset(
            {(), ("acc",), ("acc", "del")}
        )

    def test_language_of_finite_machine_saturates(self):
        finite = SpecBuilder("f").external(0, "a", 1).initial(0).build()
        assert language_upto(finite, 10) == frozenset({(), ("a",)})

    def test_longest_trace_bounded(self, alternator):
        assert len(longest_trace_bounded(alternator, 7)) == 7

    def test_sample_trace_valid(self, alternator):
        t = sample_trace(alternator, 6, seed=3)
        assert t is not None
        assert len(t) == 6
        assert accepts(alternator, t)

    def test_sample_trace_none_when_too_deep(self):
        finite = SpecBuilder("f").external(0, "a", 1).initial(0).build()
        assert sample_trace(finite, 5) is None

    def test_sample_trace_deterministic_per_seed(self, lossy_hop):
        assert sample_trace(lossy_hop, 8, seed=1) == sample_trace(
            lossy_hop, 8, seed=1
        )
