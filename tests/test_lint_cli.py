"""Tests for the ``lint`` CLI subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

DSL = """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end

spec lonely
    initial 0
    0 -> 1 : acc
    event ghost
end
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "specs.dsl"
    path.write_text(DSL)
    return str(path)


BROKEN = str(Path(__file__).resolve().parent.parent / "examples" / "broken_spec.json")


class TestLintText:
    def test_clean_spec_exits_zero(self, dsl_file, capsys):
        assert main(["lint", dsl_file, "service"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_broken_example_exits_nonzero(self, capsys):
        assert main(["lint", BROKEN]) == 2
        out = capsys.readouterr().out
        assert "SPEC001" in out
        # acceptance floor: at least 5 distinct rule codes implemented/fired
        fired = {
            code
            for code in (
                "SPEC001", "SPEC002", "SPEC003", "SPEC004", "SPEC005", "SPEC006"
            )
            if code in out
        }
        assert len(fired) >= 5

    def test_warnings_exit_zero_unless_strict(self, dsl_file, capsys):
        # "lonely" has a terminal state (warning) and unused event (info)
        assert main(["lint", dsl_file, "lonely"]) == 0
        assert main(["lint", dsl_file, "lonely", "--strict"]) == 2
        out = capsys.readouterr().out
        assert "SPEC003" in out and "SPEC002" in out

    def test_fail_on_warning_matches_strict(self, dsl_file):
        # regression for the exit-code semantics: warnings-only runs pass
        # by default, fail (exit 2) only when the threshold is lowered
        assert main(["lint", dsl_file, "lonely", "--fail-on", "error"]) == 0
        assert main(["lint", dsl_file, "lonely", "--fail-on", "warning"]) == 2

    def test_infos_never_fail(self, dsl_file):
        # SPEC002 (unused event) is info severity: below every threshold
        assert (
            main([
                "lint", dsl_file, "lonely",
                "--select", "SPEC002", "--fail-on", "warning",
            ])
            == 0
        )

    def test_lints_all_specs_by_default(self, dsl_file, capsys):
        main(["lint", dsl_file])
        out = capsys.readouterr().out
        assert "lonely" in out

    def test_ignore_filter(self, dsl_file, capsys):
        assert main(["lint", dsl_file, "lonely", "--ignore", "SPEC", "--strict"]) == 0

    def test_semantic_flag_adds_sem_rules(self, dsl_file, capsys):
        # "lonely" never deadlocks structurally visibly, but state 1 is
        # terminal: the semantic pass proves the deadlock is reachable
        assert main(["lint", dsl_file, "lonely", "--semantic"]) == 2
        out = capsys.readouterr().out
        assert "SEM204" in out and "SPEC003" in out

    def test_select_filter(self, dsl_file, capsys):
        main(["lint", dsl_file, "lonely", "--select", "SPEC002"])
        out = capsys.readouterr().out
        assert "SPEC002" in out and "SPEC003" not in out

    def test_unknown_spec_name_is_usage_error(self, dsl_file, capsys):
        assert main(["lint", dsl_file, "nope"]) == 2
        assert "no spec named" in capsys.readouterr().err


class TestLintProblem:
    def test_problem_mode_overlap(self, dsl_file, capsys):
        code = main(
            [
                "lint", dsl_file,
                "--service", "service",
                "--component", "component",
                "--int", "fwd,acc",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "SPEC101" in out and "Int ∩ Ext" in out

    def test_problem_mode_clean(self, dsl_file, capsys):
        code = main(
            [
                "lint", dsl_file,
                "--service", "service",
                "--component", "component",
                "--int", "fwd",
            ]
        )
        assert code == 0

    def test_service_without_component_is_usage_error(self, dsl_file, capsys):
        assert main(["lint", dsl_file, "--service", "service"]) == 2
        assert "together" in capsys.readouterr().err


class TestLintFormats:
    def test_json_format(self, capsys):
        assert main(["lint", BROKEN, "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["errors"] >= 1
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "SPEC001" in codes
        for diag in payload["diagnostics"]:
            assert {"code", "severity", "message"} <= diag.keys()

    def test_sarif_format(self, capsys):
        assert main(["lint", BROKEN, "--format", "sarif"]) == 2
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["ruleId"] for r in run["results"]}
        assert "SPEC001" in rule_ids
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids <= declared

    def test_compose_mode(self, tmp_path, capsys):
        path = tmp_path / "parts.dsl"
        path.write_text(
            """
spec left
    initial 0
    0 -> 0 : -p
end

spec right
    initial 0
    0 -> 0 : -p
end
"""
        )
        main(["lint", str(path), "--compose", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "CONV001" in codes

    def test_role_service_adds_norm_rules(self, tmp_path, capsys):
        path = tmp_path / "nf.dsl"
        path.write_text(
            """
spec mixed
    initial 0
    0 -> 1 : acc
    0 ~> 1
    1 -> 1 : acc
end
"""
        )
        assert main(["lint", str(path), "--role", "service"]) == 2
        assert "NORM001" in capsys.readouterr().out


class TestSolvePreflightCli:
    def test_solve_preflight_reports_lint_error(self, tmp_path, capsys):
        path = tmp_path / "nf.dsl"
        path.write_text(
            """
spec badservice
    initial 0
    0 -> 1 : acc
    0 ~> 1
    1 -> 1 : acc
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 0 : fwd
    1 -> 1 : acc
end
"""
        )
        assert main(["solve", str(path), "badservice", "component"]) == 2
        err = capsys.readouterr().err
        assert "NORM001" in err
