"""Tests for the ``analyze`` CLI subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

ROOT = Path(__file__).resolve().parent.parent
BROKEN = str(ROOT / "examples" / "broken_semantic.dsl")

CLEAN_DSL = """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.dsl"
    path.write_text(CLEAN_DSL)
    return str(path)


class TestAnalyzeBasics:
    def test_clean_problem_exits_zero(self, clean_file, capsys):
        code = main(
            [
                "analyze", clean_file,
                "--service", "service",
                "--component", "component",
                "--int", "fwd",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_broken_composition_exits_two(self, capsys):
        assert main(["analyze", BROKEN, "--compose"]) == 2
        out = capsys.readouterr().out
        for code in ("SEM201", "SEM202", "SEM203", "SEM204", "SEM205", "SEM206"):
            assert code in out

    def test_each_spec_analyzed_separately_by_default(self, capsys):
        # without --compose the cross-part rules are vacuous, but left's
        # own livelock and deadlocks are still errors
        assert main(["analyze", BROKEN]) == 2
        out = capsys.readouterr().out
        assert "SEM205" in out
        assert "SEM203" not in out

    def test_missing_file_and_scenario_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "FILE" in capsys.readouterr().err

    def test_unreadable_file_is_usage_error(self, capsys):
        assert main(["analyze", "/nonexistent/specs.dsl"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestAnalyzeScenario:
    def test_handshake_scenario_clean(self, capsys):
        assert main(["analyze", "--scenario", "handshake"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_scenario_with_solve_emits_coverage(self, capsys):
        assert main(["analyze", "--scenario", "colocated"]) == 0
        out = capsys.readouterr().out
        assert "SEM207" in out and "SEM208" in out

    def test_no_solve_drops_coverage(self, capsys):
        assert main(["analyze", "--scenario", "colocated", "--no-solve"]) == 0
        out = capsys.readouterr().out
        assert "SEM207" not in out and "SEM208" not in out


class TestAnalyzeFormats:
    def test_json(self, capsys):
        assert main(["analyze", BROKEN, "--compose", "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] >= 3
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "SEM204" in codes
        # the witness carries the product-state counterexample trace
        deadlock = next(
            d for d in payload["diagnostics"] if d["code"] == "SEM204"
        )
        assert deadlock["witness"]["trace"]

    def test_sarif(self, capsys):
        assert main(["analyze", BROKEN, "--compose", "--format", "sarif"]) == 2
        sarif = json.loads(capsys.readouterr().out)
        run = sarif["runs"][0]
        declared = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "SEM204" in declared
        assert declared["SEM204"]["helpUri"].endswith("#sem204")
        result = next(r for r in run["results"] if r["ruleId"] == "SEM204")
        assert result["properties"]["trace"]
        assert result["properties"]["productState"]

    def test_select_and_ignore(self, capsys):
        assert (
            main(["analyze", BROKEN, "--compose", "--select", "SEM205"]) == 2
        )
        out = capsys.readouterr().out
        assert "SEM205" in out and "SEM204" not in out
        assert (
            main(["analyze", BROKEN, "--compose", "--ignore", "SEM20"]) == 0
        )


class TestAnalyzeFailOn:
    def test_warnings_only_passes_by_default(self, capsys):
        # suppress the error-severity rules: only warnings remain
        code = main(
            ["analyze", BROKEN, "--compose", "--ignore", "SEM203,SEM204,SEM205"]
        )
        assert code == 0
        assert "warning" in capsys.readouterr().out

    def test_fail_on_warning(self):
        code = main(
            [
                "analyze", BROKEN, "--compose",
                "--ignore", "SEM203,SEM204,SEM205",
                "--fail-on", "warning",
            ]
        )
        assert code == 2


class TestAnalyzeBudget:
    def test_budget_trip_exits_three_with_partial_marker(self, capsys):
        code = main(
            ["analyze", BROKEN, "--compose", "--budget-pairs", "2"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "guarantees: partial" in out

    def test_budget_trip_json_carries_partial_report(self, capsys):
        code = main(
            [
                "analyze", BROKEN, "--compose",
                "--budget-pairs", "2", "--format", "json",
            ]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["guarantees"] == "partial"
        assert "interrupted" in payload

    def test_generous_budget_identical_output(self, capsys):
        main(["analyze", BROKEN, "--compose", "--format", "json"])
        unbudgeted = capsys.readouterr().out
        main(
            [
                "analyze", BROKEN, "--compose",
                "--budget-pairs", "1000000", "--format", "json",
            ]
        )
        assert capsys.readouterr().out == unbudgeted


class TestAnalyzeFaults:
    def test_fault_injection_breaks_clean_spec(self, clean_file, capsys):
        # crash_restart adds a crash to the component; analyzing the
        # faulted machine alone must still work end to end
        code = main(
            [
                "analyze", clean_file, "component",
                "--fault", "loss",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "lint" in out

    def test_fault_needs_target_with_many_specs(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--fault", "loss"]) == 2
        assert "--fault-target" in capsys.readouterr().err

    def test_fault_target_selects_spec(self, clean_file, capsys):
        code = main(
            [
                "analyze", clean_file,
                "--fault", "loss",
                "--fault-target", "component",
            ]
        )
        assert code in (0, 2)

    def test_unknown_fault_kind_is_usage_error(self, clean_file, capsys):
        assert (
            main(
                [
                    "analyze", clean_file, "component",
                    "--fault", "gremlins",
                ]
            )
            == 2
        )


class TestLintSemanticFlag:
    def test_problem_mode_with_semantic(self, clean_file, capsys):
        code = main(
            [
                "lint", clean_file,
                "--service", "service",
                "--component", "component",
                "--int", "fwd",
                "--semantic",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lint" in out

    def test_compose_mode_with_semantic(self, capsys):
        assert main(["lint", BROKEN, "--compose", "--semantic"]) == 2
        out = capsys.readouterr().out
        # both families in one merged report
        assert "SEM204" in out and "CONV" in out or "SEM204" in out


class TestSolveDeepPreflight:
    def test_clean_problem_still_solves(self, clean_file, capsys):
        code = main(
            ["solve", clean_file, "service", "component", "--deep-preflight"]
        )
        assert code == 0
        assert "converter" in capsys.readouterr().out

    def test_semantic_errors_refuse_to_solve(self, capsys):
        code = main(
            ["solve", BROKEN, "right", "left",
             "--no-preflight", "--deep-preflight"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "SEM204" in err or "SEM205" in err
