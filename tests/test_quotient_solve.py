"""Unit and integration tests for the top-level quotient solver."""

import pytest

from repro.compose import compose
from repro.errors import QuotientError
from repro.quotient import QuotientProblem, solve_quotient, verify_converter
from repro.satisfy import satisfies
from repro.spec import SpecBuilder
from repro.traces import accepts


def xy_service():
    return (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )


def relay_component():
    return (
        SpecBuilder("B")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "n", 3)
        .external(3, "y", 0)
        .initial(0)
        .build()
    )


class TestSolveExists:
    def test_relay_quotient_exists_and_verifies(self):
        result = solve_quotient(xy_service(), relay_component())
        assert result.exists
        assert result.converter is not None
        assert result.verification is not None and result.verification.holds

    def test_converter_states_are_integers_with_f(self):
        result = solve_quotient(xy_service(), relay_component())
        for s in result.converter.states:
            assert isinstance(s, int)
            assert s in result.f
        assert result.converter.initial == 0

    def test_independent_satisfaction_check(self):
        result = solve_quotient(xy_service(), relay_component())
        composite = compose(relay_component(), result.converter)
        assert satisfies(composite, xy_service()).holds

    def test_converter_alphabet_is_int(self):
        result = solve_quotient(xy_service(), relay_component())
        assert set(result.converter.alphabet) == {"m", "n"}

    def test_declared_int_accepted(self):
        result = solve_quotient(
            xy_service(), relay_component(), int_events=["m", "n"]
        )
        assert result.exists

    def test_summary_mentions_converter(self):
        text = solve_quotient(xy_service(), relay_component()).summary()
        assert "converter:" in text

    def test_c0_retained_for_inspection(self):
        result = solve_quotient(xy_service(), relay_component())
        assert result.c0 is not None
        assert len(result.c0.states) >= len(result.converter.states)
        assert set(result.c0_f) == set(result.c0.states)


class TestSolveNotExists:
    def test_progress_impossible(self):
        component = (
            SpecBuilder("B")
            .external(0, "x", 1)
            .external(1, "m", 1)
            .event("y").event("n")
            .initial(0)
            .build()
        )
        result = solve_quotient(xy_service(), component)
        assert not result.exists
        assert not bool(result)
        assert result.converter is None
        assert result.c0 is not None  # safety phase succeeded
        assert "NO converter" in result.summary()

    def test_safety_impossible(self):
        component = (
            SpecBuilder("B")
            .external(0, "y", 0)
            .event("x").event("m").event("n")
            .initial(0)
            .build()
        )
        result = solve_quotient(xy_service(), component)
        assert not result.exists
        assert result.safety is not None and not result.safety.exists
        assert result.c0 is None
        assert "safety" in result.summary()


class TestMaximality:
    def test_hand_written_converter_traces_included(self):
        """Theorem 1(ii)/Theorem 2: any correct converter's traces are a
        subset of the maximal converter's."""
        result = solve_quotient(xy_service(), relay_component())
        maximal = result.converter
        # the obvious converter: strictly alternate m, n
        hand = (
            SpecBuilder("C")
            .external(0, "m", 1)
            .external(1, "n", 0)
            .initial(0)
            .build()
        )
        # hand converter is itself correct
        composite = compose(relay_component(), hand)
        assert satisfies(composite, xy_service()).holds
        # bounded trace-inclusion in the maximal converter
        from repro.traces import language_upto

        for t in language_upto(hand, 6):
            assert accepts(maximal, t)

    def test_maximal_includes_unmatched_traces(self):
        result = solve_quotient(xy_service(), relay_component())
        # "n before m" is unmatched by B: trivially safe, hence present
        assert accepts(result.converter, ("n",))


class TestVerifyConverter:
    def test_accepts_correct_converter(self):
        problem = QuotientProblem.build(xy_service(), relay_component())
        hand = (
            SpecBuilder("C")
            .external(0, "m", 1)
            .external(1, "n", 0)
            .initial(0)
            .build()
        )
        report = verify_converter(problem, hand)
        assert report.holds

    def test_rejects_wrong_converter(self):
        problem = QuotientProblem.build(xy_service(), relay_component())
        # refuses to ever emit n: system stalls after x.m
        stubborn = (
            SpecBuilder("C")
            .external(0, "m", 0)
            .event("n")
            .initial(0)
            .build()
        )
        with pytest.raises(QuotientError, match="verification"):
            verify_converter(problem, stubborn)

    def test_solver_verification_can_be_disabled(self):
        result = solve_quotient(xy_service(), relay_component(), verify=False)
        assert result.exists
        assert result.verification is None


class TestEdgeCases:
    def test_empty_int_alphabet(self):
        """Σ_B = Ext: the only possible converter is the do-nothing machine;
        it works iff B alone satisfies A."""
        service = xy_service()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        result = solve_quotient(service, component)
        assert result.exists
        assert len(result.converter.states) == 1
        assert not result.converter.external

    def test_empty_int_alphabet_failure(self):
        service = xy_service()
        component = (
            SpecBuilder("B").external(0, "x", 0).event("y").initial(0).build()
        )
        result = solve_quotient(service, component)
        assert not result.exists

    def test_component_with_internal_transitions(self, lossy_hop):
        """A lossy component admits the trivial quotient against a service
        whose acceptance structure allows settling on either outcome.

        The deterministic service (single acceptance set {arrive, timeout})
        must FAIL: after the loss only timeout is offered.  The
        nondeterministic service — an internal choice between an {arrive}
        option and a {timeout} option — succeeds.  This is the paper's
        Section 3 rationale for nondeterminism in service specs, in
        miniature.
        """
        deterministic = (
            SpecBuilder("A")
            .external(0, "send", 1)
            .external(1, "arrive", 0)
            .external(1, "timeout", 0)
            .initial(0)
            .build()
        )
        assert not solve_quotient(deterministic, lossy_hop).exists

        choosy = (
            SpecBuilder("A")
            .external(0, "send", "hub")
            .internal("hub", "ok")
            .internal("hub", "to")
            .external("ok", "arrive", 0)
            .external("to", "timeout", 0)
            .initial(0)
            .build()
        )
        result = solve_quotient(choosy, lossy_hop)
        assert result.exists
        assert result.verification.holds
