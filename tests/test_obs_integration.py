"""Integration tests: the instrumented pipeline under a recording collector.

Covers stats attachment on QuotientResult, the counters emitted by the
quotient phases / composition / simulator, phase_counters(), and the
no-op overhead bound of the disabled instrumentation path.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.compose import compose, compose_many
from repro.obs import MetricsCollector
from repro.protocols import (
    ab_channel,
    ab_receiver,
    ab_sender,
    colocated_scenario,
    symmetric_scenario,
)
from repro.quotient import solve_quotient
from repro.simulate import RandomPolicy, Simulator


@pytest.fixture
def colocated():
    return colocated_scenario()


@pytest.fixture
def symmetric():
    return symmetric_scenario()


class TestSolveStats:
    def test_stats_attached_when_recording(self, colocated):
        with obs.use_collector():
            result = solve_quotient(
                colocated.service,
                colocated.composite,
                int_events=colocated.interface.int_events,
            )
        assert result.stats is not None
        names = {s.name for s in result.stats.spans}
        assert {"solve_quotient", "safety_phase", "progress_phase"} <= names
        assert result.stats.counters["quotient.safety.pairs_explored"] > 0
        assert result.stats.counters["quotient.progress.rounds"] == len(
            result.progress.rounds
        )
        # the snapshot is taken after the root span closes
        (root,) = result.stats.find("solve_quotient")
        assert root.end is not None

    def test_stats_none_without_collector(self, colocated):
        result = solve_quotient(colocated.service, colocated.composite)
        assert result.stats is None

    def test_span_tree_matches_pipeline(self, colocated):
        with obs.use_collector():
            result = solve_quotient(
                colocated.service,
                colocated.composite,
                int_events=colocated.interface.int_events,
            )
        stats = result.stats
        (root,) = stats.find("solve_quotient")
        child_names = [s.name for s in stats.children_of(root.index)]
        assert child_names[0] == "preflight"
        assert "safety_phase" in child_names
        assert "progress_phase" in child_names
        (progress,) = stats.find("progress_phase")
        rounds = [
            s for s in stats.children_of(progress.index)
            if s.name == "progress_round"
        ]
        assert len(rounds) == len(result.progress.rounds)

    def test_gauges_record_converter_shape(self, colocated):
        with obs.use_collector():
            result = solve_quotient(
                colocated.service,
                colocated.composite,
                int_events=colocated.interface.int_events,
            )
        assert result.stats.gauges["quotient.converter.states"] == len(
            result.converter.states
        )


class TestPhaseCounters:
    def test_exists_case(self, colocated):
        result = solve_quotient(
            colocated.service,
            colocated.composite,
            int_events=colocated.interface.int_events,
        )
        counters = result.phase_counters()
        assert counters["emptied_by"] is None
        assert counters["safety"]["exists"]
        assert counters["safety"]["pairs_explored"] > 0
        assert counters["safety"]["states_surviving"] == len(result.c0.states)
        removed = sum(r["removed"] for r in counters["progress"]["rounds"])
        assert counters["progress"]["states_removed"] == removed

    def test_progress_emptied_case(self, symmetric):
        result = solve_quotient(
            symmetric.service,
            symmetric.composite,
            int_events=symmetric.interface.int_events,
        )
        counters = result.phase_counters()
        assert counters["emptied_by"] == "progress"
        assert counters["safety"]["exists"]
        assert not counters["progress"]["exists"]

    def test_to_json_dict_includes_phases_and_stats(self, colocated):
        with obs.use_collector():
            result = solve_quotient(
                colocated.service,
                colocated.composite,
                int_events=colocated.interface.int_events,
            )
        payload = result.to_json_dict()
        assert payload["version"] == 1
        assert payload["exists"] is True
        assert payload["phases"]["emptied_by"] is None
        assert payload["converter"]["states"] == len(result.converter.states)
        assert payload["stats"]["counters"]["quotient.safety.pairs_explored"] > 0


class TestComposeCounters:
    def test_binary_compose_counters(self):
        with obs.use_collector() as collector:
            composite = compose(ab_sender(), ab_channel())
        snap = collector.snapshot()
        assert snap.counters["compose.calls"] == 1
        assert snap.counters["compose.reachable_states"] == len(composite.states)
        assert (
            snap.counters["compose.product_states"]
            >= snap.counters["compose.reachable_states"]
        )
        (span,) = snap.find("compose")
        assert span.attrs["reachable_states"] == len(composite.states)

    def test_compose_many_span(self):
        with obs.use_collector() as collector:
            composite = compose_many(
                [ab_sender(), ab_channel(), ab_receiver()], name="AB"
            )
        snap = collector.snapshot()
        (span,) = snap.find("compose_many")
        assert span.attrs["parts"] == 3
        assert span.attrs["composite"] == "AB"
        assert span.attrs["states"] == len(composite.states)
        assert snap.counters["compose.calls"] == 2


class TestSimulatorCounters:
    def test_moves_counted_by_kind(self):
        sim = Simulator(
            [ab_sender(), ab_channel(), ab_receiver()], RandomPolicy(seed=7)
        )
        with obs.use_collector() as collector:
            log = sim.run(200)
        snap = collector.snapshot()
        assert snap.counters["sim.steps"] == len(log.steps)
        by_kind = log.metrics()["moves"]
        for kind, count in by_kind.items():
            if count:
                assert snap.counters[f"sim.moves.{kind}"] == count
        (span,) = snap.find("simulate.run")
        assert span.attrs["steps"] == len(log.steps)

    def test_run_log_metrics_shape(self):
        sim = Simulator(
            [ab_sender(), ab_channel(), ab_receiver()], RandomPolicy(seed=7)
        )
        log = sim.run(50)
        metrics = sim.log.metrics()
        assert metrics["steps"] == len(log.steps) == 50
        assert metrics["deadlocked"] is False
        assert sum(metrics["moves"].values()) == metrics["steps"]
        assert sum(metrics["events"].values()) == metrics["steps"]


class TestDisabledOverhead:
    def test_disabled_instrumentation_overhead_under_5_percent(self, colocated):
        """Bound the cost of the disabled obs path for a real solve.

        Rather than comparing two noisy wall-clock runs, measure (a) the
        solve time, (b) how many obs calls that solve makes (via the
        recording collector's ``ops``), and (c) the per-call cost of the
        disabled dispatch, then check ops x per-call stays under 5% of
        the solve time.
        """
        args = (colocated.service, colocated.composite)
        kwargs = {"int_events": colocated.interface.int_events}

        solve_quotient(*args, **kwargs)  # warm caches
        t0 = time.perf_counter()
        solve_quotient(*args, **kwargs)
        solve_time = time.perf_counter() - t0

        with obs.use_collector(MetricsCollector()) as collector:
            solve_quotient(*args, **kwargs)
        ops = collector.ops

        calls = 200_000
        t0 = time.perf_counter()
        for _ in range(calls):
            obs.add("overhead.probe")
        per_call = (time.perf_counter() - t0) / calls

        assert ops * per_call < 0.05 * solve_time, (
            f"{ops} obs calls x {per_call * 1e9:.0f} ns "
            f"= {ops * per_call * 1e3:.3f} ms vs solve {solve_time * 1e3:.1f} ms"
        )


class TestSweepProgressOverhead:
    def test_progress_streaming_overhead_under_5_percent(self, colocated):
        """Bound the cost of an installed reporter over a resilience sweep.

        Same non-flaky scheme as the disabled-path bound above: measure
        (a) the sweep time, (b) how many charge ticks the sweep drives
        into an installed reporter, and (c) the per-tick cost of the
        reporter's rate-limited fast path, then check ticks x per-tick
        stays under 5% of the sweep time.
        """
        from repro.faults import default_grid, evaluate_resilience
        from repro.obs.progress import ProgressReporter, use_reporter

        service = colocated.service
        components = list(colocated.components)
        int_events = colocated.interface.int_events
        baseline = solve_quotient(
            service, colocated.composite, int_events=int_events
        )
        assert baseline.exists and baseline.converter is not None
        grid = [m for m in default_grid((1,)) if m.kind == "loss"]

        def sweep():
            return evaluate_resilience(
                service,
                components,
                baseline.converter,
                int_events=int_events,
                grid=grid,
            )

        sweep()  # warm caches
        t0 = time.perf_counter()
        sweep()
        sweep_time = time.perf_counter() - t0

        # sink-less reporter with a huge interval: ticks take the fast path
        counting = ProgressReporter(interval_s=1e9)
        with use_reporter(counting):
            sweep()
        ticks = counting._charges
        assert ticks > 0

        probe = ProgressReporter(interval_s=1e9)
        meter = type(
            "M", (), {"phase": "safety", "pairs": 0, "states": 0,
                      "elapsed": lambda self: 0.0},
        )()
        calls = 200_000
        t0 = time.perf_counter()
        for _ in range(calls):
            probe.tick(meter)
        per_tick = (time.perf_counter() - t0) / calls

        assert ticks * per_tick < 0.05 * sweep_time, (
            f"{ticks} ticks x {per_tick * 1e9:.0f} ns "
            f"= {ticks * per_tick * 1e3:.3f} ms vs sweep {sweep_time * 1e3:.1f} ms"
        )
