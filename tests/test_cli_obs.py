"""End-to-end tests for the CLI observability flags.

Exercises --profile / --trace / --metrics on the instrumented commands,
solve --format json (phase counters in the machine-readable result), and
the stats block in diagnose --format json.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import NullCollector

DSL = """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end

spec badcomponent
    initial 0
    0 -> 1 : acc
    1 -> 1 : fwd
    event del
end
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "specs.dsl"
    path.write_text(DSL)
    return str(path)


class TestProfileFlag:
    def test_solve_profile_prints_span_tree(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "component", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "solve_quotient" in out
        assert "safety_phase" in out
        assert "progress_phase" in out
        assert "counters:" in out

    def test_compose_profile(self, dsl_file, capsys):
        assert main(["compose", dsl_file, "service", "component", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "compose_many" in out and "compose.calls" in out

    def test_check_profile(self, dsl_file, capsys):
        assert main(["check", dsl_file, "service", "service", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "satisfies" in out and "satisfy.checks" in out

    def test_simulate_profile(self, dsl_file, capsys):
        assert main(
            ["simulate", dsl_file, "component", "--steps", "10", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulate.run" in out and "sim.steps" in out

    def test_collector_restored_after_command(self, dsl_file, capsys):
        main(["solve", dsl_file, "service", "component", "--profile"])
        assert isinstance(obs.current_collector(), NullCollector)


class TestMetricsFlag:
    def test_metrics_text(self, dsl_file, capsys):
        assert main(
            ["solve", dsl_file, "service", "component", "--metrics", "text"]
        ) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "quotient.safety.pairs_explored" in out

    def test_metrics_json_parses(self, dsl_file, capsys):
        assert main(
            ["solve", dsl_file, "service", "component", "--metrics", "json"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["version"] == 1
        assert payload["counters"]["quotient.safety.pairs_explored"] > 0
        assert any(s["name"] == "solve_quotient" for s in payload["spans"])

    def test_no_flags_means_no_extra_output(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "component"]) == 0
        out = capsys.readouterr().out
        assert "counters:" not in out and "spans:" not in out


class TestTraceFlag:
    def test_trace_writes_valid_trace_event_file(self, dsl_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            ["solve", dsl_file, "service", "component", "--trace", str(trace)]
        ) == 0
        assert f"trace written to {trace}" in capsys.readouterr().err
        doc = json.loads(trace.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "C"}
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"solve_quotient", "safety_phase", "progress_phase"} <= names

    def test_trace_unwritable_path_is_an_error(self, dsl_file, capsys):
        code = main(
            ["solve", dsl_file, "service", "component",
             "--trace", "/nonexistent-dir/trace.json"]
        )
        assert code == 2
        assert "cannot write trace" in capsys.readouterr().err


class TestSolveJsonFormat:
    def test_exists_payload(self, dsl_file, capsys):
        assert main(
            ["solve", dsl_file, "service", "component", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["exists"] is True
        assert payload["phases"]["emptied_by"] is None
        assert payload["phases"]["safety"]["pairs_explored"] > 0
        assert payload["converter"]["states"] > 0
        assert payload["verified"] is True
        assert "stats" not in payload  # no collector unless an obs flag is set

    def test_nonexistence_payload_names_emptying_phase(self, dsl_file, capsys):
        assert main(
            ["solve", dsl_file, "service", "badcomponent", "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exists"] is False
        assert payload["converter"] is None
        assert payload["phases"]["emptied_by"] in ("safety", "progress")
        assert payload["phases"]["safety"]["states_surviving"] >= 0

    def test_json_with_profile_includes_stats(self, dsl_file, capsys):
        assert main(
            ["solve", dsl_file, "service", "component",
             "--format", "json", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.index("\nspans:")])
        assert payload["stats"]["counters"]["quotient.safety.pairs_explored"] > 0


class TestDiagnoseJson:
    def test_diagnose_json_carries_phases_and_stats(self, tmp_path, capsys):
        path = tmp_path / "d.dsl"
        path.write_text(
            "spec svc\n initial 0\n 0 -> 1 : x\n 1 -> 0 : y\nend\n"
            "spec comp\n initial 0\n 0 -> 1 : x\n 1 -> 1 : m\n event y\nend\n"
        )
        assert main(["diagnose", str(path), "svc", "comp", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["phases"]["emptied_by"] in ("safety", "progress")
        assert payload["stats"]["version"] == 1
        assert any(
            s["name"] == "solve_quotient" for s in payload["stats"]["spans"]
        )


class TestExportsOnPartialExit:
    """--trace/--metrics must still export when a run ends partially.

    The budget/interrupt exits are exactly the runs whose telemetry is
    worth inspecting, so the exporters run on the exception paths too.
    """

    def test_analyze_budget_exit_3_still_writes_trace(
        self, dsl_file, tmp_path, capsys
    ):
        trace = tmp_path / "partial.trace"
        code = main(
            ["analyze", dsl_file, "service", "component", "--compose",
             "--budget-pairs", "1", "--trace", str(trace),
             "--metrics", "text"]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert f"trace written to {trace}" in captured.err
        doc = json.loads(trace.read_text())
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert "i" in phs  # the budget.exceeded instant event landed
        assert "counters:" in captured.out
        assert "guarantees: partial" in captured.out

    def test_solve_interrupt_exit_4_still_writes_trace(
        self, dsl_file, tmp_path, capsys
    ):
        trace = tmp_path / "partial.trace"
        ckpt = tmp_path / "run.ckpt"
        code = main(
            ["solve", dsl_file, "service", "component",
             "--budget-pairs", "1", "--checkpoint", str(ckpt),
             "--trace", str(trace), "--metrics", "json"]
        )
        assert code == 4
        captured = capsys.readouterr()
        assert f"trace written to {trace}" in captured.err
        assert ckpt.exists()
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert "budget.exceeded" in names
        assert "checkpoint.write" in names
