"""End-to-end tests for ``--ledger`` recording and the ``history`` CLI.

Two real solves land in a ledger, ``history list/show/diff/gc`` operate
on it, and — the regression-gate acceptance path — an artificially
inflated work counter makes ``history diff`` exit non-zero.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.obs.ledger import Ledger

DSL = """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "specs.dsl"
    path.write_text(DSL)
    return str(path)


@pytest.fixture
def ledger_path(tmp_path):
    return str(tmp_path / "ledger.json")


def _solve(dsl_file, ledger_path, *extra):
    return main(
        ["solve", dsl_file, "service", "component", "--ledger", ledger_path]
        + list(extra)
    )


class TestLedgerRecording:
    def test_solve_records_fingerprint_work_and_verdict(
        self, dsl_file, ledger_path, capsys
    ):
        assert _solve(dsl_file, ledger_path) == 0
        assert "ledger: recorded run 1" in capsys.readouterr().err
        (record,) = Ledger(ledger_path).read()
        assert record.kind == "solve"
        assert record.outcome == "complete"
        assert record.verdict == "converter"
        assert record.label == "service/component"
        assert len(record.fingerprint) == 64
        assert record.work["safety.pairs_explored"] == 3
        assert record.wall_time_s is not None
        # wall times never leak into the diffable work map
        assert all(not k.endswith(("_s", "_ms")) for k in record.work)

    def test_two_runs_share_a_fingerprint(self, dsl_file, ledger_path):
        assert _solve(dsl_file, ledger_path) == 0
        assert _solve(dsl_file, ledger_path) == 0
        first, second = Ledger(ledger_path).read()
        assert first.fingerprint == second.fingerprint
        assert first.work == second.work

    def test_partial_budget_solve_recorded(self, dsl_file, ledger_path):
        code = _solve(dsl_file, ledger_path, "--budget-pairs", "1")
        assert code == 3
        (record,) = Ledger(ledger_path).read()
        assert record.outcome == "partial-budget"
        assert record.verdict is None
        # the meter trips on the charge that exceeds the limit of 1
        assert record.work["safety.pairs"] == 2
        # the partial run is keyed like the complete one would be
        assert len(record.fingerprint) == 64

    def test_partial_with_checkpoint_records_artifact(
        self, dsl_file, ledger_path, tmp_path
    ):
        ckpt = str(tmp_path / "run.ckpt")
        code = _solve(
            dsl_file, ledger_path, "--budget-pairs", "1", "--checkpoint", ckpt
        )
        assert code == 4
        (record,) = Ledger(ledger_path).read()
        assert record.artifacts["checkpoint"] == ckpt

    def test_resilience_records_cell_counters(self, ledger_path):
        assert main(
            ["resilience", "--scenario", "colocated", "--severities", "1",
             "--faults", "loss", "--ledger", ledger_path]
        ) == 0
        (record,) = Ledger(ledger_path).read()
        assert record.kind == "resilience"
        assert record.work["cells.total"] == 1
        assert record.verdict in (
            "tolerated", "re-derivable", "safety-broken",
            "progress-broken", "no-converter",
        )

    def test_analyze_records_findings(self, dsl_file, ledger_path):
        assert main(
            ["analyze", dsl_file, "--ledger", ledger_path]
        ) == 0
        (record,) = Ledger(ledger_path).read()
        assert record.kind == "analyze"
        assert record.verdict == "clean"
        assert "findings.total" in record.work

    def test_no_ledger_flag_writes_nothing(self, dsl_file, tmp_path, capsys):
        assert main(["solve", dsl_file, "service", "component"]) == 0
        assert "ledger:" not in capsys.readouterr().err
        assert not list(tmp_path.glob("ledger*"))


class TestHistoryCli:
    @pytest.fixture
    def two_runs(self, dsl_file, ledger_path, capsys):
        assert _solve(dsl_file, ledger_path) == 0
        assert _solve(dsl_file, ledger_path) == 0
        capsys.readouterr()
        return ledger_path

    def test_list(self, two_runs, capsys):
        assert main(["history", "list", "--ledger", two_runs]) == 0
        out = capsys.readouterr().out
        assert "service/component" in out
        assert out.count("solve") == 2

    def test_list_json(self, two_runs, capsys):
        assert main(
            ["history", "list", "--ledger", two_runs, "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["run_id"] for r in payload] == [1, 2]

    def test_list_kind_filter(self, two_runs, dsl_file, capsys):
        assert main(["analyze", dsl_file, "--ledger", two_runs]) == 0
        capsys.readouterr()
        assert main(
            ["history", "list", "--ledger", two_runs, "--kind", "analyze"]
        ) == 0
        out = capsys.readouterr().out
        assert "analyze" in out and "solve" not in out

    def test_show(self, two_runs, capsys):
        assert main(["history", "show", "--ledger", two_runs, "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == 2
        assert payload["work"]

    def test_show_missing_run_exits_2(self, two_runs, capsys):
        assert main(["history", "show", "--ledger", two_runs, "9"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_defaults_to_latest_pair_and_passes(self, two_runs, capsys):
        assert main(["history", "diff", "--ledger", two_runs]) == 0
        out = capsys.readouterr().out
        assert "run 1 -> run 2" in out
        assert "no work regression" in out

    def test_diff_detects_injected_regression(self, two_runs, capsys):
        ledger = Ledger(two_runs)
        latest = ledger.get(2)
        inflated = dict(latest.work)
        inflated["safety.pairs_explored"] += 100
        ledger.append(dataclasses.replace(latest, work=inflated, run_id=0))
        assert main(["history", "diff", "--ledger", two_runs]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "regressed counter" in out

    def test_diff_threshold_forgives_small_increase(self, two_runs, capsys):
        ledger = Ledger(two_runs)
        latest = ledger.get(2)
        inflated = dict(latest.work)
        inflated["safety.pairs_explored"] += 100
        ledger.append(dataclasses.replace(latest, work=inflated, run_id=0))
        assert main(
            ["history", "diff", "--ledger", two_runs, "--threshold", "50"]
        ) == 0
        capsys.readouterr()

    def test_diff_explicit_ids_and_json(self, two_runs, capsys):
        assert main(
            ["history", "diff", "--ledger", two_runs, "1", "2",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["base_run"] == 1 and payload["new_run"] == 2
        assert payload["regressed"] is False

    def test_diff_single_run_is_an_error(self, dsl_file, ledger_path, capsys):
        assert _solve(dsl_file, ledger_path) == 0
        capsys.readouterr()
        assert main(["history", "diff", "--ledger", ledger_path]) == 2
        assert "need two to diff" in capsys.readouterr().err

    def test_diff_one_explicit_id_is_usage_error(self, two_runs, capsys):
        assert main(["history", "diff", "--ledger", two_runs, "1"]) == 2
        assert "zero or two run ids" in capsys.readouterr().err

    def test_diff_across_kinds_exits_2(self, two_runs, dsl_file, capsys):
        assert main(["analyze", dsl_file, "--ledger", two_runs]) == 0
        capsys.readouterr()
        assert main(
            ["history", "diff", "--ledger", two_runs, "2", "3"]
        ) == 2
        assert "different" in capsys.readouterr().err

    def test_gc(self, dsl_file, ledger_path, capsys):
        for _ in range(4):
            assert _solve(dsl_file, ledger_path) == 0
        capsys.readouterr()
        assert main(
            ["history", "gc", "--ledger", ledger_path, "--keep", "2"]
        ) == 0
        assert "removed 2 record(s)" in capsys.readouterr().out
        assert [r.run_id for r in Ledger(ledger_path).read()] == [3, 4]

    def test_gc_bad_keep_exits_2(self, two_runs, capsys):
        assert main(
            ["history", "gc", "--ledger", two_runs, "--keep", "0"]
        ) == 2
        capsys.readouterr()

    def test_missing_ledger_file(self, tmp_path, capsys):
        absent = str(tmp_path / "absent.json")
        assert main(["history", "list", "--ledger", absent]) == 0
        assert "(ledger is empty)" in capsys.readouterr().out


class TestBenchLedger:
    def test_bench_record_and_history_diff(self, ledger_path, capsys):
        import importlib.util
        import pathlib
        import sys

        root = pathlib.Path(__file__).resolve().parents[1]
        spec = importlib.util.spec_from_file_location(
            "bench_paper", root / "benchmarks" / "paper.py"
        )
        paper = importlib.util.module_from_spec(spec)
        sys.modules.setdefault("bench_paper", paper)
        spec.loader.exec_module(paper)

        first = paper.record_bench_run(ledger_path)
        second = paper.record_bench_run(ledger_path)
        assert (first, second) == (1, 2)
        capsys.readouterr()
        assert main(["history", "diff", "--ledger", ledger_path]) == 0
        assert "no work regression" in capsys.readouterr().out
        # and the perf gate accepts the ledger as its baseline
        assert paper.perf_gate(ledger_path) == []
