"""Unit tests for simulation preorders."""

from repro.spec import SpecBuilder
from repro.spec.refinement import (
    ready_simulates,
    simulation_offering_gap,
    strong_simulation,
    strongly_simulates,
    weakly_simulates,
)


def loop(name="m", *events):
    b = SpecBuilder(name)
    for i, e in enumerate(events):
        b.external(i, e, (i + 1) % len(events))
    return b.initial(0).build()


class TestStrongSimulation:
    def test_reflexive(self, alternator):
        assert strongly_simulates(alternator, alternator)

    def test_bigger_simulates_smaller(self):
        small = loop("s", "a")
        bigger = (
            SpecBuilder("b")
            .external(0, "a", 0)
            .external(0, "b", 0)
            .initial(0)
            .build()
        )
        assert strongly_simulates(bigger, small)
        assert not strongly_simulates(small, bigger)

    def test_internal_must_match(self):
        with_l = SpecBuilder("l").internal(0, 1).external(1, "a", 0).initial(0).build()
        without = SpecBuilder("w").external(0, "a", 1).external(1, "a", 0).initial(0).build()
        assert not strongly_simulates(without, with_l)

    def test_relation_contents(self):
        small = loop("s", "a")
        rel = strong_simulation(small, small)
        assert (0, 0) in rel


class TestWeakSimulation:
    def test_absorbs_internal_steps(self):
        padded = (
            SpecBuilder("p").internal(0, 1).external(1, "a", 2).initial(0).build()
        )
        direct = SpecBuilder("d").external(0, "a", 1).initial(0).build()
        assert weakly_simulates(direct, padded)
        assert weakly_simulates(padded, direct)

    def test_weak_implies_trace_inclusion(self):
        """Soundness cross-check against the independent safety oracle."""
        from repro.satisfy import satisfies_safety
        from repro.spec import random_spec

        for seed in range(12):
            concrete = random_spec(
                n_states=5, events=["a", "b"], seed=seed, internal_density=0.15
            )
            abstract = random_spec(
                n_states=4, events=["a", "b"], seed=seed + 100,
                internal_density=0.15,
            )
            if weakly_simulates(abstract, concrete):
                assert satisfies_safety(concrete, abstract).holds

    def test_distinguishes_missing_behaviour(self):
        ab = (
            SpecBuilder("ab").external(0, "a", 1).external(0, "b", 1)
            .initial(0).build()
        )
        a_only = SpecBuilder("a").external(0, "a", 1).event("b").initial(0).build()
        assert weakly_simulates(ab, a_only)
        assert not weakly_simulates(a_only, ab)


class TestReadySimulation:
    def test_requires_offering_coverage(self):
        rich = (
            SpecBuilder("rich").external(0, "a", 1).external(1, "b", 0)
            .initial(0).build()
        )
        poor = (
            SpecBuilder("poor").external(0, "a", 1).event("b").initial(0).build()
        )
        # poor refines rich both weakly and readily: everything poor may
        # offer, rich may offer too
        assert weakly_simulates(rich, poor)
        assert ready_simulates(rich, poor)
        # rich does not refine poor in either sense: rich's b is unmatched
        assert not weakly_simulates(poor, rich)
        assert not ready_simulates(poor, rich)

    def test_ready_stricter_than_weak(self):
        # both do 'a'; concrete then offers {b}, abstract reaches a state
        # offering {b} only via a different a-branch that also offers c...
        abstract = (
            SpecBuilder("abs")
            .external(0, "a", 1)
            .external(1, "b", 0)
            .external(1, "c", 0)
            .initial(0)
            .build()
        )
        concrete = (
            SpecBuilder("con")
            .external(0, "a", 1)
            .external(1, "b", 0)
            .event("c")
            .initial(0)
            .build()
        )
        assert weakly_simulates(abstract, concrete)
        assert ready_simulates(abstract, concrete)  # {b} ⊆ {b,c}
        # the reverse direction fails coverage: abstract offers c
        assert not ready_simulates(concrete, abstract)

    def test_offering_gap_diagnostic(self):
        abstract = SpecBuilder("abs").external(0, "a", 1).initial(0).build()
        concrete = (
            SpecBuilder("con").external(0, "a", 1).external(0, "x", 1)
            .initial(0).build()
        )
        gap = simulation_offering_gap(concrete, abstract)
        assert gap.get(0) == frozenset({"x"})

    def test_offering_gap_empty_when_covered(self, alternator):
        assert simulation_offering_gap(alternator, alternator) == {}

    def test_offering_gap_through_internal_offer(self):
        # the concrete machine silently reaches a state offering x, which
        # the abstract never offers anywhere along matching traces
        abstract = SpecBuilder("abs").external(0, "a", 1).initial(0).build()
        concrete = (
            SpecBuilder("con")
            .internal(0, 1)
            .external(0, "a", 2)
            .external(1, "x", 2)
            .initial(0)
            .build()
        )
        gap = simulation_offering_gap(concrete, abstract)
        assert "x" in gap.get(0, frozenset()) or "x" in gap.get(1, frozenset())
