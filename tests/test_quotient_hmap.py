"""Unit tests for the h map, φ extension, and the ok predicate."""

import pytest

from repro.errors import QuotientError
from repro.quotient import (
    QuotientProblem,
    extend_pairs,
    initial_pairs,
    ok,
)
from repro.spec import SpecBuilder


def relay_problem():
    """x (Ext) -> m (Int) -> y (Ext) relay against x/y alternation."""
    service = (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )
    component = (
        SpecBuilder("B")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "y", 0)
        .initial(0)
        .build()
    )
    return QuotientProblem.build(service, component)


def unsafe_problem():
    """B can emit y immediately, which the service forbids before x."""
    service = (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )
    component = (
        SpecBuilder("B")
        .external(0, "y", 0)
        .external(0, "x", 0)
        .event("m")
        .initial(0)
        .build()
    )
    return QuotientProblem.build(service, component)


class TestProblemValidation:
    def test_interface_inference(self):
        problem = relay_problem()
        assert set(problem.interface.int_events) == {"m"}
        assert set(problem.interface.ext_events) == {"x", "y"}

    def test_declared_int_mismatch_rejected(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "x", 0).external(0, "m", 0)
            .event("y").initial(0).build()
        )
        with pytest.raises(QuotientError, match="does not match"):
            QuotientProblem.build(service, component, int_events=["wrong"])

    def test_service_alphabet_must_be_ext(self):
        service = (
            SpecBuilder("A").external(0, "x", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "m", 0).initial(0).build()
        )
        # inferred Ext = {x}, but component lacks x entirely
        with pytest.raises(QuotientError, match="component alphabet"):
            QuotientProblem(
                service, component,
                __import__("repro.events", fromlist=["Interface"]).Interface(
                    ["m"], ["x"]
                ),
            )

    def test_service_must_be_normal_form(self):
        from repro.errors import NormalFormError

        bad_service = (
            SpecBuilder("A")
            .external(0, "x", 1)
            .external(0, "x", 2)
            .external(1, "y", 0)
            .external(2, "y", 0)
            .initial(0)
            .build()
        )
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "y", 0)
            .event("m").initial(0).build()
        )
        with pytest.raises(NormalFormError):
            QuotientProblem.build(bad_service, component)


class TestInitialPairs:
    def test_h_epsilon_contents(self):
        problem = relay_problem()
        pairs = initial_pairs(problem)
        # B can do x (mirrored by service x): (0,0) and (1,1)
        assert pairs == frozenset({(0, 0), (1, 1)})

    def test_h_epsilon_closure_through_internal(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B")
            .internal(0, 1)
            .external(1, "x", 2)
            .external(2, "m", 3)
            .external(3, "y", 0)
            .initial(0)
            .build()
        )
        problem = QuotientProblem.build(service, component)
        pairs = initial_pairs(problem)
        assert (0, 0) in pairs and (0, 1) in pairs and (1, 2) in pairs

    def test_unsafe_initial_returns_none(self):
        assert initial_pairs(unsafe_problem()) is None


class TestExtendPairs:
    def test_phi_steps_component_only(self):
        problem = relay_problem()
        start = initial_pairs(problem)
        after_m = extend_pairs(problem, start, "m")
        # from (1,1): m -> b=2, then Ext-closure mirrors y: (0,0), then x: (1,1)
        assert after_m == frozenset({(1, 2), (0, 0), (1, 1)})

    def test_phi_empty_when_no_match(self):
        problem = relay_problem()
        start = initial_pairs(problem)
        twice = extend_pairs(problem, extend_pairs(problem, start, "m"), "m")
        # second m is matchable again after the hidden x...; compute directly:
        assert twice is not None

    def test_phi_on_unmatched_event_gives_empty_set(self):
        service = (
            SpecBuilder("A").external(0, "x", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "x", 0).event("m").initial(0).build()
        )
        problem = QuotientProblem.build(service, component)
        start = initial_pairs(problem)
        assert extend_pairs(problem, start, "m") == frozenset()

    def test_phi_rejects_ext_event(self):
        problem = relay_problem()
        start = initial_pairs(problem)
        with pytest.raises(ValueError, match="Int events"):
            extend_pairs(problem, start, "x")


class TestOkPredicate:
    def test_ok_on_safe_set(self):
        problem = relay_problem()
        assert ok(problem, initial_pairs(problem))

    def test_ok_fails_on_unsafe_pair(self):
        problem = unsafe_problem()
        # hand-build the pair the closure would reject: service at 0,
        # component at 0 where y is enabled but service forbids it
        assert not ok(problem, frozenset({(0, 0)}))

    def test_ok_trivially_true_on_empty(self):
        assert ok(relay_problem(), frozenset())

    def test_p1_property(self):
        """P1: ok(h.ε) ⇒ safe.ε — existence of any safe quotient."""
        problem = relay_problem()
        pairs = initial_pairs(problem)
        assert pairs is not None and ok(problem, pairs)
        # and for the unsafe problem h.ε is rejected outright
        assert initial_pairs(unsafe_problem()) is None
