"""Property-based tests (hypothesis) for the fault transformers.

Random channel-flavored specifications are drawn through the library's
seeded generator over a ``-x``/``+x`` alphabet, and the documented
contracts are checked exactly:

* every transformer, at every severity, returns a **valid**
  specification (the ``Specification`` constructor enforces the
  well-formedness invariants, so construction *is* the oracle);
* severity ``0`` is the identity for every transformer;
* ``loss`` is idempotent at equal severity/timeout;
* alphabet discipline — ``loss`` adds exactly its timeout event, every
  other transformer preserves the alphabet;
* transformers only ever *widen* behavior on kept states (loss,
  duplication, corruption never remove a transition).
"""

from hypothesis import given, settings, strategies as st

from repro.faults import (
    FAULT_KINDS,
    corruption,
    crash_restart,
    duplication,
    fault_model,
    loss,
    reorder,
)
from repro.protocols.channels import reliable_duplex_channel
from repro.spec import random_spec

SEEDS = st.integers(min_value=0, max_value=10_000)
SIZES = st.integers(min_value=1, max_value=6)
SEVERITIES = st.integers(min_value=0, max_value=3)
# channel-flavored events: matched sends/receives plus a bare event
CHANNEL_EVENTS = ["-x", "+x", "-y", "+y", "go"]


def draw_spec(seed: int, size: int):
    return random_spec(
        n_states=size,
        events=CHANNEL_EVENTS,
        external_density=0.35,
        internal_density=0.1,
        seed=seed,
    )


MESSAGE_LISTS = st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True
)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, size=SIZES, severity=SEVERITIES)
def test_transformers_yield_valid_specs(seed, size, severity):
    spec = draw_spec(seed, size)
    for transform in (loss, duplication, corruption, crash_restart):
        out = transform(spec, severity)
        # Specification.__init__ validates; reaching here means valid.
        # The transformed machine must still start where the original did
        # (possibly re-labeled into a plane).
        assert out.states
    # reorder only applies to channel-shaped specs — exercised separately


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_severity_zero_is_identity(seed, size):
    spec = draw_spec(seed, size)
    for transform in (loss, duplication, corruption, crash_restart):
        assert transform(spec, 0) is spec


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES, severity=st.integers(min_value=1, max_value=3))
def test_loss_is_idempotent(seed, size, severity):
    spec = draw_spec(seed, size)
    once = loss(spec, severity)
    assert loss(once, severity) == once


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES, severity=st.integers(min_value=1, max_value=3))
def test_alphabet_discipline(seed, size, severity):
    spec = draw_spec(seed, size)
    assert loss(spec, severity, timeout="tick").alphabet == (
        spec.alphabet | {"tick"}
    )
    for transform in (duplication, corruption, crash_restart):
        assert transform(spec, severity).alphabet == spec.alphabet


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES, severity=st.integers(min_value=1, max_value=3))
def test_loss_duplication_corruption_only_widen(seed, size, severity):
    """On the original states, no external transition is removed."""
    spec = draw_spec(seed, size)
    for transform in (loss, duplication, corruption):
        out = transform(spec, severity)
        assert spec.external <= out.external
        assert spec.initial == out.initial


@settings(max_examples=30, deadline=None)
@given(messages=MESSAGE_LISTS, severity=st.integers(min_value=1, max_value=3))
def test_reorder_bag_invariants(messages, severity):
    ch = reliable_duplex_channel(name="Ch", messages=messages)
    out = reorder(ch, severity)
    assert out.alphabet == ch.alphabet
    assert out.initial == ()
    # every state is a sorted bag within capacity
    for s in out.states:
        assert isinstance(s, tuple) and len(s) <= severity
        assert list(s) == sorted(s)
    # a full bag accepts no further sends
    for s, e, _ in out.external:
        if e.startswith("-"):
            assert len(s) < severity


@settings(max_examples=30, deadline=None)
@given(
    seed=SEEDS,
    size=SIZES,
    kinds=st.lists(
        st.sampled_from([k for k in FAULT_KINDS if k != "reorder"]),
        min_size=1,
        max_size=3,
    ),
)
def test_fault_model_pipelines_stay_valid(seed, size, kinds):
    spec = draw_spec(seed, size)
    for kind in kinds:
        spec = fault_model(kind, 1).apply(spec)
    assert spec.states
