"""Unit tests for deadlock/livelock analysis, stats, and reports."""

from repro.analysis import (
    bad_state_chronicle,
    explain_converter,
    find_deadlocks,
    find_livelocks,
    is_dead,
    spec_stats,
    stuck_states,
)
from repro.analysis.deadlock import trace_of_witness
from repro.quotient import solve_quotient
from repro.spec import SpecBuilder


class TestDeadlock:
    def test_deadlock_free(self, alternator):
        report = find_deadlocks(alternator)
        assert report.deadlock_free
        assert "deadlock-free" in report.describe()

    def test_detects_dead_state(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .state(1)
            .initial(0)
            .build()
        )
        report = find_deadlocks(spec)
        assert not report.deadlock_free
        assert report.deadlocks == (1,)
        assert report.witness == ("a",)

    def test_unreachable_dead_state_ignored(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 0)
            .state(99)
            .initial(0)
            .build()
        )
        assert find_deadlocks(spec).deadlock_free

    def test_internal_only_state_is_not_dead(self):
        spec = SpecBuilder("m").internal(0, 1).external(1, "a", 0).initial(0).build()
        assert not is_dead(spec, 0)

    def test_witness_through_internal_steps(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .internal(1, 2)
            .state(2)
            .initial(0)
            .build()
        )
        report = find_deadlocks(spec)
        assert report.witness == ("a", None)
        assert trace_of_witness(report.witness) == ("a",)


class TestLivelock:
    def test_livelock_free(self, alternator):
        report = find_livelocks(alternator)
        assert report.livelock_free
        assert not report.stuck

    def test_detects_internal_spin(self):
        spec = (
            SpecBuilder("m")
            .external(0, "go", 1)
            .internal(1, 2)
            .internal(2, 1)
            .initial(0)
            .build()
        )
        report = find_livelocks(spec)
        assert not report.livelock_free
        assert set(report.livelocked) == {1, 2}
        assert report.cycle == frozenset({1, 2})
        assert tuple(e for e in report.witness if e is not None) == ("go",)

    def test_spin_with_escape_is_not_stuck(self):
        spec = (
            SpecBuilder("m")
            .internal(0, 1)
            .internal(1, 0)
            .external(1, "out", 0)
            .initial(0)
            .build()
        )
        report = find_livelocks(spec)
        assert report.livelock_free

    def test_stuck_without_cycle_is_not_livelock(self):
        spec = (
            SpecBuilder("m")
            .external(0, "go", 1)
            .internal(1, 2)
            .state(2)
            .initial(0)
            .build()
        )
        report = find_livelocks(spec)
        assert report.stuck
        assert report.livelock_free
        assert "stuck" in report.describe()

    def test_stuck_states_function(self):
        spec = (
            SpecBuilder("m")
            .external(0, "go", 1)
            .state(1)
            .initial(0)
            .build()
        )
        assert stuck_states(spec) == frozenset([1])


class TestStats:
    def test_basic_counts(self, lossy_hop):
        stats = spec_stats(lossy_hop)
        assert stats.states == 3
        assert stats.external_transitions == 3
        assert stats.internal_transitions == 1
        assert not stats.deterministic
        assert stats.deadlocks == 0

    def test_normal_form_flag(self, alternator, internal_cycle):
        assert spec_stats(alternator).normal_form
        assert not spec_stats(internal_cycle).normal_form

    def test_as_row_keys(self, alternator):
        row = spec_stats(alternator).as_row()
        assert row["states"] == 2
        assert row["name"] == "alt"

    def test_describe_mentions_name(self, alternator):
        assert "alt" in spec_stats(alternator).describe()


class TestExplain:
    def _solved(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B")
            .external(0, "x", 1)
            .external(1, "m", 2)
            .external(2, "y", 0)
            .initial(0)
            .build()
        )
        return solve_quotient(service, component)

    def test_explains_existing_converter(self):
        text = explain_converter(self._solved())
        assert "converter C:" in text
        assert "satisfies" in text

    def test_pair_annotations_optional(self):
        result = self._solved()
        assert "state annotations" not in explain_converter(result)
        assert "state annotations" in explain_converter(result, show_pairs=True)

    def test_explains_nonexistence(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 1)
            .event("y").initial(0).build()
        )
        result = solve_quotient(service, component)
        text = explain_converter(result)
        assert "diagnosis" in text
        assert "NO converter" in text

    def test_chronicle(self):
        chronicle = bad_state_chronicle(self._solved())
        assert chronicle
        assert chronicle[0][0] == 0
