"""Unit tests for behavioural equivalences."""

from repro.spec import (
    SpecBuilder,
    isomorphic,
    strongly_bisimilar,
    trace_equivalent,
    weakly_trace_bisimilar,
)


def two_state_loop(name="m", e1="a", e2="b"):
    return (
        SpecBuilder(name)
        .external(0, e1, 1)
        .external(1, e2, 0)
        .initial(0)
        .build()
    )


class TestIsomorphic:
    def test_identical_specs(self):
        assert isomorphic(two_state_loop(), two_state_loop("other"))

    def test_relabeled_states(self):
        relabeled = two_state_loop().map_states({0: "x", 1: "y"})
        assert isomorphic(two_state_loop(), relabeled)

    def test_different_event_names_not_isomorphic(self):
        assert not isomorphic(two_state_loop(), two_state_loop(e1="z"))

    def test_different_state_counts(self):
        bigger = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(1, "b", 2)
            .external(2, "a", 1)
            .initial(0)
            .build()
        )
        assert not isomorphic(two_state_loop(), bigger)

    def test_initial_state_must_correspond(self):
        shifted = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(1, "b", 0)
            .initial(1)
            .build()
        )
        assert not isomorphic(two_state_loop(), shifted)

    def test_internal_transitions_matter(self):
        with_internal = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(1, "b", 0)
            .internal(0, 1)
            .initial(0)
            .build()
        )
        assert not isomorphic(two_state_loop(), with_internal)

    def test_symmetric_machine_with_automorphisms(self):
        """A machine with internal symmetry still matches itself."""
        diamond = (
            SpecBuilder("d")
            .external(0, "a", 1)
            .external(0, "a", 2)
            .external(1, "b", 3)
            .external(2, "b", 3)
            .external(3, "c", 0)
            .initial(0)
            .build()
        )
        assert isomorphic(diamond, diamond.map_states({0: 10, 1: 12, 2: 11, 3: 13}))


class TestStrongBisimilarity:
    def test_bisimilar_unfoldings(self):
        # 0 -a-> 1 -a-> 0   vs a single self-loop state: bisimilar
        loop2 = (
            SpecBuilder("m2").external(0, "a", 1).external(1, "a", 0).initial(0).build()
        )
        loop1 = SpecBuilder("m1").external(0, "a", 0).initial(0).build()
        assert strongly_bisimilar(loop1, loop2)

    def test_not_bisimilar_on_branching(self):
        # a then (b or c) chosen upfront vs chosen after a
        early = (
            SpecBuilder("e")
            .external(0, "a", 1)
            .external(0, "a", 2)
            .external(1, "b", 0)
            .external(2, "c", 0)
            .initial(0)
            .build()
        )
        late = (
            SpecBuilder("l")
            .external(0, "a", 1)
            .external(1, "b", 0)
            .external(1, "c", 0)
            .initial(0)
            .build()
        )
        assert not strongly_bisimilar(early, late)
        # ... but they are trace equivalent
        assert trace_equivalent(early, late)

    def test_lambda_treated_as_action(self):
        with_l = SpecBuilder("m").internal(0, 1).external(1, "a", 0).initial(0).build()
        without = SpecBuilder("m").external(0, "a", 1).external(1, "a", 0).initial(0).build()
        assert not strongly_bisimilar(with_l, without)

    def test_alphabet_mismatch(self):
        assert not strongly_bisimilar(two_state_loop(), two_state_loop(e2="z"))


class TestWeakTraceBisimilarity:
    def test_absorbs_internal_steps(self):
        direct = SpecBuilder("d").external(0, "a", 1).initial(0).build()
        padded = (
            SpecBuilder("p")
            .internal(0, 1)
            .external(1, "a", 2)
            .initial(0)
            .build()
        )
        assert weakly_trace_bisimilar(direct, padded)

    def test_distinguishes_behaviour(self):
        a_only = SpecBuilder("a").external(0, "a", 1).initial(0).build()
        ab = (
            SpecBuilder("ab").external(0, "a", 1).external(0, "b", 1)
            .initial(0).build()
        )
        assert not weakly_trace_bisimilar(a_only, ab)


class TestTraceEquivalence:
    def test_reflexive(self, alternator):
        assert trace_equivalent(alternator, alternator)

    def test_detects_language_difference(self, alternator):
        shorter = SpecBuilder("s").external(0, "acc", 1).event("del").initial(0).build()
        assert not trace_equivalent(alternator, shorter)

    def test_ignores_structure(self):
        folded = two_state_loop()
        unfolded = (
            SpecBuilder("u")
            .external(0, "a", 1)
            .external(1, "b", 2)
            .external(2, "a", 3)
            .external(3, "b", 0)
            .initial(0)
            .build()
        )
        assert trace_equivalent(folded, unfolded)

    def test_nondeterminism_vs_determinism(self, lossy_hop):
        from repro.spec import determinize

        assert trace_equivalent(lossy_hop, determinize(lossy_hop))

    def test_alphabet_mismatch_is_inequivalence(self):
        a = SpecBuilder("a").external(0, "a", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "a", 0).event("extra").initial(0).build()
        assert not trace_equivalent(a, b)
