"""Shared fixtures: small canonical machines used across the suite."""

from __future__ import annotations

import pytest

from repro.spec import SpecBuilder, Specification


@pytest.fixture
def alternator() -> Specification:
    """The Fig. 11 service: strict acc/del alternation."""
    return (
        SpecBuilder("alt")
        .external(0, "acc", 1)
        .external(1, "del", 0)
        .initial(0)
        .build()
    )


@pytest.fixture
def relay() -> Specification:
    """A two-hop relay: x (Ext) -> m (Int) -> n (Int) -> y (Ext)."""
    return (
        SpecBuilder("relay")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "n", 3)
        .external(3, "y", 0)
        .initial(0)
        .build()
    )


@pytest.fixture
def lossy_hop() -> Specification:
    """A machine with an internal (loss-like) branch and recovery."""
    return (
        SpecBuilder("lossy")
        .external(0, "send", 1)
        .internal(1, 2)  # loss
        .external(1, "arrive", 0)
        .external(2, "timeout", 0)
        .initial(0)
        .build()
    )


@pytest.fixture
def nondet_choice() -> Specification:
    """Normal-form hub/option machine: after 'go', choose left or right."""
    return (
        SpecBuilder("choice")
        .external("idle", "go", "hub")
        .internal("hub", "left")
        .internal("hub", "right")
        .external("left", "l", "idle")
        .external("right", "r", "idle")
        .initial("idle")
        .build()
    )


@pytest.fixture
def internal_cycle() -> Specification:
    """A sink set of two states (Fig. 4's left machine)."""
    return (
        SpecBuilder("cycle")
        .external(0, "e", 1)
        .internal(1, 2)
        .internal(2, 1)
        .external(1, "f", 0)
        .external(2, "g", 0)
        .initial(0)
        .build()
    )
