"""Unit tests for the safety (Fig. 5) and progress (Fig. 6) phases."""

from repro.quotient import (
    QuotientProblem,
    progress_phase,
    safety_phase,
)
from repro.satisfy import satisfies_safety
from repro.compose import compose
from repro.spec import SpecBuilder
from repro.traces import accepts


def xy_service():
    return (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )


def relay_component():
    return (
        SpecBuilder("B")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "n", 3)
        .external(3, "y", 0)
        .initial(0)
        .build()
    )


def make_problem(service=None, component=None):
    return QuotientProblem.build(
        service or xy_service(), component or relay_component()
    )


class TestSafetyPhase:
    def test_produces_pair_set_states(self):
        result = safety_phase(make_problem())
        assert result.exists
        spec = result.spec
        assert all(isinstance(s, frozenset) for s in spec.states)
        assert spec.initial in spec.states

    def test_c0_alphabet_is_int(self):
        result = safety_phase(make_problem())
        assert set(result.spec.alphabet) == {"m", "n"}

    def test_c0_is_deterministic_and_lambda_free(self):
        result = safety_phase(make_problem())
        assert result.spec.is_deterministic()
        assert not result.spec.internal

    def test_composite_is_safe(self):
        """Theorem 1(i): every trace of B || C0 is a trace of A."""
        problem = make_problem()
        result = safety_phase(problem)
        composite = compose(problem.component, result.spec)
        assert satisfies_safety(composite, problem.service).holds

    def test_maximality_on_relay(self):
        """Theorem 1(ii): C0 contains every safe Int trace.

        For the relay, the converter trace (m n)* interleaved arbitrarily is
        the safe language plus trivially-safe unmatched traces; check a few
        specific memberships.
        """
        result = safety_phase(make_problem())
        c0 = result.spec
        assert accepts(c0, ("m", "n"))
        assert accepts(c0, ("m", "n", "m", "n"))
        # 'n' before any 'm' is unmatched by B => trivially safe => present
        assert accepts(c0, ("n",))

    def test_unsafe_problem_yields_nothing(self):
        service = xy_service()
        component = (
            SpecBuilder("B")
            .external(0, "y", 0)
            .event("x").event("m").event("n")
            .initial(0)
            .build()
        )
        result = safety_phase(QuotientProblem.build(service, component))
        assert not result.exists
        assert result.spec is None

    def test_explored_and_rejected_counts(self):
        result = safety_phase(make_problem())
        assert result.explored >= len(result.spec.states)
        assert result.rejected >= 0

    def test_f_is_identity_on_pair_sets(self):
        result = safety_phase(make_problem())
        assert all(result.f[s] == s for s in result.spec.states)


class TestProgressPhase:
    def test_no_removals_when_progress_already_holds(self):
        problem = make_problem()
        sp = safety_phase(problem)
        pp = progress_phase(problem, sp.spec, sp.f)
        assert pp.exists
        assert pp.rounds[-1].bad_states == frozenset()

    def test_removal_when_component_can_stall(self):
        """B may silently enter a state refusing everything; converter
        states that permit reaching it must die."""
        service = xy_service()
        component = (
            SpecBuilder("B")
            .external(0, "x", 1)
            .external(1, "m", 2)
            .external(2, "y", 0)
            .external(1, "k", 3)     # k leads to a dead end
            .state(3)
            .event("n")
            .initial(0)
            .build()
        )
        problem = QuotientProblem.build(service, component)
        sp = safety_phase(problem)
        # C0 includes a k-transition (safe: the dead end violates nothing)
        assert any(e == "k" for _, e, _ in sp.spec.external)
        pp = progress_phase(problem, sp.spec, sp.f)
        assert pp.exists
        # ... but progress removed every state whose pairs include b=3
        for c in pp.spec.states:
            assert all(b != 3 for _, b in c)

    def test_total_removal_when_no_converter(self):
        """Service demands y after x but B can never produce y."""
        service = xy_service()
        component = (
            SpecBuilder("B")
            .external(0, "x", 1)
            .external(1, "m", 1)
            .event("y").event("n")
            .initial(0)
            .build()
        )
        problem = QuotientProblem.build(service, component)
        sp = safety_phase(problem)
        assert sp.exists  # safe: nothing bad ever happens, nothing good either
        pp = progress_phase(problem, sp.spec, sp.f)
        assert not pp.exists
        assert pp.spec is None

    def test_rounds_recorded_monotonically(self):
        problem = make_problem()
        sp = safety_phase(problem)
        pp = progress_phase(problem, sp.spec, sp.f)
        indices = [r.round_index for r in pp.rounds]
        assert indices == list(range(len(indices)))

    def test_vacuous_states_survive_progress(self):
        """Pair-empty states are never bad (vacuous ∀) — the paper's
        maximal converter keeps them."""
        problem = make_problem()
        sp = safety_phase(problem)
        vacuous = [s for s in sp.spec.states if not s]
        assert vacuous  # the relay problem has unmatched Int traces
        pp = progress_phase(problem, sp.spec, sp.f)
        assert all(v in pp.spec.states for v in vacuous)
