"""Tests for the service-frontier analysis."""

import pytest

from repro.analysis import service_frontier, stronger_or_equal
from repro.errors import AlphabetError
from repro.protocols import (
    alternating_service,
    at_least_once_service,
    at_least_once_service_strict,
    colocated_scenario,
    symmetric_scenario,
    windowed_alternating_service,
)
from repro.spec import SpecBuilder


def candidates():
    return [
        alternating_service(),
        windowed_alternating_service(2),
        at_least_once_service(),
        at_least_once_service_strict(),
    ]


class TestStrengthOrder:
    def test_reflexive(self):
        assert stronger_or_equal(alternating_service(), alternating_service())

    def test_alternating_stronger_than_at_least_once(self):
        assert stronger_or_equal(alternating_service(), at_least_once_service())
        assert not stronger_or_equal(
            at_least_once_service(), alternating_service()
        )

    def test_window_services_incomparable_with_alternating(self):
        """S's traces are included in S(w=2)'s, but S cannot keep both
        acc and del continuously offered after one accept — incomparable
        under full (safety + progress) strength."""
        s = alternating_service()
        w2 = windowed_alternating_service(2)
        assert not stronger_or_equal(s, w2)
        assert not stronger_or_equal(w2, s)

    def test_alphabet_mismatch_is_incomparable(self):
        other = SpecBuilder("o").external(0, "zzz", 0).initial(0).build()
        assert not stronger_or_equal(alternating_service(), other)

    def test_strength_transitive_on_family(self):
        """The ordering used by the frontier is transitive across the
        candidate family (spot-check of the theoretical composition)."""
        family = candidates()
        for a in family:
            for b in family:
                for c in family:
                    if stronger_or_equal(a, b) and stronger_or_equal(b, c):
                        assert stronger_or_equal(a, c)


class TestFrontier:
    def test_symmetric_frontier_is_the_weakening(self):
        scen = symmetric_scenario()
        report = service_frontier(candidates(), scen.composite)
        assert report.frontier == ("S+",)
        by_name = {o.name: o for o in report.outcomes}
        assert not by_name["S"].achievable
        assert not by_name["S+det"].achievable
        assert by_name["S+"].achievable

    def test_colocated_frontier(self):
        scen = colocated_scenario()
        report = service_frontier(candidates(), scen.composite)
        by_name = {o.name: o for o in report.outcomes}
        assert by_name["S"].achievable
        assert by_name["S+"].achievable
        # achievable S dominates achievable S+, so S+ is off the frontier
        assert "S" in report.frontier
        assert "S+" not in report.frontier

    def test_describe_marks_frontier(self):
        scen = colocated_scenario()
        report = service_frontier(candidates(), scen.composite)
        assert "*" in report.describe()

    def test_rejects_mixed_alphabets(self):
        scen = colocated_scenario()
        bad = SpecBuilder("bad").external(0, "zzz", 0).initial(0).build()
        with pytest.raises(AlphabetError, match="one service alphabet"):
            service_frontier([alternating_service(), bad], scen.composite)

    def test_rejects_duplicate_names(self):
        scen = colocated_scenario()
        with pytest.raises(AlphabetError, match="distinct names"):
            service_frontier(
                [alternating_service(), alternating_service()],
                scen.composite,
            )
