"""Tests for :mod:`repro.persist`: durable snapshots and exact resume.

The contract under test:

* snapshot files are atomic and integrity-checked — a truncated or
  bit-flipped write is *detected* (sha256 mismatch) and the loader falls
  back to the rotated previous-good snapshot;
* checkpoints round-trip exactly through JSON, and unknown future schema
  fields are rejected with a clear :class:`~repro.errors.PersistError`;
* a solve interrupted at a deterministic charge boundary and resumed from
  its checkpoint produces results **identical** to the uninterrupted run,
  on the compiled-kernel and reference paths alike (and across them);
* a checkpoint taken for a different problem is rejected by lint rule
  ``QUOT104`` before any state is replayed.
"""

import json
import signal

import pytest

from repro import obs
from repro.errors import (
    BudgetExceeded,
    InterruptRequested,
    LintError,
    PersistError,
)
from repro.obs import MetricsCollector
from repro.persist import (
    Checkpoint,
    InterruptController,
    anytime_summary,
    load_checkpoint,
    problem_fingerprint,
    render_anytime_text,
    save_checkpoint,
    spec_fingerprint,
)
from repro.persist.interrupt import DEADLINE_CHECK_INTERVAL
from repro.persist.store import PREV_SUFFIX
from repro.quotient import Budget, solve_quotient
from repro.spec import use_kernel
from repro.spec.random_specs import random_quotient_instance


def make_ckpt(n=0):
    return Checkpoint(
        kind="quotient",
        fingerprint=format(n, "064d"),
        phase="safety",
        payload={"n": n},
    )


@pytest.fixture(scope="module")
def instance():
    # seed 1 gives a converter and a run long enough (~40 charges) to
    # interrupt in either phase
    service, component, internal, _ = random_quotient_instance(seed=1)
    return service, component, internal


def _solve(instance, **kwargs):
    service, component, internal = instance
    return solve_quotient(service, component, int_events=internal, **kwargs)


def _key(result):
    """Everything a resumed run must reproduce byte-for-byte."""
    return (
        result.exists,
        result.converter,
        result.f,
        result.c0,
        result.c0_f,
        result.safety.spec,
        result.safety.f,
        result.safety.explored,
        result.safety.rejected,
        None if result.progress is None else result.progress.rounds,
        None
        if result.verification is None
        else result.verification.holds,
    )


def _total_charges(instance):
    probe = InterruptController()
    _solve(instance, interrupt=probe)
    return probe.charges


# ----------------------------------------------------------------------
# store: atomic writes, integrity checks, fallback
# ----------------------------------------------------------------------
class TestStore:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        ckpt = make_ckpt(7)
        assert save_checkpoint(path, ckpt) == path
        assert load_checkpoint(path) == ckpt

    def test_rotation_keeps_previous_good_snapshot(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_ckpt(1))
        save_checkpoint(path, make_ckpt(2))
        assert load_checkpoint(path) == make_ckpt(2)
        assert load_checkpoint(path + PREV_SUFFIX) == make_ckpt(1)

    def test_no_stray_tmp_files(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_ckpt(1))
        save_checkpoint(path, make_ckpt(2))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["run.ckpt", "run.ckpt.prev"]

    def test_truncated_file_falls_back(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_ckpt(1))
        save_checkpoint(path, make_ckpt(2))
        text = (tmp_path / "run.ckpt").read_text()
        (tmp_path / "run.ckpt").write_text(text[: len(text) // 2])
        with obs.use_collector(MetricsCollector()) as collector:
            assert load_checkpoint(path) == make_ckpt(1)
        counters = collector.snapshot().counters
        assert counters["persist.fallbacks"] == 1

    def test_bit_flip_detected_and_recovered(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_ckpt(1))
        save_checkpoint(path, make_ckpt(2))
        raw = (tmp_path / "run.ckpt").read_bytes()
        # flip one bit inside the payload region, keeping the JSON valid
        flipped = raw.replace(b'"n": 2', b'"n": 3', 1)
        assert flipped != raw
        (tmp_path / "run.ckpt").write_bytes(flipped)
        with pytest.raises(PersistError, match="bit-flipped"):
            load_checkpoint(path, fallback=False)
        assert load_checkpoint(path) == make_ckpt(1)

    def test_both_snapshots_bad_is_a_combined_error(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_ckpt(1))
        save_checkpoint(path, make_ckpt(2))
        (tmp_path / "run.ckpt").write_text("not json")
        (tmp_path / "run.ckpt.prev").write_text("{}")
        with pytest.raises(PersistError, match="both snapshots are unusable"):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistError, match="no checkpoint at"):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_unknown_envelope_field_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_ckpt(1))
        doc = json.loads((tmp_path / "run.ckpt").read_text())
        doc["surprise"] = True
        (tmp_path / "run.ckpt").write_text(json.dumps(doc))
        with pytest.raises(PersistError, match="unknown envelope field"):
            load_checkpoint(path, fallback=False)


# ----------------------------------------------------------------------
# checkpoint bodies: JSON round-trips and strict decoding
# ----------------------------------------------------------------------
class TestCheckpointCodec:
    def test_budget_round_trips_through_json(self):
        budget = Budget(max_pairs=5, max_states=9, wall_time_s=1.5)
        doc = budget.to_json_dict()
        assert json.loads(json.dumps(doc)) == doc

    def test_checkpoint_round_trips_through_json(self):
        ckpt = make_ckpt(42)
        doc = ckpt.to_json_dict()
        restored = Checkpoint.from_json_dict(json.loads(json.dumps(doc)))
        assert restored == ckpt
        assert restored.to_json_dict() == doc

    def test_unknown_future_field_rejected(self):
        doc = make_ckpt().to_json_dict()
        doc["quantum_state"] = [1, 2, 3]
        with pytest.raises(PersistError, match="unknown field.*quantum_state"):
            Checkpoint.from_json_dict(doc)

    def test_unsupported_schema_rejected(self):
        doc = make_ckpt().to_json_dict()
        doc["schema"] = 999
        with pytest.raises(PersistError, match="unsupported checkpoint schema"):
            Checkpoint.from_json_dict(doc)

    def test_unknown_kind_rejected(self):
        doc = make_ckpt().to_json_dict()
        doc["kind"] = "espresso"
        with pytest.raises(PersistError, match="unknown checkpoint kind"):
            Checkpoint.from_json_dict(doc)

    def test_missing_field_rejected(self):
        doc = make_ckpt().to_json_dict()
        del doc["fingerprint"]
        with pytest.raises(PersistError, match="missing field"):
            Checkpoint.from_json_dict(doc)

    def test_fingerprint_ignores_names_but_not_structure(self, instance):
        service, component, internal = instance
        renamed = service.renamed("other-name")
        assert spec_fingerprint(service) == spec_fingerprint(renamed)
        assert spec_fingerprint(service) != spec_fingerprint(component)


# ----------------------------------------------------------------------
# the interrupt controller
# ----------------------------------------------------------------------
class TestInterruptController:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterruptController(deadline_s=0)
        with pytest.raises(ValueError):
            InterruptController(at_charge=0)

    def test_at_charge_fires_exactly(self):
        ctrl = InterruptController(at_charge=3)
        assert ctrl.tick() is None
        assert ctrl.tick() is None
        assert ctrl.tick() == "test interrupt at charge 3"
        assert ctrl.charges == 3

    def test_request_fires_at_next_tick(self):
        ctrl = InterruptController()
        assert ctrl.tick() is None
        ctrl.request("operator said stop")
        assert ctrl.requested
        assert ctrl.tick() == "operator said stop"

    def test_deadline_with_fake_clock(self):
        now = [10.0]
        ctrl = InterruptController(deadline_s=5.0, clock=lambda: now[0])
        assert ctrl.tick() is None  # first tick reads the clock: 0.0s
        now[0] = 20.0
        reasons = [ctrl.tick() for _ in range(DEADLINE_CHECK_INTERVAL)]
        assert reasons[-1] == "deadline of 5.0s exceeded"
        assert all(r is None for r in reasons[:-1])

    def test_sigint_is_cooperative(self):
        ctrl = InterruptController()
        with ctrl.install_sigint():
            signal.raise_signal(signal.SIGINT)  # no KeyboardInterrupt
            assert ctrl.requested
            assert ctrl.tick() == "SIGINT received"
        # handler restored: outside the context Ctrl-C is hard again
        with pytest.raises(KeyboardInterrupt):
            signal.raise_signal(signal.SIGINT)

    def test_second_sigint_falls_through(self):
        ctrl = InterruptController()
        with ctrl.install_sigint():
            signal.raise_signal(signal.SIGINT)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)

    def test_sigterm_is_cooperative(self):
        """install_signals treats a polite SIGTERM like Ctrl-C: stop at
        the next charge boundary, not summary death."""
        ctrl = InterruptController()
        previous = signal.getsignal(signal.SIGTERM)
        with ctrl.install_signals():
            signal.raise_signal(signal.SIGTERM)  # process survives
            assert ctrl.requested
            assert ctrl.tick() == "SIGTERM received"
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_sigterm_in_subprocess_checkpoints_cooperatively(self, tmp_path):
        """End to end in a real child process: SIGTERM mid-run leaves a
        cooperative stop (exit 0 with the reason), not a 143 corpse."""
        import os
        import subprocess
        import sys

        code = (
            "import sys, time\n"
            "from repro.persist import InterruptController\n"
            "ctrl = InterruptController()\n"
            "with ctrl.install_signals():\n"
            "    print('ready', flush=True)\n"
            "    for _ in range(3000):\n"
            "        reason = ctrl.tick()\n"
            "        if reason is not None:\n"
            "            print('stopped: ' + reason, flush=True)\n"
            "            sys.exit(0)\n"
            "        time.sleep(0.01)\n"
            "sys.exit(1)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout is not None
            assert proc.stdout.readline().strip() == "ready"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "stopped: SIGTERM received" in out


# ----------------------------------------------------------------------
# interrupt → checkpoint → resume: exactness
# ----------------------------------------------------------------------
class TestExactResume:
    def _interrupted_checkpoint(self, instance, at_charge):
        with pytest.raises(InterruptRequested) as exc:
            _solve(instance, interrupt=InterruptController(at_charge=at_charge))
        ckpt = exc.value.checkpoint
        assert ckpt is not None and ckpt.kind == "quotient"
        # survive a trip through the store's JSON serialization
        return Checkpoint.from_json_dict(
            json.loads(json.dumps(ckpt.to_json_dict()))
        )

    @pytest.mark.parametrize("kernel", [True, False], ids=["kernel", "ref"])
    def test_resume_is_identical_early_and_late(self, instance, kernel):
        with use_kernel(kernel):
            baseline = _key(_solve(instance))
            total = _total_charges(instance)
            for at_charge in {2, total // 2, total - 1}:
                ckpt = self._interrupted_checkpoint(instance, at_charge)
                resumed = _solve(instance, resume_from=ckpt)
                assert _key(resumed) == baseline, f"at_charge={at_charge}"

    def test_resume_crosses_kernel_paths(self, instance):
        with use_kernel(True):
            baseline = _key(_solve(instance))
            total = _total_charges(instance)
            ckpt = self._interrupted_checkpoint(instance, total // 2)
        with use_kernel(False):
            assert _key(_solve(instance, resume_from=ckpt)) == baseline
            ckpt2 = self._interrupted_checkpoint(instance, total // 3)
        with use_kernel(True):
            assert _key(_solve(instance, resume_from=ckpt2)) == baseline

    def test_budget_trip_carries_resumable_checkpoint(self, instance):
        baseline = _key(_solve(instance))
        with pytest.raises(BudgetExceeded) as exc:
            _solve(instance, budget=Budget(max_pairs=4))
        ckpt = exc.value.checkpoint
        assert ckpt is not None and ckpt.phase == "safety"
        # budgets are per-run: the resumed run gets fresh meters
        resumed = _solve(instance, resume_from=ckpt, budget=Budget(max_pairs=10**6))
        assert _key(resumed) == baseline

    def test_stale_checkpoint_rejected(self, instance):
        total = _total_charges(instance)
        ckpt = self._interrupted_checkpoint(instance, total // 2)
        other_service, other_component, other_internal, _ = (
            random_quotient_instance(seed=18)
        )
        with pytest.raises(LintError, match="QUOT104"):
            solve_quotient(
                other_service,
                other_component,
                int_events=other_internal,
                resume_from=ckpt,
            )

    def test_checkpoint_fingerprint_matches_problem(self, instance):
        total = _total_charges(instance)
        ckpt = self._interrupted_checkpoint(instance, total // 2)
        result = _solve(instance)
        assert ckpt.fingerprint == problem_fingerprint(result.problem)


# ----------------------------------------------------------------------
# anytime output
# ----------------------------------------------------------------------
class TestAnytime:
    def test_summary_is_partial_and_json_safe(self, instance):
        with pytest.raises(InterruptRequested) as exc:
            _solve(instance, interrupt=InterruptController(at_charge=2))
        summary = anytime_summary(exc.value.checkpoint)
        assert summary["guarantees"] == "partial"
        assert summary["kind"] == "quotient"
        assert summary["safety"]["pairs_explored"] >= 1
        assert json.loads(json.dumps(summary)) == summary
        text = render_anytime_text(summary)
        assert text.startswith("guarantees: partial")
        assert "safety so far" in text

    def test_interrupted_error_is_structured(self, instance):
        with pytest.raises(InterruptRequested) as exc:
            _solve(instance, interrupt=InterruptController(at_charge=2))
        doc = exc.value.to_json_dict()
        assert doc["error"] == "interrupted"
        assert doc["phase"] == "safety"
        assert json.loads(json.dumps(doc)) == doc


# ----------------------------------------------------------------------
# Store.gc: pruning the write protocol's crash debris
# ----------------------------------------------------------------------
class TestStoreGC:
    def _store(self, tmp_path):
        from repro.persist import Store

        store = Store(str(tmp_path))
        store.write("a.json", {"n": 1})
        store.write("a.json", {"n": 2})       # rotates a healthy .prev
        store.write("sub/b.json", {"n": 3})   # nested: gc walks the tree
        return store

    def test_gc_on_a_healthy_tree_touches_nothing(self, tmp_path):
        store = self._store(tmp_path)
        stats = store.gc()
        assert stats == {
            "scanned": 2, "tmp_removed": 0, "healed": 0,
            "corrupt_removed": 0, "prev_removed": 0,
        }
        assert store.read("a.json") == {"n": 2}
        assert store.read("a.json" + PREV_SUFFIX) == {"n": 1}
        assert store.read("sub/b.json") == {"n": 3}

    def test_gc_removes_orphaned_tmp_files(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / "a.json.k3j2.tmp").write_text("half-writ")
        (tmp_path / "sub" / "b.json.x9.tmp").write_text("")
        stats = store.gc()
        assert stats["tmp_removed"] == 2
        assert not list(tmp_path.rglob("*.tmp"))
        assert store.read("a.json") == {"n": 2}

    def test_gc_heals_torn_primary_from_prev(self, tmp_path):
        """The regression the write protocol makes possible: a crash (or
        injected partial write) after the .prev rotation leaves a torn
        primary shadowing a healthy fallback.  gc must promote the
        fallback, not delete the pair."""
        store = self._store(tmp_path)
        text = (tmp_path / "a.json").read_text()
        (tmp_path / "a.json").write_text(text[: len(text) // 3])
        stats = store.gc()
        assert stats["healed"] == 1
        assert stats["corrupt_removed"] == 0
        assert store.read("a.json") == {"n": 1}  # the previous good body
        assert not (tmp_path / ("a.json" + PREV_SUFFIX)).exists()

    def test_gc_removes_corrupt_primary_without_fallback(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / "sub" / "b.json").write_text("{ not json")
        stats = store.gc()
        assert stats["corrupt_removed"] == 1
        assert not store.exists("sub/b.json")
        assert store.read("a.json") == {"n": 2}  # the healthy neighbour

    def test_gc_removes_corrupt_prev_beside_healthy_primary(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / ("a.json" + PREV_SUFFIX)).write_text("torn too")
        stats = store.gc()
        assert stats["prev_removed"] == 1
        assert store.read("a.json") == {"n": 2}

    def test_gc_promotes_orphaned_prev(self, tmp_path):
        """A crash between the two renames leaves only the .prev — the
        previous good snapshot — which gc promotes back to primary."""
        store = self._store(tmp_path)
        (tmp_path / "a.json").unlink()
        stats = store.gc()
        assert stats["healed"] == 1
        assert store.read("a.json") == {"n": 1}

    def test_gc_counts_its_work_into_obs(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / "a.json.zz.tmp").write_text("")
        text = (tmp_path / "a.json").read_text()
        (tmp_path / "a.json").write_text(text[:20])
        with obs.use_collector(MetricsCollector()) as collector:
            store.gc()
        counters = collector.snapshot().counters
        assert counters["persist.gc.runs"] == 1
        assert counters["persist.gc.scanned"] == 2
        assert counters["persist.gc.tmp_removed"] == 1
        assert counters["persist.gc.healed"] == 1
        assert "persist.gc.corrupt_removed" not in counters  # zero: uncounted
