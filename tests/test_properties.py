"""Property-based tests (hypothesis) for the core theory.

Random specifications are drawn through the library's own seeded
generators (a seed + size is a compact, shrink-friendly representation),
and properties are checked with the exact algorithms — no bounded
approximations except where explicitly noted.
"""

from hypothesis import given, settings, strategies as st

from repro.compose import compose
from repro.io import dumps, loads, parse_spec, to_dsl
from repro.quotient import solve_quotient
from repro.satisfy import satisfies, satisfies_safety
from repro.spec import (
    determinize,
    hide_events,
    is_normal_form,
    minimize_bisimulation,
    minimize_deterministic,
    normalize,
    prune_unreachable,
    random_deterministic_service,
    random_quotient_instance,
    random_spec,
    relabel_canonical,
    strongly_bisimilar,
    trace_equivalent,
)
from repro.spec.graph import reachable_sink_sets, reachable_states
from repro.traces import accepts, is_prefix_closed, language_upto, project

SEEDS = st.integers(min_value=0, max_value=10_000)
SIZES = st.integers(min_value=1, max_value=8)
EVENTS = ["a", "b", "c"]


def draw_spec(seed: int, size: int):
    return random_spec(
        n_states=size,
        events=EVENTS,
        external_density=0.3,
        internal_density=0.12,
        seed=seed,
    )


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_language_is_prefix_closed(seed, size):
    spec = draw_spec(seed, size)
    assert is_prefix_closed(language_upto(spec, 4))


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_every_state_reaches_a_sink(seed, size):
    """Finiteness: each state's λ-closure contains a sink set (the paper
    relies on this to simplify the progress definition)."""
    spec = draw_spec(seed, size)
    for s in spec.states:
        assert reachable_sink_sets(spec, s)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_determinize_is_trace_equivalent_and_normal(seed, size):
    spec = draw_spec(seed, size)
    det = determinize(spec)
    assert det.is_deterministic()
    assert is_normal_form(det)
    assert trace_equivalent(det, spec)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_normalize_when_it_succeeds_is_exact(seed, size):
    from repro.errors import NormalizationError

    spec = draw_spec(seed, size)
    try:
        nf = normalize(spec)
    except NormalizationError:
        return  # exactness is impossible; documented contract
    assert is_normal_form(nf)
    assert trace_equivalent(nf, spec)


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS, size=SIZES, seed2=SEEDS, size2=SIZES)
def test_composition_commutative_up_to_traces(seed, size, seed2, size2):
    left = draw_spec(seed, size)
    right = random_spec(
        n_states=size2, events=["c", "d", "e"], seed=seed2
    )
    ab = compose(left, right)
    ba = compose(right, left)
    assert ab.alphabet == ba.alphabet
    assert trace_equivalent(ab, ba)


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_compose_with_inert_spec_preserves_traces(seed, size):
    """Composing with a disjoint-alphabet single-state machine neither adds
    nor removes behaviour over the original alphabet."""
    from repro.spec import SpecBuilder

    spec = draw_spec(seed, size)
    inert = SpecBuilder("inert").state(0).event("zzz").initial(0).build()
    composed = compose(spec, inert)
    for t in language_upto(spec, 4):
        assert accepts(composed, t)
    for t in language_upto(composed, 4):
        assert accepts(spec, project(t, spec.alphabet))


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_hiding_projects_traces(seed, size):
    spec = draw_spec(seed, size)
    hidden_events = ["a"]
    hidden = hide_events(spec, hidden_events)
    keep = set(spec.alphabet) - set(hidden_events)
    # every original trace survives as its projection
    for t in language_upto(spec, 4):
        assert accepts(hidden, project(t, keep))


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_safety_satisfaction_reflexive(seed, size):
    spec = draw_spec(seed, size)
    assert satisfies_safety(spec, spec).holds


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_full_satisfaction_reflexive_on_deterministic_services(seed, size):
    svc = random_deterministic_service(n_states=size, events=EVENTS, seed=seed)
    assert satisfies(svc, svc).holds


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_minimize_bisimulation_sound(seed, size):
    spec = prune_unreachable(draw_spec(seed, size))
    small = minimize_bisimulation(spec)
    assert len(small.states) <= len(spec.states)
    assert strongly_bisimilar(small, spec)


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_minimize_deterministic_sound(seed, size):
    det = determinize(draw_spec(seed, size))
    small = minimize_deterministic(det)
    assert len(small.states) <= len(det.states)
    assert trace_equivalent(small, det)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_json_roundtrip(seed, size):
    spec = draw_spec(seed, size)
    assert loads(dumps(spec)) == spec


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_dsl_roundtrip(seed, size):
    spec = draw_spec(seed, size)
    assert parse_spec(to_dsl(spec)) == spec


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_relabel_canonical_preserves_behaviour(seed, size):
    spec = prune_unreachable(draw_spec(seed, size))
    relabeled = relabel_canonical(spec)
    assert strongly_bisimilar(spec, relabeled)
    assert reachable_states(relabeled) == relabeled.states


@settings(max_examples=15, deadline=None)
@given(seed=SEEDS)
def test_quotient_roundtrip_on_random_instances(seed):
    """The central soundness property: whenever the solver says a converter
    exists, composing it with B satisfies A under the independent checker
    (the solver already asserts this internally; re-state it as the
    user-visible contract)."""
    service, component, _, _ = random_quotient_instance(seed=seed)
    result = solve_quotient(service, component)
    if result.exists:
        composite = compose(component, result.converter)
        assert satisfies(composite, service).holds


@settings(max_examples=10, deadline=None)
@given(seed=SEEDS)
def test_quotient_safety_phase_safe_even_when_no_converter(seed):
    """Theorem 1(i) on random instances: B || C0 never violates safety."""
    from repro.quotient import QuotientProblem, safety_phase

    service, component, _, _ = random_quotient_instance(seed=seed)
    problem = QuotientProblem.build(service, component)
    sp = safety_phase(problem)
    if sp.exists:
        composite = compose(component, sp.spec)
        assert satisfies_safety(composite, service).holds


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_simulation_agrees_with_composition(seed, size):
    """Operational/analytical agreement: any executed run's external trace
    is a trace of the composed machine, for random component pairs."""
    from repro.simulate import RandomPolicy, Simulator

    left = draw_spec(seed, size)
    right = random_spec(
        n_states=max(2, size - 1),
        events=["b", "c", "d"],  # overlaps with left on b, c
        seed=seed + 17,
        internal_density=0.1,
    )
    composite = compose(left, right)
    sim = Simulator([left, right], RandomPolicy(seed))
    log = sim.run(60)
    assert accepts(composite, log.external_trace)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_service_monitor_agrees_with_accepts(seed, size):
    """The online monitor flags exactly the traces `accepts` rejects."""
    from repro.simulate import ServiceMonitor
    from repro.traces import sample_trace

    service = random_deterministic_service(
        n_states=size, events=EVENTS, seed=seed
    )
    good = sample_trace(service, min(size + 2, 6), seed=seed)
    if good is not None:
        monitor = ServiceMonitor(service)
        for e in good:
            assert monitor.observe(e)
        assert monitor.verdict().ok
    # appending an impossible continuation must be flagged
    monitor = ServiceMonitor(service)
    prefix = good or ()
    for e in prefix:
        monitor.observe(e)
    from repro.traces import enabled_after

    blocked = sorted(set(EVENTS) - set(enabled_after(service, prefix)))
    if blocked:
        assert not monitor.observe(blocked[0])
        assert not monitor.verdict().ok


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_weak_simulation_reflexive(seed, size):
    from repro.spec import weakly_simulates

    spec = draw_spec(seed, size)
    assert weakly_simulates(spec, spec)


@settings(max_examples=12, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_determinized_abstract_weakly_simulates_original(seed, size):
    """det(A) has the same traces and, being deterministic, weakly
    simulates A."""
    from repro.spec import weakly_simulates

    spec = draw_spec(seed, size)
    assert weakly_simulates(determinize(spec), spec)
