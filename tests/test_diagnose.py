"""Tests for the structured nonexistence diagnosis."""

import pytest

from repro.protocols import symmetric_scenario
from repro.quotient import diagnose_nonexistence, solve_quotient
from repro.spec import SpecBuilder


@pytest.fixture(scope="module")
def symmetric_failure():
    scen = symmetric_scenario()
    return solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


class TestDiagnoseSymmetric:
    def test_frontier_nonempty(self, symmetric_failure):
        d = diagnose_nonexistence(symmetric_failure)
        assert d.frontier
        assert d.removed_total == 45
        assert d.rounds == 2

    def test_frontier_traces_are_shortest_first(self, symmetric_failure):
        d = diagnose_nonexistence(symmetric_failure)
        lengths = [len(f.trace) for f in d.frontier]
        assert lengths == sorted(lengths)

    def test_blocking_pairs_present(self, symmetric_failure):
        d = diagnose_nonexistence(symmetric_failure)
        assert any(f.blocking for f in d.frontier)
        for f in d.frontier:
            for b in f.blocking:
                # the composite's offering misses every acceptance set
                assert all(not (m <= b.offered) for m in b.menu)

    def test_paper_ambiguity_detected(self, symmetric_failure):
        """The data-vs-acknowledgement ambiguity of Section 5 appears as a
        component state compatible with different service histories."""
        d = diagnose_nonexistence(symmetric_failure, max_frontier=10)
        assert any(f.ambiguous_components for f in d.frontier)

    def test_describe_readable(self, symmetric_failure):
        text = diagnose_nonexistence(symmetric_failure).describe()
        assert "no converter exists" in text
        assert "point(s) of no return" in text


class TestDiagnoseValidation:
    def test_rejects_successful_quotient(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 2)
            .external(2, "y", 0).initial(0).build()
        )
        result = solve_quotient(service, component)
        with pytest.raises(ValueError, match="succeeded"):
            diagnose_nonexistence(result)

    def test_rejects_safety_failure(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "y", 0)
            .event("x").event("m").initial(0).build()
        )
        result = solve_quotient(service, component)
        with pytest.raises(ValueError, match="safety phase failed"):
            diagnose_nonexistence(result)

    def test_max_frontier_respected(self, symmetric_failure):
        d = diagnose_nonexistence(symmetric_failure, max_frontier=2)
        assert len(d.frontier) <= 2


class TestDiagnoseSmallInstance:
    def test_stalling_component(self):
        """B accepts x then loops internally on m forever: the diagnosis
        should blame the post-x obligation {y}."""
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 1)
            .event("y").initial(0).build()
        )
        result = solve_quotient(service, component)
        d = diagnose_nonexistence(result)
        assert d.frontier
        first = d.frontier[0]
        assert first.trace == ()  # doomed from the start
        hubs = {b.service_hub for b in first.blocking}
        assert 1 in hubs  # the state owing y
