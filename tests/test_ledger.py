"""Tests for repro.obs.ledger: records, appends, gc, crash safety, diffs.

The acceptance-critical property lives in ``TestCrashSafety``: a crash at
any point during an append (simulated by failing ``os.replace`` and by
killing the write after the tmp file exists) leaves every previously
recorded run readable — the ledger inherits the checkpoint store's
atomic-write guarantees.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.chaos import DEFAULT_STORE_RETRY
from repro.errors import PersistError
from repro.obs.ledger import (
    Ledger,
    RunRecord,
    append_run,
    diff_records,
    flatten_work,
    render_history_list,
)


def _record(fingerprint="f" * 64, kind="solve", **kwargs):
    kwargs.setdefault("work", {"safety.pairs_explored": 9})
    return RunRecord(kind=kind, fingerprint=fingerprint, **kwargs)


class TestRunRecord:
    def test_round_trips_through_json(self):
        record = _record(
            label="S/B",
            outcome="partial-budget",
            verdict="converter",
            work={"a": 1, "b": 2.5},
            phases={"safety": {"pairs": 1}},
            wall_time_s=0.25,
            created_at=123.0,
            artifacts={"checkpoint": "run.ckpt"},
        )
        assert RunRecord.from_json_dict(record.to_json_dict()) == record

    def test_json_dict_is_json_serializable_and_sorted(self):
        doc = _record(work={"z": 1, "a": 2}).to_json_dict()
        json.dumps(doc)
        assert list(doc["work"]) == ["a", "z"]

    def test_rejects_bad_outcome(self):
        with pytest.raises(ValueError):
            _record(outcome="exploded")

    def test_rejects_unknown_fields(self):
        doc = _record().to_json_dict()
        doc["surprise"] = 1
        with pytest.raises(PersistError, match="unknown field"):
            RunRecord.from_json_dict(doc)

    def test_rejects_wrong_schema(self):
        doc = _record().to_json_dict()
        doc["schema"] = 99
        with pytest.raises(PersistError, match="schema"):
            RunRecord.from_json_dict(doc)

    def test_rejects_missing_required_field(self):
        doc = _record().to_json_dict()
        del doc["fingerprint"]
        with pytest.raises(PersistError, match="fingerprint"):
            RunRecord.from_json_dict(doc)


class TestFlattenWork:
    def test_nests_and_drops_nondeterministic(self):
        counters = {
            "safety": {
                "pairs_explored": 9,
                "exists": True,        # bool: dropped
                "elapsed_s": 1.23,     # wall time: dropped
            },
            "progress": {
                "rounds": [{"round": 0}, {"round": 1}],  # list -> count
                "states_removed": 0,
            },
            "emptied_by": None,        # None: dropped
            "label": "S/B",            # str: dropped
            "duration_ms": 5,          # wall time: dropped
        }
        assert flatten_work(counters) == {
            "safety.pairs_explored": 9,
            "progress.rounds.count": 2,
            "progress.states_removed": 0,
        }


class TestLedger:
    def test_read_missing_file_is_empty(self, tmp_path):
        assert Ledger(str(tmp_path / "none.json")).read() == ()

    def test_append_assigns_sequential_ids(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        first = append_run(path, kind="solve", fingerprint="a" * 64)
        second = append_run(path, kind="solve", fingerprint="a" * 64)
        assert (first.run_id, second.run_id) == (1, 2)
        assert [r.run_id for r in Ledger(path).read()] == [1, 2]

    def test_append_stamps_created_at(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        record = append_run(path, kind="solve", fingerprint="a" * 64)
        assert record.created_at is not None

    def test_get_and_missing_run(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        append_run(path, kind="solve", fingerprint="a" * 64)
        assert Ledger(path).get(1).run_id == 1
        with pytest.raises(PersistError, match="no run 7"):
            Ledger(path).get(7)

    def test_runs_of_filters_fingerprint_and_kind(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        append_run(path, kind="solve", fingerprint="a" * 64)
        append_run(path, kind="analyze", fingerprint="a" * 64)
        append_run(path, kind="solve", fingerprint="b" * 64)
        ledger = Ledger(path)
        assert len(ledger.runs_of("a" * 64)) == 2
        assert len(ledger.runs_of("a" * 64, kind="solve")) == 1
        assert ledger.runs_of("c" * 64) == ()

    def test_gc_keeps_newest_per_group(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        for _ in range(5):
            append_run(path, kind="solve", fingerprint="a" * 64)
        append_run(path, kind="solve", fingerprint="b" * 64)
        removed = Ledger(path).gc(keep=2)
        assert removed == 3
        survivors = Ledger(path).read()
        assert [r.run_id for r in survivors] == [4, 5, 6]
        # ids are never reused after gc
        assert append_run(path, kind="solve", fingerprint="a" * 64).run_id == 7

    def test_gc_rejects_bad_keep(self, tmp_path):
        with pytest.raises(ValueError):
            Ledger(str(tmp_path / "ledger.json")).gc(keep=0)

    def test_rejects_non_ledger_envelope(self, tmp_path):
        from repro.persist.store import write_envelope

        path = str(tmp_path / "other.json")
        write_envelope(path, {"kind": "something-else"}, kind="document")
        with pytest.raises(PersistError, match="not a ledger"):
            Ledger(path).read()

    def test_render_history_list(self, tmp_path):
        path = str(tmp_path / "ledger.json")
        assert render_history_list(Ledger(path).read()) == "(ledger is empty)"
        append_run(
            path, kind="solve", fingerprint="a" * 64,
            label="S/B", verdict="converter",
        )
        text = render_history_list(Ledger(path).read())
        assert "run" in text and "solve" in text and "S/B" in text
        assert ("a" * 12) in text and ("a" * 64) not in text


class TestCrashSafety:
    """A crash mid-append must never lose previously recorded runs."""

    def _seed(self, tmp_path, n=3):
        path = str(tmp_path / "ledger.json")
        for i in range(n):
            append_run(
                path, kind="solve", fingerprint="a" * 64,
                work={"pairs": i},
            )
        return path

    def test_crash_at_replace_keeps_old_ledger(self, tmp_path, monkeypatch):
        path = self._seed(tmp_path)
        real_replace = os.replace

        def exploding_replace(src, dst):
            if dst == path:
                raise OSError("simulated crash at rename")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(PersistError):
            append_run(path, kind="solve", fingerprint="a" * 64)
        monkeypatch.undo()
        records = Ledger(path).read()
        assert [r.run_id for r in records] == [1, 2, 3]

    def test_crash_during_write_leaves_no_torn_ledger(self, tmp_path, monkeypatch):
        path = self._seed(tmp_path)
        calls = {"n": 0}
        real_fsync = os.fsync

        def exploding_fsync(fd):
            calls["n"] += 1
            raise OSError("simulated crash before durability")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(PersistError):
            append_run(path, kind="solve", fingerprint="a" * 64)
        monkeypatch.undo()
        # transient OSErrors are retried before the append gives up
        assert calls["n"] == DEFAULT_STORE_RETRY.max_attempts
        assert [r.run_id for r in Ledger(path).read()] == [1, 2, 3]
        # the failed attempt left no stray tmp files behind
        stray = [n for n in os.listdir(tmp_path) if ".tmp" in n]
        assert stray == []

    def test_corrupted_ledger_falls_back_to_prev(self, tmp_path):
        path = self._seed(tmp_path)
        append_run(path, kind="solve", fingerprint="a" * 64)  # rotates .prev
        raw = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(raw[: len(raw) // 2])
        records = Ledger(path).read()  # .prev carries runs 1..3
        assert [r.run_id for r in records] == [1, 2, 3]


class TestDiffRecords:
    def test_detects_injected_regression(self):
        base = _record(work={"safety.pairs_explored": 100, "states": 40})
        new = _record(work={"safety.pairs_explored": 150, "states": 40})
        diff = diff_records(base, new)
        assert diff.regressed
        assert diff.regressions == (("safety.pairs_explored", 100, 150),)
        assert "REGRESSED" in diff.render_text()

    def test_no_regression_when_equal_or_improved(self):
        base = _record(work={"pairs": 100})
        for value in (100, 80):
            diff = diff_records(base, _record(work={"pairs": value}))
            assert not diff.regressed
            assert "no work regression" in diff.render_text()

    def test_threshold_grants_headroom(self):
        base = _record(work={"pairs": 100})
        new = _record(work={"pairs": 104})
        assert not diff_records(base, new, threshold=0.05).regressed
        assert diff_records(base, new, threshold=0.03).regressed

    def test_zero_baseline_regresses_on_any_increase(self):
        diff = diff_records(
            _record(work={"pairs": 0}),
            _record(work={"pairs": 1}),
            threshold=10.0,
        )
        assert diff.regressed

    def test_one_sided_counters_never_regress(self):
        diff = diff_records(
            _record(work={"old": 5}), _record(work={"new": 9})
        )
        assert not diff.regressed
        assert {name for name, *_ in diff.rows} == {"old", "new"}

    def test_mismatched_fingerprints_rejected(self):
        with pytest.raises(PersistError, match="different"):
            diff_records(_record("a" * 64), _record("b" * 64))

    def test_mismatched_kinds_rejected(self):
        with pytest.raises(PersistError, match="kinds"):
            diff_records(_record(kind="solve"), _record(kind="analyze"))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            diff_records(_record(), _record(), threshold=-1.0)

    def test_json_dict_shape(self):
        diff = diff_records(
            _record(work={"pairs": 1}), _record(work={"pairs": 2})
        )
        doc = diff.to_json_dict()
        json.dumps(doc)
        assert doc["regressed"] is True
        assert doc["counters"][0]["name"] == "pairs"
