"""Unit tests for the combined satisfaction verdict."""

from repro.satisfy import satisfies
from repro.spec import SpecBuilder


class TestSatisfies:
    def test_full_pass(self, alternator):
        report = satisfies(alternator, alternator)
        assert report.holds
        assert bool(report)
        assert report.safety.holds
        assert report.progress is not None and report.progress.holds

    def test_safety_failure_skips_progress(self, alternator):
        bad = (
            SpecBuilder("bad").external(0, "del", 0).event("acc").initial(0).build()
        )
        report = satisfies(bad, alternator)
        assert not report.holds
        assert not report.safety.holds
        assert report.progress is None
        assert "not evaluated" in report.describe()

    def test_progress_failure_detected(self, alternator):
        staller = (
            SpecBuilder("stall")
            .external(0, "acc", 1)
            .event("del")
            .initial(0)
            .build()
        )
        report = satisfies(staller, alternator)
        assert not report.holds
        assert report.safety.holds
        assert report.progress is not None and not report.progress.holds

    def test_describe_has_verdict_line(self, alternator):
        text = satisfies(alternator, alternator).describe()
        assert "YES" in text
        assert "safety holds" in text
        assert "progress holds" in text

    def test_names_recorded(self, alternator):
        report = satisfies(alternator.renamed("impl"), alternator.renamed("svc"))
        assert report.impl_name == "impl"
        assert report.service_name == "svc"

    def test_safety_then_progress_necessity(self, alternator):
        """Progress satisfaction implies safety satisfaction for these
        machines (the theory's necessary-condition relationship)."""
        once = (
            SpecBuilder("once")
            .external(0, "acc", 1)
            .external(1, "del", 0)
            .initial(0)
            .build()
        )
        report = satisfies(once, alternator)
        assert report.holds
