"""One malformed fixture per static-analysis rule, asserting code + witness."""

import pytest

from repro.errors import CompositionError, LintError, QuotientError
from repro.lint import (
    all_rules,
    lint_composition,
    lint_problem,
    lint_spec,
    preflight_quotient,
    run_rules,
)
from repro.spec import SpecBuilder
from repro.spec.spec import Specification


def codes(report):
    return {d.code for d in report}


def only(report, code):
    found = [d for d in report if d.code == code]
    assert found, f"expected a {code} diagnostic, got {sorted(codes(report))}"
    return found


def clean_pair():
    service = (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )
    component = (
        SpecBuilder("B").external(0, "x", 1).external(1, "m", 2)
        .external(2, "y", 0).initial(0).build()
    )
    return service, component


class TestSpecRules:
    def test_spec001_unreachable_state(self):
        spec = (
            SpecBuilder("s").external(0, "x", 0).external(1, "x", 0)
            .initial(0).build()
        )
        [d] = only(lint_spec(spec), "SPEC001")
        assert d.severity == "error"
        assert d.witness == 1
        assert d.spec_name == "s"

    def test_spec002_unused_event(self):
        spec = SpecBuilder("s").external(0, "x", 0).event("q").initial(0).build()
        [d] = only(lint_spec(spec), "SPEC002")
        assert d.severity == "info"
        assert d.witness == "q"
        assert d.event == "q"

    def test_spec003_terminal_state(self):
        spec = SpecBuilder("s").external(0, "x", 1).initial(0).build()
        [d] = only(lint_spec(spec), "SPEC003")
        assert d.severity == "warning"
        assert d.witness == 1

    def test_spec004_silent_internal_cycle(self):
        spec = (
            SpecBuilder("s").external(0, "x", 1).internal(1, 2).internal(2, 1)
            .initial(0).build()
        )
        [d] = only(lint_spec(spec), "SPEC004")
        assert d.severity == "warning"
        assert d.witness == frozenset({1, 2})

    def test_spec004_ignores_cycle_that_offers_events(self):
        spec = (
            SpecBuilder("s").external(0, "x", 1).external(1, "y", 0)
            .internal(1, 2).internal(2, 1).initial(0).build()
        )
        assert "SPEC004" not in codes(lint_spec(spec))

    def test_spec004_ignores_unreachable_cycle(self):
        spec = (
            SpecBuilder("s").external(0, "x", 0).internal(1, 2).internal(2, 1)
            .initial(0).build()
        )
        assert "SPEC004" not in codes(lint_spec(spec))

    def test_spec005_nondeterministic_fanout(self):
        spec = (
            SpecBuilder("s").external(0, "x", 1).external(0, "x", 2)
            .external(1, "y", 0).external(2, "y", 0).initial(0).build()
        )
        [d] = only(lint_spec(spec), "SPEC005")
        assert d.witness == (0, "x", frozenset({1, 2}))
        assert d.state == 0 and d.event == "x"

    def test_spec006_preemptible_external(self):
        spec = (
            SpecBuilder("s").external(0, "x", 1).internal(0, 1)
            .external(1, "y", 0).initial(0).build()
        )
        [d] = only(lint_spec(spec), "SPEC006")
        assert d.witness == 0

    def test_clean_spec_is_clean(self):
        service, _ = clean_pair()
        report = lint_spec(service)
        assert not report.diagnostics
        assert report.ok and report.exit_code() == 0


class TestNormRules:
    def test_norm001_mixed_state(self):
        spec = (
            SpecBuilder("a").external(0, "x", 1).internal(0, 1)
            .external(1, "x", 1).initial(0).build()
        )
        [d] = only(lint_spec(spec, role="service"), "NORM001")
        assert d.severity == "error"
        assert d.witness == 0

    def test_norm002_internal_cycle(self):
        spec = (
            SpecBuilder("a").internal(0, 1).internal(1, 0)
            .external(1, "x", 1).initial(0).build()
        )
        report = lint_spec(spec, role="service")
        [d] = only(report, "NORM002")
        assert d.witness == frozenset({0, 1})

    def test_norm003_divergent_event(self):
        spec = (
            SpecBuilder("a").external(0, "x", 1).external(0, "x", 2)
            .external(1, "y", 0).external(2, "y", 0).initial(0).build()
        )
        [d] = only(lint_spec(spec, role="service"), "NORM003")
        state, event, targets = d.witness
        assert event == "x" and targets == frozenset({1, 2})

    def test_component_role_skips_norm_rules(self):
        spec = (
            SpecBuilder("a").external(0, "x", 1).external(0, "x", 2)
            .external(1, "y", 0).external(2, "y", 0).initial(0).build()
        )
        assert not {c for c in codes(lint_spec(spec)) if c.startswith("NORM")}


class TestCompositionRules:
    def test_comp001_overshared_event(self):
        a = SpecBuilder("a").external(0, "e", 0).initial(0).build()
        b = a.renamed("b")
        c = a.renamed("c")
        report = lint_composition([a, b, c])
        [d] = only(report, "COMP001")
        assert d.severity == "error"
        assert d.witness == ("a", "b", "c")

    def test_comp002_non_synchronizing_part(self):
        a = SpecBuilder("a").external(0, "e", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "e", 0).external(0, "f", 0).initial(0).build()
        c = SpecBuilder("c").external(0, "zzz", 0).initial(0).build()
        [d] = only(lint_composition([a, b, c]), "COMP002")
        assert d.witness == "c"

    def test_conv001_send_without_receive(self):
        a = SpecBuilder("a").external(0, "-d0", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "-d0", 0).external(0, "+a0", 0).initial(0).build()
        c = SpecBuilder("c2").external(0, "-a0", 0).external(0, "+a0", 0).initial(0).build()
        report = lint_composition([a, b, c])
        [d] = only(report, "CONV001")
        assert d.witness == "-d0"

    def test_conv002_receive_without_send(self):
        a = SpecBuilder("a").external(0, "+k1", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "+k1", 0).initial(0).build()
        [d] = only(lint_composition([a, b]), "CONV002")
        assert d.witness == "+k1"

    def test_paired_channel_events_are_clean(self):
        sender = SpecBuilder("snd").external(0, "-p", 0).initial(0).build()
        channel = (
            SpecBuilder("ch").external(0, "-p", 1).external(1, "+p", 0)
            .initial(0).build()
        )
        report = lint_composition([sender, channel])
        assert not {c for c in codes(report) if c.startswith("CONV")}


class TestProblemRules:
    def test_spec101_int_ext_overlap(self):
        service, component = clean_pair()
        report = lint_problem(service, component, int_events=["m", "x"])
        [d] = only(report, "SPEC101")
        assert d.severity == "error"
        assert set(d.witness) == {"x"}

    def test_spec102_component_missing_ext(self):
        service, _ = clean_pair()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 0)
            .initial(0).build()
        )
        [d] = only(lint_problem(service, component), "SPEC102")
        assert set(d.witness) == {"y"}

    def test_spec103_declared_int_mismatch(self):
        service, component = clean_pair()
        [d] = only(
            lint_problem(service, component, int_events=["wrong"]), "SPEC103"
        )
        declared, inferred = d.witness
        assert declared == ("wrong",) and inferred == ("m",)

    def test_quot001_ext_event_never_offered(self):
        service, _ = clean_pair()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 1)
            .event("y").initial(0).build()
        )
        [d] = only(lint_problem(service, component), "QUOT001")
        assert d.witness == "y" and d.severity == "warning"

    def test_quot002_dead_converter_port(self):
        service, component = clean_pair()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 2)
            .external(2, "y", 0).event("k").initial(0).build()
        )
        [d] = only(lint_problem(service, component), "QUOT002")
        assert d.witness == "k"

    def test_clean_problem_is_clean(self):
        service, component = clean_pair()
        report = lint_problem(service, component, int_events=["m"])
        assert not report.errors and not report.warnings


class TestCheckpointRules:
    def test_quot104_kind_mismatch(self):
        from repro.lint import lint_checkpoint

        report = lint_checkpoint(
            kind="resilience",
            phase="sweep",
            fingerprint="a" * 64,
            expected_kind="quotient",
            expected_fingerprint="a" * 64,
        )
        [d] = only(report, "QUOT104")
        assert d.severity == "error"
        assert d.witness == ("resilience", "quotient")

    def test_quot104_stale_fingerprint_golden(self):
        # golden rendering: exact diagnostic text for a stale checkpoint
        from repro.lint import lint_checkpoint

        report = lint_checkpoint(
            kind="quotient",
            phase="safety",
            fingerprint="deadbeef" * 8,
            expected_kind="quotient",
            expected_fingerprint="cafebabe" * 8,
        )
        [d] = only(report, "QUOT104")
        assert d.witness == ("deadbeef" * 8, "cafebabe" * 8)
        assert d.describe() == (
            "error[QUOT104] checkpoint fingerprint deadbeefdead… was taken "
            "for a different problem than the one being resumed "
            "(cafebabecafe…); its 'safety'-phase state cannot be trusted "
            "here\n"
            "    hint: resume with the original service/component/Int "
            "(checkpoints fingerprint their inputs), or start a fresh "
            "solve without --resume"
        )
        with pytest.raises(LintError, match="QUOT104"):
            report.raise_if_errors()

    def test_quot104_matching_checkpoint_is_clean(self):
        from repro.lint import lint_checkpoint

        report = lint_checkpoint(
            kind="quotient",
            phase="progress",
            fingerprint="f" * 64,
            expected_kind="quotient",
            expected_fingerprint="f" * 64,
        )
        assert not report.diagnostics
        report.raise_if_errors()

    def test_quot104_respects_select_and_ignore(self):
        # the checkpoint rule goes through the ordinary engine, so the
        # severity filters apply to it like to any other rule
        from repro.lint import lint_checkpoint

        kwargs = dict(
            kind="resilience",
            phase="sweep",
            fingerprint="a" * 64,
            expected_kind="quotient",
            expected_fingerprint="b" * 64,
        )
        assert lint_checkpoint(**kwargs).errors
        ignored = lint_checkpoint(**kwargs, ignore=["QUOT104"])
        assert not ignored.diagnostics
        ignored.raise_if_errors()
        selected = lint_checkpoint(**kwargs, select=["QUOT1"])
        assert selected.errors

    def test_kind_and_fingerprint_mismatch_reports_both(self):
        from repro.lint import lint_checkpoint

        report = lint_checkpoint(
            kind="resilience",
            phase="sweep",
            fingerprint="a" * 64,
            expected_kind="quotient",
            expected_fingerprint="b" * 64,
        )
        witnesses = {d.witness for d in only(report, "QUOT104")}
        assert ("resilience", "quotient") in witnesses

    def test_solve_rejects_checkpoint_from_other_problem(self, tmp_path):
        # end to end: a checkpoint captured for one problem must not
        # resume another (same kind, different fingerprint)
        from repro.errors import BudgetExceeded
        from repro.persist import load_checkpoint, save_checkpoint
        from repro.quotient import solve_quotient
        from repro.quotient.budget import Budget
        from repro.spec.builder import SpecBuilder

        service, component = clean_pair()
        with pytest.raises(BudgetExceeded) as exc_info:
            solve_quotient(service, component, budget=Budget(max_pairs=1))
        ckpt_path = str(tmp_path / "other.ckpt")
        save_checkpoint(ckpt_path, exc_info.value.checkpoint)

        other_service = (
            SpecBuilder("A2").external(0, "x", 1).external(1, "y", 0)
            .external(1, "x", 1).initial(0).build()
        )
        with pytest.raises(LintError, match="QUOT104"):
            solve_quotient(
                other_service,
                component,
                resume_from=load_checkpoint(ckpt_path),
            )

    def test_missing_checkpoint_file_is_usage_error(self, tmp_path):
        from repro.cli import main

        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end
"""
        )
        code = main(
            [
                "solve", str(dsl), "service", "component",
                "--checkpoint", str(tmp_path / "nope.ckpt"),
                "--resume",
            ]
        )
        assert code == 2


class TestPreflight:
    def test_solve_rejects_int_ext_overlap_with_spec_code(self):
        from repro.quotient import solve_quotient

        service, component = clean_pair()
        with pytest.raises(LintError) as err:
            solve_quotient(service, component, int_events=["m", "x"])
        assert "SPEC101" in str(err.value)
        assert any(d.code == "SPEC101" for d in err.value.diagnostics)
        # LintError stays catchable as the legacy QuotientError
        assert isinstance(err.value, QuotientError)

    def test_solve_collects_all_normal_form_violations(self):
        from repro.quotient import solve_quotient

        bad_service = (
            SpecBuilder("A").external(0, "x", 1).external(0, "x", 2)
            .internal(0, 3).external(3, "y", 0)
            .external(1, "y", 0).external(2, "y", 0).initial(0).build()
        )
        _, component = clean_pair()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 2)
            .external(2, "y", 0).initial(0).build()
        )
        with pytest.raises(LintError) as err:
            solve_quotient(bad_service, component)
        got = {d.code for d in err.value.diagnostics}
        assert "NORM001" in got and "NORM003" in got  # collected, not first-failure

    def test_solve_preflight_opt_out_restores_legacy_exception(self):
        from repro.quotient import solve_quotient

        service, component = clean_pair()
        with pytest.raises(QuotientError, match="does not match"):
            solve_quotient(
                service, component, int_events=["wrong"], preflight=False
            )

    def test_preflight_does_not_block_on_warnings(self):
        service, _ = clean_pair()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 1)
            .event("y").initial(0).build()
        )
        report = preflight_quotient(service, component)
        assert report.ok
        assert "QUOT001" in report.codes()
        report.raise_if_errors()  # must not raise

    def test_preflight_excludes_structural_spec_rules(self):
        # an unreachable state in B never changes the quotient's answer,
        # so the solve preflight must not reject it
        service, _ = clean_pair()
        component = (
            SpecBuilder("B").external(0, "x", 1).external(1, "m", 2)
            .external(2, "y", 0).external(9, "m", 9).initial(0).build()
        )
        assert preflight_quotient(service, component).ok

    def test_compose_many_raises_lint_error_as_composition_error(self):
        from repro.compose import compose_many

        a = SpecBuilder("a").external(0, "e", 0).initial(0).build()
        with pytest.raises(CompositionError, match="three or more") as err:
            compose_many([a, a.renamed("b"), a.renamed("c")])
        assert isinstance(err.value, LintError)
        assert any(d.code == "COMP001" for d in err.value.diagnostics)


class TestEngine:
    def test_all_rules_have_unique_codes_and_docs(self):
        rules = all_rules()
        assert len({r.code for r in rules}) == len(rules)
        for r in rules:
            assert r.summary and r.hint
            assert r.scope in {
                "spec", "service", "composition", "problem", "checkpoint",
                "semantic", "semantic-converter", "semantic-result",
            }
        assert len(rules) >= 15

    def test_select_filters_by_prefix(self):
        spec = (
            SpecBuilder("s").external(0, "x", 1).external(1, "x", 1)
            .event("q").initial(0).build()
        )
        report = lint_spec(spec, select=["SPEC002"])
        assert set(report.codes()) <= {"SPEC002"}

    def test_ignore_filters_by_name(self):
        spec = SpecBuilder("s").external(0, "x", 1).event("q").initial(0).build()
        report = lint_spec(spec, ignore=["unused-event"])
        assert "SPEC002" not in report.codes()

    def test_run_rules_problem_dispatch(self):
        service, component = clean_pair()
        report = run_rules(service=service, component=component, int_events=["m", "x"])
        assert "SPEC101" in report.codes()

    def test_run_rules_compose_dispatch(self):
        a = SpecBuilder("a").external(0, "-p", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "-p", 0).initial(0).build()
        report = run_rules(a, b, compose=True)
        assert "CONV001" in report.codes()

    def test_run_rules_requires_paired_service_component(self):
        service, _ = clean_pair()
        with pytest.raises(ValueError, match="together"):
            run_rules(service=service)

    def test_report_renderings_are_consistent(self):
        spec = SpecBuilder("s").external(0, "x", 1).initial(0).build()
        report = lint_spec(spec)
        payload = report.to_json_dict()
        assert payload["summary"]["warnings"] == len(report.warnings)
        sarif = report.to_sarif_dict()
        results = sarif["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == [d.code for d in report]
        assert "SPEC003" in report.describe()


class TestChannelFaultRules:
    """CHAN1xx — fault-model conventions (docs/robustness.md)."""

    def test_chan101_fires_on_active_fault_state(self):
        bad = Specification(
            "Bad",
            {"empty", "lost"},
            frozenset({"+m", "timeout"}),
            {
                ("empty", "+m", "lost"),
                ("lost", "+m", "empty"),
                ("lost", "timeout", "empty"),
            },
            frozenset(),
            "empty",
        )
        report = lint_spec(bad)
        assert "CHAN101" in report.codes()

    def test_chan101_quiet_on_paper_lossy_channel(self):
        from repro.protocols.channels import ab_channel

        report = lint_spec(ab_channel(lossy=True), select=["CHAN"])
        assert not list(report)

    def test_chan102_quiet_on_correct_sharing(self):
        from repro.protocols.abp import ab_sender
        from repro.protocols.channels import ab_channel
        from repro.protocols.nonseq import ns_receiver

        report = lint_composition(
            [ab_sender(), ab_channel(lossy=True), ns_receiver()],
            select=["CHAN"],
        )
        assert not list(report)

    def test_chan102_fires_on_silent_timeout(self):
        from repro.faults import loss
        from repro.protocols.abp import ab_sender
        from repro.protocols.channels import ab_channel

        faulted = loss(ab_sender(), severity=1, timeout="timeoutX")
        report = lint_composition(
            [faulted, ab_channel(lossy=True)], select=["CHAN"]
        )
        assert "CHAN102" in report.codes()
        assert any("silent" in d.message for d in report)

    def test_chan102_fires_on_ambiguous_announcers(self):
        from repro.faults import loss
        from repro.protocols.channels import ab_channel
        from repro.protocols.nonseq import ns_receiver

        f2 = loss(ns_receiver(), severity=1, timeout="timeout")
        report = lint_composition(
            [ab_channel(lossy=True), f2], select=["CHAN"]
        )
        assert "CHAN102" in report.codes()
        assert any("multiple components" in d.message for d in report)
