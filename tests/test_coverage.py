"""Tests for converter coverage analysis."""

from repro.analysis import converter_coverage
from repro.protocols import colocated_scenario
from repro.quotient import solve_quotient
from repro.spec import SpecBuilder


def xy_setup():
    service = (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )
    component = (
        SpecBuilder("B")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "n", 3)
        .external(3, "y", 0)
        .initial(0)
        .build()
    )
    return service, component


class TestCoverage:
    def test_maximal_converter_has_unengaged_parts(self):
        service, component = xy_setup()
        result = solve_quotient(service, component)
        report = converter_coverage(component, result.converter)
        # the maximal machine includes vacuous states B never co-operates with
        assert report.unengaged_states
        assert report.state_coverage < 1.0
        assert 0 < report.transition_coverage < 1.0

    def test_essential_converter_fully_engaged(self):
        service, component = xy_setup()
        hand = (
            SpecBuilder("C").external(0, "m", 1).external(1, "n", 0).initial(0).build()
        )
        report = converter_coverage(component, hand)
        assert report.state_coverage == 1.0
        assert report.transition_coverage == 1.0
        assert not report.unengaged_states

    def test_fig14_superfluous_quantified(self):
        """The Fig. 14 dotted boxes, as numbers: most states engage but a
        large fraction of the maximal machine's transitions never fire."""
        scen = colocated_scenario()
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        report = converter_coverage(scen.composite, result.converter)
        assert report.transition_coverage < 0.6
        assert report.state_coverage > 0.5

    def test_describe_format(self):
        service, component = xy_setup()
        result = solve_quotient(service, component)
        text = converter_coverage(component, result.converter).describe()
        assert "states engaged" in text
        assert "%" in text

    def test_degenerate_empty_alphabet_converter(self):
        service = (
            SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
        )
        component = service.renamed("B")
        result = solve_quotient(service, component)
        report = converter_coverage(component, result.converter)
        assert report.state_coverage == 1.0
        assert report.total_transitions == 0
        assert report.transition_coverage == 0.0
