"""Resilience harness tests, pinned by golden matrix files.

The colocated scenario (Fig. 13, lossy channel) is the anchor: its
resilience matrix is stored as goldens in both renderings and must
reproduce **exactly** (the library promises deterministic exploration).
Regenerate after an intentional change with::

    PYTHONPATH=src python -m repro.cli resilience --scenario colocated \
        > tests/golden/resilience_colocated.txt
    PYTHONPATH=src python -m repro.cli resilience --scenario colocated \
        --format json > tests/golden/resilience_colocated.json

— and record the change in EXPERIMENTS.md.
"""

import json
from pathlib import Path

import pytest

from repro.compose import compose_many
from repro.errors import FaultModelError
from repro.faults import default_grid, evaluate_resilience, fault_model
from repro.protocols.abp import AB_TIMEOUT
from repro.protocols.configs import colocated_scenario
from repro.quotient import Budget, solve_quotient

GOLDEN = Path(__file__).resolve().parent / "golden"


@pytest.fixture(scope="module")
def scenario():
    return colocated_scenario()


@pytest.fixture(scope="module")
def converter(scenario):
    result = solve_quotient(
        scenario.service,
        scenario.composite,
        int_events=scenario.interface.int_events,
    )
    assert result.exists
    return result.converter


@pytest.fixture(scope="module")
def matrix(scenario, converter):
    return evaluate_resilience(
        scenario.service,
        scenario.components,
        converter,
        int_events=scenario.interface.int_events,
        timeout=AB_TIMEOUT,
    )


class TestGoldenMatrix:
    def test_text_rendering_exact(self, matrix):
        golden = (GOLDEN / "resilience_colocated.txt").read_text()
        assert matrix.render_text() + "\n" == golden

    def test_json_exact(self, matrix):
        golden = json.loads(
            (GOLDEN / "resilience_colocated.json").read_text()
        )
        ours = json.loads(
            json.dumps(matrix.to_json_dict(), indent=2, sort_keys=True)
        )
        assert ours == golden

    def test_grid_shape(self, matrix):
        kinds = {c.model.kind for c in matrix.cells}
        severities = {c.model.severity for c in matrix.cells}
        assert len(kinds) >= 4
        assert len(severities) >= 2

    def test_verdict_coverage(self, matrix):
        counts = matrix.counts()
        assert counts.get("tolerated", 0) >= 1
        assert counts.get("progress-broken", 0) >= 1
        assert counts.get("safety-broken", 0) >= 1
        assert counts.get("re-derivable", 0) >= 1

    def test_failure_cells_carry_counterexamples(self, matrix):
        for cell in matrix.cells:
            if cell.failure_phase is not None:
                assert cell.counterexample is not None, cell

    def test_loss_on_lossy_channel_is_tolerated(self, matrix):
        """The paper's own fault model is a fixed point: the colocated
        channel is already lossy, so loss@1 changes nothing."""
        assert matrix.cell("loss", 1).verdict == "tolerated"

    def test_silent_loss_breaks_progress(self, matrix):
        cell = matrix.cell("loss", 2)
        assert cell.verdict == "re-derivable"
        assert cell.failure_phase == "progress"
        assert cell.rederive_exists is True


class TestHarnessMechanics:
    def test_target_auto_resolves_to_channel(self, matrix):
        assert matrix.target == "Ach"

    def test_target_by_name_and_index(self, scenario, converter):
        grid = [fault_model("loss", 1, timeout=AB_TIMEOUT)]
        by_name = evaluate_resilience(
            scenario.service,
            scenario.components,
            converter,
            int_events=scenario.interface.int_events,
            target="Ach",
            grid=grid,
        )
        by_index = evaluate_resilience(
            scenario.service,
            scenario.components,
            converter,
            int_events=scenario.interface.int_events,
            target=1,
            grid=grid,
        )
        assert by_name.cells == by_index.cells

    def test_bad_target_rejected(self, scenario, converter):
        with pytest.raises(FaultModelError, match="no component named"):
            evaluate_resilience(
                scenario.service,
                scenario.components,
                converter,
                int_events=scenario.interface.int_events,
                target="nope",
            )

    def test_no_rederive_keeps_broken_verdicts(self, scenario, converter):
        grid = [fault_model("duplication", 1)]
        m = evaluate_resilience(
            scenario.service,
            scenario.components,
            converter,
            int_events=scenario.interface.int_events,
            rederive=False,
            grid=grid,
        )
        (cell,) = m.cells
        assert cell.verdict == "safety-broken"
        assert cell.rederive_attempted is False

    def test_inapplicable_fault_is_no_converter(self, scenario, converter):
        m = evaluate_resilience(
            scenario.service,
            scenario.components,
            converter,
            int_events=scenario.interface.int_events,
            target=0,  # the sender is not channel-shaped
            grid=[fault_model("reorder", 1)],
        )
        (cell,) = m.cells
        assert cell.verdict == "no-converter"
        assert "not applicable" in cell.detail

    def test_budget_interrupt_is_recorded(self, scenario, converter):
        m = evaluate_resilience(
            scenario.service,
            scenario.components,
            converter,
            int_events=scenario.interface.int_events,
            grid=[fault_model("duplication", 1)],
            budget=Budget(max_states=5),
        )
        (cell,) = m.cells
        assert cell.verdict == "no-converter"
        assert cell.budget_exceeded is not None
        assert cell.budget_exceeded["error"] == "budget-exceeded"

    def test_default_grid_covers_all_kinds(self):
        grid = default_grid((1, 2))
        assert len(grid) == 10
        assert {m.kind for m in grid} == {
            "loss",
            "duplication",
            "reorder",
            "corruption",
            "crash_restart",
        }


class TestRederivedConvertersAreReal:
    def test_rederived_converter_actually_works(self, scenario, converter):
        """A `re-derivable` verdict is not taken on faith: re-deriving for
        the faulted world and re-checking must succeed."""
        model = fault_model("duplication", 1)
        parts = list(scenario.components)
        parts[1] = model.apply(parts[1])
        composite = compose_many(parts, preflight=False)
        result = solve_quotient(
            scenario.service,
            composite,
            int_events=scenario.interface.int_events,
        )
        assert result.exists  # matches the matrix's re-derivable cell
        assert result.verification is not None
        assert result.verification.holds
