"""Unit tests for minimization."""

import pytest

from repro.errors import SpecError
from repro.spec import (
    SpecBuilder,
    determinize,
    minimize_bisimulation,
    minimize_deterministic,
    trace_equivalent,
    strongly_bisimilar,
)


def redundant_loop():
    """acc/del alternation unrolled twice: minimizes to 2 states."""
    return (
        SpecBuilder("m")
        .external(0, "acc", 1)
        .external(1, "del", 2)
        .external(2, "acc", 3)
        .external(3, "del", 0)
        .initial(0)
        .build()
    )


class TestMinimizeDeterministic:
    def test_collapses_redundant_unrolling(self):
        small = minimize_deterministic(redundant_loop())
        assert len(small.states) == 2
        assert trace_equivalent(small, redundant_loop())

    def test_idempotent(self):
        once = minimize_deterministic(redundant_loop())
        assert minimize_deterministic(once) == once

    def test_rejects_nondeterministic(self, lossy_hop):
        with pytest.raises(SpecError, match="deterministic"):
            minimize_deterministic(lossy_hop)

    def test_distinguishes_by_enabled_sets(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(1, "a", 2)
            .external(1, "b", 0)
            .external(2, "b", 0)
            .initial(0)
            .build()
        )
        small = minimize_deterministic(spec)
        # 0 (only a), 1 (a+b), 2 (only b) are pairwise distinguishable
        assert len(small.states) == 3

    def test_prunes_unreachable_first(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 0)
            .external(99, "a", 0)
            .initial(0)
            .build()
        )
        small = minimize_deterministic(spec)
        assert len(small.states) == 1

    def test_minimization_of_determinized_protocol(self, alternator):
        composed = determinize(alternator)
        assert len(minimize_deterministic(composed).states) == 2


class TestMinimizeBisimulation:
    def test_preserves_bisimilarity(self, lossy_hop):
        small = minimize_bisimulation(lossy_hop)
        assert strongly_bisimilar(small, lossy_hop)

    def test_collapses_bisimilar_states(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(0, "a", 2)
            .external(1, "b", 0)
            .external(2, "b", 0)
            .initial(0)
            .build()
        )
        small = minimize_bisimulation(spec)
        assert len(small.states) == 2

    def test_keeps_internal_structure(self, nondet_choice):
        small = minimize_bisimulation(nondet_choice)
        assert strongly_bisimilar(small, nondet_choice)
        assert small.internal  # hub/options survive (not bisimilar to each other)

    def test_idempotent_size(self, internal_cycle):
        once = minimize_bisimulation(internal_cycle)
        twice = minimize_bisimulation(once)
        assert len(once.states) == len(twice.states)

    def test_canonical_integer_labels(self, lossy_hop):
        small = minimize_bisimulation(lossy_hop)
        assert small.initial == 0
        assert all(isinstance(s, int) for s in small.states)
