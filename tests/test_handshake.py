"""Tests for the handshake conversion family (connection management)."""

import pytest

from repro.compose import compose
from repro.protocols import (
    handshake_scenario,
    lossy_handshake_scenario,
    threeway_server,
    twoway_client,
)
from repro.quotient import QuotientProblem, prune_converter, solve_quotient
from repro.satisfy import satisfies
from repro.traces import accepts


@pytest.fixture(scope="module")
def accept_first_result():
    scen = handshake_scenario(accept_first=True)
    return scen, solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


@pytest.fixture(scope="module")
def confirm_first_result():
    scen = handshake_scenario(accept_first=False)
    return scen, solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


class TestMachines:
    def test_client_cycle(self):
        client = twoway_client()
        assert accepts(client, ("open", "-CR", "+CC", "open"))
        assert not accepts(client, ("open", "open"))
        assert not accepts(client, ("-CR",))

    def test_server_variants_order_ready_differently(self):
        accept_first = threeway_server(accept_first=True)
        confirm_first = threeway_server(accept_first=False)
        assert accepts(accept_first, ("+cr", "ready", "-cc", "+ack"))
        assert not accepts(accept_first, ("+cr", "-cc"))
        assert accepts(confirm_first, ("+cr", "-cc", "+ack", "ready"))
        assert not accepts(confirm_first, ("+cr", "ready"))


class TestAcceptFirstConversion:
    def test_converter_exists_and_verifies(self, accept_first_result):
        scen, result = accept_first_result
        assert result.exists
        assert result.verification.holds

    def test_straightforward_relay_order_present(self, accept_first_result):
        """The maximal converter contains the obvious relay discipline:
        CR -> cr, then cc -> ack and CC (in either order)."""
        scen, result = accept_first_result
        c = result.converter
        assert accepts(c, ("+CR", "+cr", "-cc", "+ack", "-CC"))
        assert accepts(c, ("+CR", "+cr", "-cc", "-CC", "+ack"))

    def test_pruned_converter_small_and_correct(self, accept_first_result):
        scen, result = accept_first_result
        problem = QuotientProblem.build(scen.service, scen.composite)
        pruned = prune_converter(
            problem, result.converter, result.f, exhaustive=True
        )
        assert len(pruned.states) <= 6  # one relay cycle
        composite = compose(scen.composite, pruned)
        assert satisfies(composite, scen.service).holds


class TestConfirmFirstConversion:
    def test_converter_exists_via_pipelining(self, confirm_first_result):
        """The subtle result: although the converter never observes
        `ready`, it can pre-open the next server handshake and use the
        server's acceptance of a new `cr` as proof that `ready` was
        consumed."""
        scen, result = confirm_first_result
        assert result.exists
        assert result.verification.holds
        c = result.converter
        # the pipelined discipline: server handshake is opened before the
        # client's request is acknowledged
        assert accepts(c, ("+cr", "-cc", "+CR", "+ack"))

    def test_naive_discipline_is_not_present(self, confirm_first_result):
        """The straightforward relay order (confirm the client right after
        completing the server handshake) is unsafe and must be absent."""
        scen, result = confirm_first_result
        c = result.converter
        assert not accepts(c, ("+CR", "+cr", "-cc", "+ack", "-CC"))


class TestLossyHandshake:
    def test_no_converter_without_client_retransmission(self):
        scen = lossy_handshake_scenario(accept_first=True)
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        assert not result.exists
        # safety is achievable; the conflict is progress (a lost CR
        # strands the client)
        assert result.safety.exists

    def test_confirm_first_lossy_also_fails(self):
        scen = lossy_handshake_scenario(accept_first=False)
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        assert not result.exists


class TestOperationalValidation:
    def test_derived_converter_runs_live(self, accept_first_result):
        from repro.protocols import handshake_channel
        from repro.simulate import stress

        scen, result = accept_first_result
        components = [
            twoway_client(),
            handshake_channel(),
            threeway_server(accept_first=True),
            result.converter,
        ]
        report = stress(
            components, scen.service, seeds=range(4), steps=800
        )
        assert report.all_ok
        assert report.total_external("ready") > 0

    def test_pipelined_converter_runs_live(self, confirm_first_result):
        from repro.protocols import handshake_channel
        from repro.simulate import stress

        scen, result = confirm_first_result
        components = [
            twoway_client(),
            handshake_channel(),
            threeway_server(accept_first=False),
            result.converter,
        ]
        report = stress(
            components, scen.service, seeds=range(4), steps=800
        )
        assert report.all_ok
