"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import dump
from repro.protocols import alternating_service

DSL = """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end

spec badcomponent
    initial 0
    0 -> 1 : acc
    1 -> 1 : fwd
    event del
end
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "specs.dsl"
    path.write_text(DSL)
    return str(path)


class TestShow:
    def test_show_all(self, dsl_file, capsys):
        assert main(["show", dsl_file]) == 0
        out = capsys.readouterr().out
        assert "service" in out and "component" in out

    def test_show_named(self, dsl_file, capsys):
        assert main(["show", dsl_file, "service"]) == 0
        out = capsys.readouterr().out
        assert "service" in out and "badcomponent" not in out

    def test_show_dot(self, dsl_file, capsys):
        assert main(["show", dsl_file, "service", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_show_json_file(self, tmp_path, capsys):
        path = tmp_path / "svc.json"
        dump(alternating_service(), str(path))
        assert main(["show", str(path)]) == 0
        assert "acc" in capsys.readouterr().out

    def test_unknown_name_errors(self, dsl_file, capsys):
        assert main(["show", dsl_file, "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompose:
    def test_compose_two(self, dsl_file, capsys):
        assert main(["compose", dsl_file, "service", "component"]) == 0
        out = capsys.readouterr().out
        assert "states" in out


class TestCheck:
    def test_check_passing(self, dsl_file, capsys):
        # component's acc/del view with fwd hidden would satisfy; here we
        # check service against itself
        assert main(["check", dsl_file, "service", "service"]) == 0
        assert "YES" in capsys.readouterr().out

    def test_check_failing_exit_code(self, tmp_path, capsys):
        path = tmp_path / "x.dsl"
        path.write_text(
            "spec impl\n initial 0\n 0 -> 0 : del\n event acc\nend\n"
            "spec svc\n initial 0\n 0 -> 1 : acc\n 1 -> 0 : del\nend\n"
        )
        assert main(["check", str(path), "impl", "svc"]) == 1
        assert "NO" in capsys.readouterr().out


class TestSolve:
    def test_solve_success(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "component"]) == 0
        out = capsys.readouterr().out
        assert "converter" in out

    def test_solve_failure_exit_code(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "badcomponent"]) == 1
        assert "NO converter" in capsys.readouterr().out

    def test_solve_with_pairs(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "component", "--pairs"]) == 0
        assert "state annotations" in capsys.readouterr().out

    def test_solve_dot_output(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "component", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestCheckpointFlags:
    def _json(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_budget_trip_without_checkpoint_is_exit_3(self, dsl_file, capsys):
        code = main([
            "solve", dsl_file, "service", "component", "--budget-pairs", "3",
        ])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().out

    def test_interrupted_solve_resumes_identically(
        self, dsl_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "run.ckpt")
        code = main([
            "solve", dsl_file, "service", "component",
            "--budget-pairs", "3", "--checkpoint", ckpt, "--format", "json",
        ])
        assert code == 4  # checkpoint written
        partial = self._json(capsys)
        assert partial["guarantees"] == "partial"
        assert partial["checkpoint"] == ckpt
        assert partial["anytime"]["guarantees"] == "partial"

        code = main([
            "solve", dsl_file, "service", "component",
            "--checkpoint", ckpt, "--resume", "--format", "json",
        ])
        assert code == 0
        resumed = self._json(capsys)
        assert main([
            "solve", dsl_file, "service", "component", "--format", "json",
        ]) == 0
        assert resumed == self._json(capsys)

    def test_resume_requires_checkpoint(self, dsl_file, capsys):
        assert main(["solve", dsl_file, "service", "component", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_stale_checkpoint_is_a_lint_error(self, dsl_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        assert main([
            "solve", dsl_file, "service", "component",
            "--budget-pairs", "3", "--checkpoint", ckpt,
        ]) == 4
        code = main([
            "solve", dsl_file, "service", "badcomponent",
            "--checkpoint", ckpt, "--resume",
        ])
        assert code == 2
        assert "QUOT104" in capsys.readouterr().err

    def test_resilience_checkpoint_and_resume(self, dsl_file, tmp_path, capsys):
        ckpt = str(tmp_path / "sweep.ckpt")
        base = ["resilience", dsl_file, "service", "component",
                "--target", "0", "--format", "json"]
        assert main(base + ["--checkpoint", ckpt]) == 0
        first = self._json(capsys)
        assert main(base + ["--checkpoint", ckpt, "--resume"]) == 0
        assert self._json(capsys) == first


class TestDemo:
    def test_demo_colocated(self, capsys):
        assert main(["demo", "colocated"]) == 0
        out = capsys.readouterr().out
        assert "co-located" in out and "converter" in out

    def test_demo_symmetric(self, capsys):
        assert main(["demo", "symmetric"]) == 1
        out = capsys.readouterr().out
        assert "NO converter" in out


class TestDiagnose:
    def test_diagnose_nonexistence(self, tmp_path, capsys):
        path = tmp_path / "d.dsl"
        path.write_text(
            "spec svc\n initial 0\n 0 -> 1 : x\n 1 -> 0 : y\nend\n"
            "spec comp\n initial 0\n 0 -> 1 : x\n 1 -> 1 : m\n event y\nend\n"
        )
        assert main(["diagnose", str(path), "svc", "comp"]) == 1
        out = capsys.readouterr().out
        assert "point(s) of no return" in out

    def test_diagnose_when_converter_exists(self, dsl_file, capsys):
        assert main(["diagnose", dsl_file, "service", "component"]) == 0
        assert "nothing to diagnose" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_with_monitor(self, dsl_file, capsys):
        code = main([
            "simulate", dsl_file, "component",
            "--service", "service", "--steps", "30", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "monitor OK" in out
        assert "ran" in out

    def test_simulate_msc_output(self, dsl_file, capsys):
        assert main([
            "simulate", dsl_file, "component", "--steps", "10", "--msc", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "component" in out  # lane header
        assert "×" in out          # histogram
