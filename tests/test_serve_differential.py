"""Differential acceptance tests for the derivation server.

The serving contract: no matter *how* a job executed — fresh, retried
after a transient fault, resumed after a worker death, replayed from a
cache hit, or drained sequentially in degraded mode — its result body is
byte-identical to a direct :func:`~repro.quotient.solve_quotient` call
on the same inputs.  These tests sweep that claim over dozens of random
instances under several distinct ``REPRO_CHAOS`` schedules, and pin the
overload/drain story end to end (bounded queue, deterministic
backpressure, SIGTERM mid-load, restart-and-resume: an accepted job is
never lost).
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro import obs
from repro.chaos import ChaosPlan, use_chaos
from repro.errors import ServeError
from repro.io.json_codec import spec_to_dict
from repro.obs.core import ThreadSafeCollector
from repro.quotient.solve import solve_quotient
from repro.serve import (
    DerivationServer,
    JobRequest,
    ResultStore,
    ServeClient,
    WorkerSupervisor,
)
from repro.spec import random_quotient_instance

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def solve_doc(seed: int, **extra) -> dict:
    service, component, internal, _ = random_quotient_instance(seed=seed)
    doc = {
        "kind": "solve",
        "payload": {
            "service": spec_to_dict(service),
            "component": spec_to_dict(component),
            "int_events": sorted(internal),
        },
    }
    doc.update(extra)
    return doc


@functools.lru_cache(maxsize=None)
def canonical(seed: int) -> str:
    """The canonical JSON body of a direct, unserved solve."""
    service, component, internal, _ = random_quotient_instance(seed=seed)
    result = solve_quotient(service, component, int_events=internal)
    body = result.to_json_dict()
    body.pop("stats", None)
    body.pop("degradations", None)
    return json.dumps(body, sort_keys=True)


def served(outcome) -> str:
    assert outcome.state == "done", outcome.error
    return json.dumps(outcome.body, sort_keys=True)


#: Distinct fault schedules the byte-identity sweep runs under.  Each
#: targets the serve execution path a different way; the torn-store one
#: attacks the persistence layer underneath it instead.
SCHEDULES = {
    "kills": ChaosPlan(seed=101, p_kill=0.65, sites=("serve.job",)),
    "hangs": ChaosPlan(seed=202, p_hang=0.55, sites=("serve.job",)),
    "raises": ChaosPlan(seed=303, p_raise=0.7, sites=("serve.job",)),
    "mixed": ChaosPlan(
        seed=404, p_kill=0.35, p_hang=0.2, p_raise=0.3,
        sites=("serve.job",),
    ),
    "torn-store": ChaosPlan(
        seed=505, p_write_partial=0.3, sites=("store.write",)
    ),
}

#: Instance seeds each schedule sweeps (5 schedules x 13 = 65 problems).
SWEEP_SEEDS = tuple(range(60, 73))


@pytest.mark.parametrize("name", sorted(SCHEDULES))
def test_served_solves_are_byte_identical_under_chaos(name, tmp_path):
    plan = SCHEDULES[name]
    collector = ThreadSafeCollector()
    supervisor = WorkerSupervisor(
        respawn_budget=10_000, sleep=lambda s: None, kill_charge_span=4
    )
    with obs.use_collector(collector), use_chaos(plan):
        for seed in SWEEP_SEEDS:
            store = ResultStore(str(tmp_path / name / str(seed)))
            request = JobRequest.from_json_dict(solve_doc(seed))
            outcome = supervisor.run_job(request, store)
            assert served(outcome) == canonical(seed), (
                f"schedule {name}, instance seed {seed}: served body "
                f"diverged from the direct solve"
            )
            # the torn-store schedule attacks the cache layer instead:
            # a torn result write must read back as a miss (recompute
            # and rewrite), never as a wrong answer
            fingerprint = request.fingerprint()

            def cache_roundtrip():
                store.put_result(
                    fingerprint, kind="solve", label="",
                    spec_fingerprints=[], body=outcome.body,
                    verdict=outcome.verdict,
                )
                return store.get_result(fingerprint)

            cached = cache_roundtrip()
            rewrites = 0
            while cached is None:
                rewrites += 1
                assert rewrites <= 10, "cache never became readable"
                cached = cache_roundtrip()
            assert (json.dumps(cached["result"], sort_keys=True)
                    == canonical(seed))
    # non-vacuity: the schedule actually injected faults ...
    injected = {
        k: v for k, v in collector.counters.items()
        if k.startswith("chaos.injected.")
    }
    assert sum(injected.values()) > 0, f"schedule {name} injected nothing"
    # ... and the recovery machinery it targets actually engaged
    if name in ("kills", "hangs", "mixed"):
        assert supervisor.worker_deaths > 0
        assert collector.counters["serve.jobs.resumed"] > 0
    if name in ("raises", "mixed"):
        assert collector.counters["retry.recoveries"] > 0
    assert collector.counters["serve.jobs.completed"] == len(SWEEP_SEEDS)


def test_cache_hit_and_joined_submissions_are_byte_identical(tmp_path):
    server = DerivationServer(str(tmp_path / "store"), capacity=8)
    for seed in SWEEP_SEEDS[:6]:
        doc = solve_doc(seed)
        status, first = server._submit(doc)
        assert status == 202
        # a twin submitted while the first is in flight joins it
        status, twin = server._submit(doc)
        assert status == 202 and twin["joined"]
        assert twin["job"]["job_id"] == first["job"]["job_id"]
        server._run_one(first["job"]["job_id"])
        server._finalize(first["job"]["job_id"])
        # a resubmission after completion is a cache hit, byte-identical
        status, hit = server._submit(doc)
        assert status == 200 and hit["job"]["cache"] == "hit"
        assert json.dumps(hit["result"], sort_keys=True) == canonical(seed)


def test_degraded_drain_is_byte_identical(tmp_path):
    """Respawn exhaustion degrades execution, never the answer."""
    plan = ChaosPlan(seed=7, kill_at=(0,), sites=("serve.job",))
    store = ResultStore(str(tmp_path))
    # span 1: the kill always lands at the first charge boundary
    supervisor = WorkerSupervisor(
        respawn_budget=0, sleep=lambda s: None, kill_charge_span=1
    )
    with use_chaos(plan):
        for position, seed in enumerate(SWEEP_SEEDS[:6]):
            outcome = supervisor.run_job(
                JobRequest.from_json_dict(solve_doc(seed)), store
            )
            assert served(outcome) == canonical(seed)
            assert outcome.degradations, (
                "degraded executions must say so in the record"
            )
            if position == 0:
                assert outcome.worker_deaths == 1
    assert supervisor.degraded


def test_resume_checkpoint_crosses_server_lives(tmp_path):
    """A drain-interrupted job finishes byte-identically after restart."""
    from repro.persist import InterruptController
    from repro.serve.workers import DRAIN_REASON

    store = ResultStore(str(tmp_path))
    request = JobRequest.from_json_dict(solve_doc(seed=73))
    drain = InterruptController()
    drain.request(DRAIN_REASON)
    first_life = WorkerSupervisor(sleep=lambda s: None)
    parked = first_life.run_job(request, store, drain=drain)
    assert parked.state == "interrupted" and parked.checkpointed
    # "restart": a brand-new supervisor over the same durable store
    second_life = WorkerSupervisor(sleep=lambda s: None)
    outcome = second_life.run_job(request, store)
    assert outcome.resumed
    assert served(outcome) == canonical(73)


class TestOverload:
    """Bounded admission under load: deterministic, lossless."""

    def test_backpressure_is_deterministic(self, tmp_path):
        server = DerivationServer(str(tmp_path / "store"), capacity=3)
        accepted = [
            server._submit(solve_doc(seed))[1]["job"]["job_id"]
            for seed in (80, 81, 82)
        ]
        # queue full, equal priority: deterministic 429 + retry hint
        for attempt in range(2):
            with pytest.raises(ServeError) as info:
                server._submit(solve_doc(seed=83 + attempt))
            assert info.value.status == 429
        assert server.queue.retry_after() == pytest.approx(0.05 * 4)
        # a higher-priority submission sheds the youngest lowest instead
        status, vip = server._submit(solve_doc(seed=85, priority=9))
        assert status == 202
        shed = server._records[accepted[-1]]
        assert shed["state"] == "shed" and "resubmit" in shed["error"]
        # every accepted job is accounted for: still queued, or shed
        # with a structured, persisted answer — nothing vanished
        states = {
            job_id: server.store.load_job(job_id)["state"]
            for job_id in accepted + [vip["job"]["job_id"]]
        }
        assert sorted(states.values()) == ["queued", "queued", "queued",
                                           "shed"]

    def test_lossless_under_http_load(self, tmp_path):
        """Real async load past capacity, end to end.

        Every submission gets a structured answer — 202 accepted or 429
        with a retry hint — and every *accepted* job completes with a
        body byte-identical to the direct solve.  (How many 429s occur
        depends on worker timing; the deterministic count is pinned by
        ``test_backpressure_is_deterministic`` above.)
        """
        server = DerivationServer(
            str(tmp_path / "store"), capacity=2, workers=1
        )
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                server.run(ready=lambda s: ready.set())
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(10)
        client = ServeClient("127.0.0.1", server.port)
        try:
            accepted = {}
            for seed in range(86, 94):
                status, doc = client.submit(solve_doc(seed))
                assert status in (202, 429)
                if status == 429:
                    assert doc["retry_after_s"] > 0
                else:
                    accepted[seed] = doc["job"]["job_id"]
            assert accepted, "nothing was admitted"
            for seed, job_id in accepted.items():
                final = client.wait(job_id, timeout_s=120)
                assert final["job"]["state"] == "done", final["job"]
                assert (json.dumps(final["result"], sort_keys=True)
                        == canonical(seed))
        finally:
            try:
                client.shutdown()
            except (ServeError, OSError):
                pass
            thread.join(30)


def test_sigterm_under_load_then_restart_resumes_all(tmp_path):
    """Kill a loaded server with SIGTERM; a restart finishes every job.

    The acceptance scenario end to end: a real ``repro serve`` process,
    real signal delivery, more submissions than workers, then a second
    server life over the same durable store.  Every accepted job must
    reach ``done`` with a body byte-identical to the direct solve.
    """
    store_root = str(tmp_path / "store")
    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_CHAOS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--store", store_root,
         "--port", "0", "--capacity", "16", "--workers", "1"],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    try:
        serving = json.loads(proc.stdout.readline())
        client = ServeClient("127.0.0.1", serving["serving"]["port"])
        seeds = (91, 92, 93, 94, 95, 96, 97)
        job_ids = {}
        for seed in seeds:
            status, doc = client.submit(solve_doc(seed))
            assert status == 202
            job_ids[seed] = doc["job"]["job_id"]
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert json.loads(stdout.splitlines()[-1]) == {"drained": True}
    # the drained store accounts for every accepted job: done already,
    # or parked in a recoverable state — none lost
    store = ResultStore(store_root)
    first_life = {
        seed: store.load_job(job_id)["state"]
        for seed, job_id in job_ids.items()
    }
    assert set(first_life.values()) <= {
        "done", "queued", "running", "interrupted"
    }
    unfinished = [s for s in first_life.values() if s != "done"]
    assert unfinished, "SIGTERM landed after all jobs finished; no drain " \
        "was exercised — raise the load"
    # the drain flushed ledger records for whatever did complete
    # second life: in-process server over the same store
    server = DerivationServer(store_root, capacity=16, workers=2)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run(ready=lambda s: ready.set())),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10)
    client = ServeClient("127.0.0.1", server.port)
    try:
        assert server.collector is not None
        for seed, job_id in job_ids.items():
            final = client.wait(job_id, timeout_s=120)
            assert final["job"]["state"] == "done", final["job"]
            assert (json.dumps(final["result"], sort_keys=True)
                    == canonical(seed))
        recovered = server.collector.snapshot().counters[
            "serve.jobs.recovered"
        ]
        assert recovered == len(unfinished)
        # interrupted jobs resumed from their checkpoints
        interrupted = [
            seed for seed, state in first_life.items()
            if state in ("running", "interrupted")
        ]
        for seed in interrupted:
            record = client.job(job_ids[seed])["job"]
            if first_life[seed] == "interrupted":
                assert record["resumed"]
    finally:
        try:
            client.shutdown()
        except (ServeError, OSError):
            pass
        thread.join(30)
    # the ledger saw every completed job across both lives
    from repro.obs.ledger import Ledger

    records = Ledger(store.ledger_path).read()
    served_fingerprints = {
        r.fingerprint for r in records if r.kind == "served"
    }
    for seed, job_id in job_ids.items():
        assert store.load_job(job_id)["fingerprint"] in served_fingerprints
