"""Unit tests for converter pruning (the Fig. 14 'superfluous portions')."""

from repro.compose import compose
from repro.quotient import (
    QuotientProblem,
    drop_vacuous_states,
    merge_equivalent_states,
    minimize_converter,
    prune_converter,
    solve_quotient,
)
from repro.satisfy import satisfies
from repro.spec import SpecBuilder


def xy_service():
    return (
        SpecBuilder("A").external(0, "x", 1).external(1, "y", 0).initial(0).build()
    )


def relay_component():
    return (
        SpecBuilder("B")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "n", 3)
        .external(3, "y", 0)
        .initial(0)
        .build()
    )


def solved():
    return solve_quotient(xy_service(), relay_component())


class TestDropVacuous:
    def test_removes_pair_empty_states(self):
        result = solved()
        before = len(result.converter.states)
        pruned = drop_vacuous_states(result.converter, result.f)
        assert len(pruned.states) < before
        assert all(result.f[s] for s in pruned.states)

    def test_never_removes_initial(self):
        result = solved()
        pruned = drop_vacuous_states(result.converter, result.f)
        assert pruned.initial == result.converter.initial

    def test_composite_behaviour_unchanged(self):
        result = solved()
        pruned = drop_vacuous_states(result.converter, result.f)
        report = satisfies(
            compose(relay_component(), pruned), xy_service()
        )
        assert report.holds

    def test_noop_when_no_vacuous(self):
        spec = SpecBuilder("C").external(0, "m", 1).external(1, "n", 0).initial(0).build()
        f = {0: frozenset({(0, 0)}), 1: frozenset({(1, 1)})}
        assert drop_vacuous_states(spec, f) is spec


class TestMergeEquivalent:
    def test_merge_preserves_traces(self):
        result = solved()
        merged = merge_equivalent_states(result.converter)
        from repro.spec import trace_equivalent

        assert trace_equivalent(merged, result.converter)
        assert len(merged.states) <= len(result.converter.states)


class TestMinimizeConverter:
    def test_result_still_correct(self):
        result = solved()
        problem = QuotientProblem.build(xy_service(), relay_component())
        minimal = minimize_converter(problem, result.converter)
        report = satisfies(compose(relay_component(), minimal), xy_service())
        assert report.holds

    def test_result_is_deletion_minimal(self):
        """No further single-state deletion preserves correctness."""
        from repro.spec import prune_unreachable, remove_states

        problem = QuotientProblem.build(xy_service(), relay_component())
        result = solved()
        minimal = minimize_converter(problem, result.converter)
        for state in minimal.states:
            if state == minimal.initial:
                continue
            candidate = prune_unreachable(remove_states(minimal, [state]))
            if len(candidate.states) == len(minimal.states):
                continue  # state was needed for reachability bookkeeping
            report = satisfies(
                compose(relay_component(), candidate), xy_service()
            )
            assert not report.holds, f"removing {state!r} kept correctness"

    def test_smaller_than_maximal(self):
        problem = QuotientProblem.build(xy_service(), relay_component())
        result = solved()
        minimal = minimize_converter(problem, result.converter)
        assert len(minimal.states) <= len(result.converter.states)


class TestPruneConverterPipeline:
    def test_pipeline_verifies_and_shrinks(self):
        result = solved()
        problem = QuotientProblem.build(xy_service(), relay_component())
        pruned = prune_converter(problem, result.converter, result.f)
        assert len(pruned.states) <= len(result.converter.states)
        report = satisfies(compose(relay_component(), pruned), xy_service())
        assert report.holds

    def test_exhaustive_pipeline(self):
        result = solved()
        problem = QuotientProblem.build(xy_service(), relay_component())
        pruned = prune_converter(
            problem, result.converter, result.f, exhaustive=True
        )
        # the relay's essential converter is the 2-state m/n alternator
        assert len(pruned.states) == 2
