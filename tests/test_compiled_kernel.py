"""Differential tests for the compiled integer-indexed kernel.

The kernel (:mod:`repro.spec.compiled` plus the integer hot paths in
compose/quotient/satisfy) must be *observationally identical* to the
reference labeled-state implementations — same specifications, same
counterexamples, same work counters.  Every test here compares the two
paths on the same inputs, with the reference obtained under
``use_kernel(False)``.

Coverage:

* compose / synchronous product on random spec pairs;
* ``solve_quotient`` end to end on random quotient instances (existence,
  converter, ``f`` maps, phase records);
* ``satisfies_safety`` / ``satisfies_progress`` (verdict, counterexample /
  violation, pairs explored);
* the whole-spec graph analyses (λ*, τ*, sinks, acceptance menus, ψ)
  against their reference computations;
* compile-cache behaviour (LRU bound, structural sharing, obs counters);
* byte-identical regeneration of the committed SEC7 benchmark reports.

Hypothesis example counts across the differential tests sum to well over
200 random problems.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.compose import compose
from repro.quotient import solve_quotient
from repro.satisfy import satisfies_progress, satisfies_safety
from repro.spec import (
    CompiledSpec,
    Specification,
    compiled,
    compiled_cache_clear,
    compiled_cache_info,
    kernel_enabled,
    lambda_closure,
    prune_unreachable,
    psi_step,
    random_deterministic_service,
    random_quotient_instance,
    random_spec,
    sink_acceptance_sets,
    sink_sets,
    tau_star,
    use_kernel,
)
from repro.spec.compiled import CACHE_MAXSIZE, iter_bits

REPO = Path(__file__).resolve().parent.parent

SEEDS = st.integers(min_value=0, max_value=10_000)
SIZES = st.integers(min_value=1, max_value=8)
EVENTS = ["a", "b", "c"]


def _outcome(fn):
    """A comparable fingerprint of a call: its value, or its exception."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 — both paths must fail alike
        return ("raise", type(exc).__name__, str(exc))


def _sub_implementation(
    service: Specification, seed: int, *, with_lambda: bool = False
) -> Specification:
    """A random sub-machine of *service* (traces ⊆ the service's traces).

    With ``with_lambda`` some λ edges are sprinkled in as well, which may
    break safety — useful for exercising the failure paths identically.
    """
    rng = random.Random(seed)
    kept = [t for t in sorted(service.external) if rng.random() < 0.75]
    internal: list[tuple[object, object]] = []
    if with_lambda:
        states = sorted(service.states)
        for s in states:
            for s2 in states:
                if s != s2 and rng.random() < 0.08:
                    internal.append((s, s2))
    return prune_unreachable(
        Specification(
            "impl",
            service.states,
            service.alphabet,
            kept,
            internal,
            service.initial,
        )
    )


# ----------------------------------------------------------------------
# differential: composition
# ----------------------------------------------------------------------
class TestComposeDifferential:
    @settings(max_examples=60, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_compose_matches_reference(self, seed, size):
        left = random_spec(n_states=size, events=["a", "b"], seed=seed)
        right = random_spec(n_states=size + 1, events=["b", "c"], seed=seed + 1)
        for reachable_only in (True, False):
            with use_kernel(True):
                fast = compose(left, right, reachable_only=reachable_only)
            with use_kernel(False):
                slow = compose(left, right, reachable_only=reachable_only)
            assert fast == slow
            assert fast.initial == slow.initial
            assert fast.alphabet == slow.alphabet

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_compose_disjoint_alphabets(self, seed, size):
        left = random_spec(n_states=size, events=["a"], seed=seed)
        right = random_spec(n_states=size, events=["b"], seed=seed + 1)
        with use_kernel(True):
            fast = compose(left, right)
        with use_kernel(False):
            slow = compose(left, right)
        assert fast == slow


# ----------------------------------------------------------------------
# differential: the quotient solver end to end
# ----------------------------------------------------------------------
def _quotient_fingerprint(result):
    return (
        result.exists,
        result.converter,
        result.f,
        result.c0,
        result.c0_f,
        None if result.safety is None else (
            result.safety.exists,
            result.safety.spec,
            result.safety.f,
            result.safety.explored,
            result.safety.rejected,
        ),
        None if result.progress is None else (
            result.progress.exists,
            result.progress.spec,
            result.progress.rounds,
        ),
    )


class TestQuotientDifferential:
    @settings(max_examples=60, deadline=None)
    @given(seed=SEEDS)
    def test_solve_quotient_matches_reference(self, seed):
        service, component, int_events, _ = random_quotient_instance(seed=seed)
        with use_kernel(True):
            fast = _outcome(
                lambda: _quotient_fingerprint(
                    solve_quotient(service, component, int_events=int_events)
                )
            )
        with use_kernel(False):
            slow = _outcome(
                lambda: _quotient_fingerprint(
                    solve_quotient(service, component, int_events=int_events)
                )
            )
        assert fast == slow

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, n_component=st.integers(min_value=2, max_value=8))
    def test_larger_components_match(self, seed, n_component):
        service, component, int_events, _ = random_quotient_instance(
            seed=seed, n_component=n_component, n_int_events=2
        )
        with use_kernel(True):
            fast = _outcome(
                lambda: _quotient_fingerprint(
                    solve_quotient(service, component, int_events=int_events)
                )
            )
        with use_kernel(False):
            slow = _outcome(
                lambda: _quotient_fingerprint(
                    solve_quotient(service, component, int_events=int_events)
                )
            )
        assert fast == slow


# ----------------------------------------------------------------------
# differential: satisfaction checking
# ----------------------------------------------------------------------
class TestSatisfyDifferential:
    @settings(max_examples=50, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_safety_matches_reference(self, seed, size):
        service = random_deterministic_service(
            n_states=size, events=EVENTS, seed=seed
        )
        impl = random_spec(n_states=size + 2, events=EVENTS, seed=seed + 1)
        with use_kernel(True):
            fast = satisfies_safety(impl, service)
        with use_kernel(False):
            slow = satisfies_safety(impl, service)
        assert fast.holds == slow.holds
        assert fast.counterexample == slow.counterexample
        assert fast.pairs_explored == slow.pairs_explored

    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_progress_matches_reference(self, seed, size):
        service = random_deterministic_service(
            n_states=size, events=EVENTS, seed=seed
        )
        impl = _sub_implementation(service, seed + 1)
        with use_kernel(True):
            fast = _outcome(lambda: satisfies_progress(impl, service))
        with use_kernel(False):
            slow = _outcome(lambda: satisfies_progress(impl, service))
        assert fast == slow

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_progress_with_internal_steps_matches(self, seed, size):
        service = random_deterministic_service(
            n_states=size, events=EVENTS, seed=seed
        )
        impl = _sub_implementation(service, seed + 1, with_lambda=True)
        with use_kernel(True):
            fast = _outcome(lambda: satisfies_progress(impl, service))
        with use_kernel(False):
            slow = _outcome(lambda: satisfies_progress(impl, service))
        assert fast == slow


# ----------------------------------------------------------------------
# differential: whole-spec graph analyses
# ----------------------------------------------------------------------
class TestAnalysesDifferential:
    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_lambda_closure_and_tau_star_dispatch(self, seed, size):
        spec = random_spec(
            n_states=size, events=EVENTS, internal_density=0.25, seed=seed
        )
        with use_kernel(True):
            fast_closure = lambda_closure(spec)
            fast_tau = tau_star(spec)
        with use_kernel(False):
            slow_closure = lambda_closure(spec)
            slow_tau = tau_star(spec)
        assert fast_closure == slow_closure
        assert fast_tau == slow_tau

    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_compiled_analyses_decode_to_reference(self, seed, size):
        spec = random_spec(
            n_states=size, events=EVENTS, internal_density=0.3, seed=seed
        )
        cs = compiled(spec)
        with use_kernel(False):
            ref_closure = lambda_closure(spec)
            ref_tau = tau_star(spec)
            ref_sinks = sink_sets(spec)
        closure_masks = cs.closure_masks()
        tau_masks = cs.tau_star_masks()
        for i, s in enumerate(cs.states):
            assert cs.decode_state_mask(closure_masks[i]) == ref_closure[s]
            assert cs.decode_event_mask(tau_masks[i]) == ref_tau[s]
        menu = cs.sink_menu()
        assert [cs.decode_state_mask(m) for m, _ in menu] == ref_sinks
        for i, s in enumerate(cs.states):
            decoded = [
                cs.decode_event_mask(a) for a in cs.acceptance_menus()[i]
            ]
            assert decoded == sink_acceptance_sets(spec, s)

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, size=SIZES)
    def test_psi_table_matches_psi_step(self, seed, size):
        service = random_deterministic_service(
            n_states=size, events=EVENTS, seed=seed
        )
        cs = compiled(service)
        psi = cs.psi_table()
        for i, s in enumerate(cs.states):
            for j, e in enumerate(cs.events):
                expected = psi_step(service, s, e)
                got = None if psi[i][j] < 0 else cs.states[psi[i][j]]
                assert got == expected


# ----------------------------------------------------------------------
# compiled representation invariants
# ----------------------------------------------------------------------
class TestCompiledSpec:
    def test_interning_orders(self):
        spec = random_spec(n_states=6, events=["b", "a", "c"], seed=3)
        cs = compiled(spec)
        assert list(cs.events) == sorted(spec.alphabet)
        assert cs.states == tuple(spec.sorted_by_rank(spec.states))
        assert cs.states[cs.initial] == spec.initial
        for i, s in enumerate(cs.states):
            assert cs.decode_event_mask(cs.enabled_mask[i]) == spec.enabled(s)
            for eid, targets in cs.ext_moves[i]:
                assert {cs.states[t] for t in targets} == spec.successors(
                    s, cs.events[eid]
                )
            assert {cs.states[t] for t in cs.int_succ[i]} == set(
                spec.internal_successors(s)
            )

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_encode_decode_roundtrip(self):
        spec = random_spec(n_states=4, events=EVENTS, seed=9)
        cs = compiled(spec)
        mask = cs.encode_events(["c", "a"])
        assert sorted(cs.decode_event_mask(mask)) == ["a", "c"]


# ----------------------------------------------------------------------
# the compile cache
# ----------------------------------------------------------------------
class TestCompileCache:
    def test_hit_miss_counters(self):
        spec = random_spec(n_states=5, events=EVENTS, seed=11)
        # clear *after* construction: building the spec already compiles it
        # (prune_unreachable's reachability walk runs on the kernel)
        compiled_cache_clear()
        with obs.use_collector(obs.MetricsCollector()) as collector:
            first = compiled(spec)
            second = compiled(spec)
        assert first is second
        counters = collector.snapshot().counters
        assert counters["kernel.compile_calls"] == 1
        assert counters["kernel.cache_misses"] == 1
        assert counters["kernel.cache_hits"] == 1

    def test_structurally_equal_specs_share_compiled_form(self):
        compiled_cache_clear()
        a = random_spec(n_states=5, events=EVENTS, seed=12, name="first")
        b = random_spec(n_states=5, events=EVENTS, seed=12, name="second")
        assert a == b  # names do not participate in equality
        assert compiled(a) is compiled(b)

    def test_lru_bound_is_enforced(self):
        compiled_cache_clear()
        for seed in range(CACHE_MAXSIZE + 5):
            compiled(random_spec(n_states=2, events=["a"], seed=seed))
        info = compiled_cache_info()
        assert info["size"] <= info["maxsize"] == CACHE_MAXSIZE

    def test_use_kernel_toggles_and_restores(self):
        before = kernel_enabled()
        with use_kernel(False):
            assert not kernel_enabled()
            with use_kernel(True):
                assert kernel_enabled()
            assert not kernel_enabled()
        assert kernel_enabled() == before

    def test_compiled_spec_exported(self):
        spec = random_spec(n_states=3, events=["a"], seed=0)
        assert isinstance(compiled(spec), CompiledSpec)


# ----------------------------------------------------------------------
# golden reports: the kernel must not change committed benchmark text
# ----------------------------------------------------------------------
class TestGoldenReports:
    def test_sec7_reports_byte_identical(self, tmp_path):
        """Regenerating the SEC7 sweeps (kernel on, the default) must
        reproduce the committed text reports byte for byte."""
        bench = REPO / "benchmarks" / "bench_sec7_complexity.py"
        env = dict(os.environ)
        env["REPRO_BENCH_OUT"] = str(tmp_path / "out")
        env["REPRO_BENCH_JSON"] = str(tmp_path / "BENCH_quotient.json")
        src = str(REPO / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "no:cacheprovider",
                str(bench),
                "-k",
                "exponential or polynomial",
            ],
            env=env,
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        for name in ("SEC7-safety.txt", "SEC7-progress.txt"):
            fresh = (tmp_path / "out" / name).read_bytes()
            committed = (REPO / "benchmarks" / "out" / name).read_bytes()
            assert fresh == committed, f"{name} drifted from committed report"


# ----------------------------------------------------------------------
# differential: budgeted solving
# ----------------------------------------------------------------------
class TestBudgetDifferential:
    """Count-limited budgets must trip at the same unit of work on both
    paths (same phase, same limit, same partial counts) — and a budget
    that is not hit must leave the result byte-identical to an
    unbudgeted solve.  The fingerprint is structural: ``elapsed_s`` is
    machine-dependent and excluded."""

    @staticmethod
    def _budgeted_fingerprint(service, component, int_events, budget):
        from repro.errors import BudgetExceeded

        try:
            return (
                "ok",
                _quotient_fingerprint(
                    solve_quotient(
                        service,
                        component,
                        int_events=int_events,
                        budget=budget,
                    )
                ),
            )
        except BudgetExceeded as exc:
            return (
                "budget",
                exc.phase,
                exc.limit,
                exc.partial["pairs"],
                exc.partial["states"],
            )
        except Exception as exc:  # noqa: BLE001 — both paths must fail alike
            return ("raise", type(exc).__name__, str(exc))

    @settings(max_examples=50, deadline=None)
    @given(
        seed=SEEDS,
        limit=st.integers(min_value=1, max_value=40),
        kind=st.sampled_from(["max_pairs", "max_states"]),
    )
    def test_budget_trips_identically_on_both_paths(self, seed, limit, kind):
        from repro.quotient import Budget

        service, component, int_events, _ = random_quotient_instance(seed=seed)
        budget = Budget(**{kind: limit})
        with use_kernel(True):
            fast = self._budgeted_fingerprint(
                service, component, int_events, budget
            )
        with use_kernel(False):
            slow = self._budgeted_fingerprint(
                service, component, int_events, budget
            )
        assert fast == slow
        if fast[0] == "ok":
            with use_kernel(True):
                plain = _quotient_fingerprint(
                    solve_quotient(service, component, int_events=int_events)
                )
            assert fast[1] == plain
