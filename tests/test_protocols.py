"""Unit tests for the protocol library (Figs. 7, 8, 10, 11)."""

import pytest

from repro.errors import SpecError
from repro.events import Alphabet
from repro.protocols import (
    AB_TIMEOUT,
    NS_TIMEOUT,
    ab_channel,
    ab_protocol_events,
    ab_receiver,
    ab_sender,
    alternating_service,
    at_least_once_service,
    at_least_once_service_strict,
    choice_service,
    lossy_duplex_channel,
    ns_channel,
    ns_protocol_events,
    ns_receiver,
    ns_sender,
    reliable_duplex_channel,
    simplex_channel,
    sw_end_to_end,
    sw_receiver,
    sw_sender,
    windowed_alternating_service,
)
from repro.satisfy import satisfies
from repro.spec import is_normal_form
from repro.traces import accepts, language_upto


class TestABMachines:
    def test_sender_shape(self):
        a0 = ab_sender()
        assert len(a0.states) == 6
        assert a0.alphabet == Alphabet(
            ["acc", "-d0", "-d1", "+a0", "+a1", AB_TIMEOUT]
        )

    def test_sender_alternates_bits(self):
        a0 = ab_sender()
        assert accepts(a0, ("acc", "-d0", "+a0", "acc", "-d1", "+a1"))
        assert not accepts(a0, ("acc", "-d1"))

    def test_sender_retransmits_on_timeout(self):
        a0 = ab_sender()
        assert accepts(a0, ("acc", "-d0", AB_TIMEOUT, "-d0", "+a0"))

    def test_sender_retransmits_on_stale_ack(self):
        a0 = ab_sender()
        assert accepts(a0, ("acc", "-d0", "+a1", "-d0"))

    def test_receiver_shape(self):
        a1 = ab_receiver()
        assert len(a1.states) == 6
        assert a1.alphabet == Alphabet(["+d0", "+d1", "del", "-a0", "-a1"])

    def test_receiver_delivers_expected_bit(self):
        a1 = ab_receiver()
        assert accepts(a1, ("+d0", "del", "-a0", "+d1", "del", "-a1"))

    def test_receiver_suppresses_duplicates(self):
        a1 = ab_receiver()
        # duplicate d0 while expecting d1: re-ack without delivering
        assert accepts(a1, ("+d0", "del", "-a0", "+d0", "-a0", "+d1", "del"))
        assert not accepts(a1, ("+d0", "del", "-a0", "+d0", "del"))

    def test_machines_are_deterministic(self):
        assert ab_sender().is_deterministic()
        assert ab_receiver().is_deterministic()

    def test_event_partition(self):
        events = ab_protocol_events()
        a0, a1 = ab_sender(), ab_receiver()
        assert (
            events["user_sender"] | events["channel_sender"] == set(a0.alphabet)
        )
        assert (
            events["user_receiver"] | events["channel_receiver"]
            == set(a1.alphabet)
        )


class TestNSMachines:
    def test_sender_shape(self):
        n0 = ns_sender()
        assert len(n0.states) == 3
        assert n0.alphabet == Alphabet(["acc", "-D", "+A", NS_TIMEOUT])

    def test_sender_retransmit_loop(self):
        n0 = ns_sender()
        assert accepts(n0, ("acc", "-D", NS_TIMEOUT, "-D", NS_TIMEOUT, "-D", "+A"))

    def test_receiver_delivers_everything(self):
        n1 = ns_receiver()
        assert accepts(n1, ("+D", "del", "-A", "+D", "del", "-A"))
        assert not accepts(n1, ("+D", "+D"))

    def test_event_partition(self):
        events = ns_protocol_events()
        assert events["channel_sender"] == {"-D", "+A", NS_TIMEOUT}
        assert events["channel_receiver"] == {"+D", "-A"}


class TestChannels:
    def test_lossy_channel_shape(self):
        ch = lossy_duplex_channel(name="ch", messages=("M",), timeout="t")
        assert accepts(ch, ("-M", "+M"))
        assert accepts(ch, ("-M", "t"))  # loss then timeout
        assert not accepts(ch, ("+M",))
        assert not accepts(ch, ("-M", "-M"))  # capacity one

    def test_loss_is_internal(self):
        ch = lossy_duplex_channel(name="ch", messages=("M",), timeout="t")
        assert ch.internal  # the loss transition

    def test_timeout_never_premature(self):
        ch = lossy_duplex_channel(name="ch", messages=("M",), timeout="t")
        assert not accepts(ch, ("t",))
        # after a clean delivery there is nothing to time out
        assert not accepts(ch, ("-M", "+M", "t"))

    def test_reliable_channel_never_times_out(self):
        ch = reliable_duplex_channel(name="ch", messages=("M",))
        assert not ch.internal
        assert accepts(ch, ("-M", "+M", "-M", "+M"))

    def test_empty_message_set_rejected(self):
        with pytest.raises(SpecError):
            lossy_duplex_channel(name="ch", messages=(), timeout="t")
        with pytest.raises(SpecError):
            reliable_duplex_channel(name="ch", messages=())

    def test_ab_channel_carries_all_four(self):
        ch = ab_channel()
        for m in ("d0", "d1", "a0", "a1"):
            assert accepts(ch, (f"-{m}", f"+{m}"))

    def test_ns_channel_carries_both(self):
        ch = ns_channel()
        assert accepts(ch, ("-D", "+D"))
        assert accepts(ch, ("-A", "+A"))

    def test_simplex_lossy_requires_timeout(self):
        with pytest.raises(SpecError, match="timeout"):
            simplex_channel(name="c", messages=["M"], lossy=True)

    def test_simplex_reliable(self):
        ch = simplex_channel(name="c", messages=["M"])
        assert accepts(ch, ("-M", "+M"))
        assert not ch.internal


class TestServices:
    def test_alternating_is_normal_form(self):
        assert is_normal_form(alternating_service())

    def test_alternating_traces(self):
        svc = alternating_service()
        assert language_upto(svc, 3) == frozenset(
            {(), ("acc",), ("acc", "del"), ("acc", "del", "acc")}
        )

    def test_at_least_once_normal_form_and_traces(self):
        svc = at_least_once_service()
        assert is_normal_form(svc)
        assert accepts(svc, ("acc", "del", "del", "del", "acc", "del"))
        assert not accepts(svc, ("acc", "acc"))
        assert not accepts(svc, ("del",))

    def test_strict_variant_same_traces(self):
        a, b = at_least_once_service(), at_least_once_service_strict()
        assert language_upto(a, 5) == language_upto(b, 5)

    def test_variants_differ_in_acceptance_structure(self):
        from repro.spec import psi
        from repro.spec.graph import sink_acceptance_sets

        nondet = at_least_once_service()
        strict = at_least_once_service_strict()
        hub_n = psi(nondet, ("acc", "del"))
        hub_s = psi(strict, ("acc", "del"))
        menu_n = sorted(tuple(sorted(m)) for m in sink_acceptance_sets(nondet, hub_n))
        menu_s = sorted(tuple(sorted(m)) for m in sink_acceptance_sets(strict, hub_s))
        assert menu_n == [("acc",), ("del",)]
        assert menu_s == [("acc", "del")]

    def test_windowed_service(self):
        svc = windowed_alternating_service(2)
        assert is_normal_form(svc)
        assert accepts(svc, ("acc", "acc", "del", "del"))
        assert not accepts(svc, ("acc", "acc", "acc"))
        assert not accepts(svc, ("acc", "del", "del"))

    def test_windowed_one_equals_alternating(self):
        from repro.spec import trace_equivalent

        assert trace_equivalent(
            windowed_alternating_service(1), alternating_service()
        )

    def test_windowed_rejects_zero(self):
        with pytest.raises(SpecError):
            windowed_alternating_service(0)

    def test_choice_service_normal_form(self):
        assert is_normal_form(choice_service())


class TestStopAndWait:
    def test_end_to_end_satisfies_alternation(self):
        system = sw_end_to_end()
        assert satisfies(system, alternating_service()).holds

    def test_machines_shape(self):
        assert len(sw_sender().states) == 3
        assert len(sw_receiver().states) == 3

    def test_composite_interface(self):
        assert sw_end_to_end().alphabet == Alphabet(["acc", "del"])
