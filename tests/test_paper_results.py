"""Integration tests reproducing every claim of the paper's Section 5/6.

These are the repository's headline checks: each test corresponds to a row
of the experiment index in DESIGN.md / EXPERIMENTS.md.
"""

import pytest

from repro.analysis import find_livelocks
from repro.compose import compose
from repro.events import Alphabet
from repro.protocols import (
    ab_end_to_end,
    alternating_service,
    colocated_scenario,
    ns_end_to_end,
    symmetric_scenario,
    weakened_symmetric_scenario,
)
from repro.quotient import solve_quotient
from repro.satisfy import satisfies, satisfies_safety
from repro.spec import is_normal_form
from repro.traces import accepts, language_upto


@pytest.fixture(scope="module")
def symmetric_result():
    scen = symmetric_scenario()
    return scen, solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


@pytest.fixture(scope="module")
def colocated_result():
    scen = colocated_scenario()
    return scen, solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )


class TestFig7AB:
    """FIG7: the AB protocol provides exactly-once alternating delivery."""

    def test_ab_over_lossy_channel_satisfies_service(self):
        scen = ab_end_to_end(lossy=True)
        assert satisfies(scen.composite, scen.service).holds

    def test_ab_over_reliable_channel_satisfies_service(self):
        scen = ab_end_to_end(lossy=False)
        assert satisfies(scen.composite, scen.service).holds

    def test_composite_interface_is_user_only(self):
        assert ab_end_to_end().composite.alphabet == Alphabet(["acc", "del"])


class TestFig8NS:
    """FIG8: NS guarantees at-least-once but may duplicate."""

    def test_ns_violates_exactly_once(self):
        scen = ns_end_to_end()
        result = satisfies_safety(scen.composite, alternating_service())
        assert not result.holds
        assert result.counterexample == ("acc", "del", "del")

    def test_ns_satisfies_at_least_once(self):
        from repro.protocols import at_least_once_service

        scen = ns_end_to_end()
        assert satisfies(scen.composite, at_least_once_service()).holds


class TestFig11Service:
    """FIG11: the desired service is strict alternation, in normal form."""

    def test_normal_form(self):
        assert is_normal_form(alternating_service())

    def test_trace_language(self):
        svc = alternating_service()
        assert accepts(svc, ("acc", "del", "acc", "del"))
        assert not accepts(svc, ("acc", "acc"))
        assert not accepts(svc, ("del",))


class TestFig12Symmetric:
    """FIG12: the symmetric configuration (Fig. 9) has a safety-correct
    converter, but no converter satisfying progress exists."""

    def test_safety_phase_nonempty(self, symmetric_result):
        _, result = symmetric_result
        assert result.safety is not None and result.safety.exists
        assert result.c0 is not None and len(result.c0.states) > 0

    def test_safety_phase_composite_is_safe(self, symmetric_result):
        scen, result = symmetric_result
        composite = compose(scen.composite, result.c0)
        assert satisfies_safety(composite, scen.service).holds

    def test_all_ext_traces_alternate(self, symmetric_result):
        """The paper: 'All possible sequences of acc and del ... are
        prefixes of accept, deliver, accept, deliver, ...'"""
        scen, result = symmetric_result
        composite = compose(scen.composite, result.c0)
        for t in language_upto(composite, 4):
            assert accepts(scen.service, t)

    def test_no_converter_exists(self, symmetric_result):
        _, result = symmetric_result
        assert not result.exists
        assert result.converter is None
        assert result.progress is not None and not result.progress.exists

    def test_livelock_region_exists(self, symmetric_result):
        """The paper: after a loss in Nch 'the user sees no further
        progress, while C and A0 exchange useless data and acknowledgement
        messages forever' (states 6/8/15/17 of Fig. 12)."""
        scen, result = symmetric_result
        composite = compose(scen.composite, result.c0)
        report = find_livelocks(composite)
        assert not report.livelock_free
        assert report.cycle is not None and len(report.cycle) >= 2

    def test_livelock_reachable_after_one_accept(self, symmetric_result):
        scen, result = symmetric_result
        composite = compose(scen.composite, result.c0)
        report = find_livelocks(composite)
        visible = tuple(e for e in (report.witness or ()) if e is not None)
        assert visible == ("acc",)


class TestFig14Colocated:
    """FIG13/14: co-locating the converter with N1 makes one exist."""

    def test_converter_exists(self, colocated_result):
        _, result = colocated_result
        assert result.exists
        assert result.converter is not None

    def test_converter_independently_verified(self, colocated_result):
        scen, result = colocated_result
        composite = compose(scen.composite, result.converter)
        report = satisfies(composite, scen.service)
        assert report.holds

    def test_converter_interface(self, colocated_result):
        scen, result = colocated_result
        assert result.converter.alphabet == scen.interface.int_events

    def test_converter_core_behaviour(self, colocated_result):
        """The essential conversion: receive d0, hand to N1, collect N1's
        ack, ack the AB sender; then the same with bit 1."""
        _, result = colocated_result
        c = result.converter
        assert accepts(c, ("+d0", "+D", "-A", "-a0", "+d1", "+D", "-A", "-a1"))

    def test_converter_handles_duplicate_data(self, colocated_result):
        """An a0 lost in Ach makes A0 resend d0; the converter must re-ack
        without handing a duplicate to N1."""
        _, result = colocated_result
        c = result.converter
        assert accepts(c, ("+d0", "+D", "-A", "-a0", "+d0", "-a0"))

    def test_superfluous_portion_exists_and_prunes(self, colocated_result):
        """Fig. 14's dotted boxes: the maximal converter carries harmless
        but useless states; pruning removes them while staying correct."""
        from repro.quotient import QuotientProblem, prune_converter

        scen, result = colocated_result
        problem = QuotientProblem.build(
            scen.service, scen.composite
        )
        pruned = prune_converter(problem, result.converter, result.f)
        assert len(pruned.states) < len(result.converter.states)
        composite = compose(scen.composite, pruned)
        assert satisfies(composite, scen.service).holds


class TestSec5Weakened:
    """SEC5-W: weakening the service to allow duplicates admits a converter
    even in the symmetric configuration — provided the weakening uses the
    paper's nondeterministic choice structure."""

    def test_weakened_converter_exists(self):
        scen = weakened_symmetric_scenario()
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        assert result.exists
        assert result.verification is not None and result.verification.holds

    def test_strict_weakening_still_fails(self):
        """The deterministic weakening (single {acc, del} acceptance set)
        is NOT enough: both events would have to be offerable at once."""
        from repro.protocols import at_least_once_service_strict

        scen = symmetric_scenario()
        result = solve_quotient(
            at_least_once_service_strict(),
            scen.composite,
            int_events=scen.interface.int_events,
        )
        assert not result.exists
