"""Unit tests for the composition operator ‖ and the synchronous product."""

import pytest

from repro.compose import check_composable, compose, compose_many, synchronous_product
from repro.errors import CompositionError
from repro.events import Alphabet
from repro.spec import SpecBuilder, trace_equivalent
from repro.traces import accepts, language_upto


def sender():
    return (
        SpecBuilder("snd")
        .external(0, "put", 1)
        .external(1, "msg", 0)
        .initial(0)
        .build()
    )


def receiver():
    return (
        SpecBuilder("rcv")
        .external(0, "msg", 1)
        .external(1, "get", 0)
        .initial(0)
        .build()
    )


class TestBinaryCompose:
    def test_alphabet_is_symmetric_difference(self):
        c = compose(sender(), receiver())
        assert c.alphabet == Alphabet(["put", "get"])

    def test_shared_event_becomes_internal(self):
        c = compose(sender(), receiver())
        assert ((1, 0), (0, 1)) in c.internal

    def test_unshared_events_interleave(self):
        left = SpecBuilder("l").external(0, "a", 0).initial(0).build()
        right = SpecBuilder("r").external(0, "b", 0).initial(0).build()
        c = compose(left, right)
        assert accepts(c, ("a", "b", "a"))
        assert accepts(c, ("b", "b", "a"))

    def test_synchronized_event_requires_both(self):
        # receiver only accepts msg in state 0; sender only emits in state 1
        c = compose(sender(), receiver())
        # visible behaviour: put/get through the hidden msg handoff; the
        # one-slot receiver allows at most one put to run ahead of its get
        assert accepts(c, ("put", "get"))
        assert not accepts(c, ("get",))
        assert accepts(c, ("put", "put"))  # second put while rcv holds one
        assert not accepts(c, ("put", "put", "put"))

    def test_initial_state_is_pair(self):
        c = compose(sender(), receiver())
        assert c.initial == (0, 0)

    def test_internal_transitions_interleave(self, lossy_hop):
        other = SpecBuilder("o").external(0, "z", 0).initial(0).build()
        c = compose(lossy_hop, other)
        assert any(
            a == (1, 0) and b == (2, 0) for a, b in c.internal
        )

    def test_reachable_only_vs_full_product(self):
        left = sender()
        right = receiver()
        small = compose(left, right, reachable_only=True)
        full = compose(left, right, reachable_only=False)
        assert len(full.states) == len(left.states) * len(right.states)
        assert len(small.states) <= len(full.states)
        assert trace_equivalent(small, full)

    def test_commutative_up_to_trace_equivalence(self):
        ab = compose(sender(), receiver())
        ba = compose(receiver(), sender())
        assert trace_equivalent(ab, ba)

    def test_custom_name(self):
        assert compose(sender(), receiver(), name="X").name == "X"

    def test_check_composable_reports_shared(self):
        assert check_composable(sender(), receiver()) == Alphabet(["msg"])

    def test_check_composable_rejects_double_empty(self):
        empty1 = SpecBuilder("e1").initial(0).build()
        empty2 = SpecBuilder("e2").initial(0).build()
        with pytest.raises(CompositionError):
            check_composable(empty1, empty2)


class TestSynchronousProduct:
    def test_alphabet_is_union(self):
        p = synchronous_product(sender(), receiver())
        assert p.alphabet == Alphabet(["put", "get", "msg"])

    def test_shared_events_stay_external(self):
        p = synchronous_product(sender(), receiver())
        assert accepts(p, ("put", "msg", "get"))
        assert not accepts(p, ("msg",))

    def test_product_refines_both_on_shared(self):
        # the product's msg-projection is constrained by both components
        p = synchronous_product(sender(), receiver())
        assert not accepts(p, ("put", "msg", "msg"))


class TestComposeMany:
    def test_empty_rejected(self):
        with pytest.raises(CompositionError):
            compose_many([])

    def test_single_spec_renamed(self):
        c = compose_many([sender()], name="only")
        assert c.name == "only"
        assert trace_equivalent(c, sender())

    def test_flat_tuple_states(self):
        a = SpecBuilder("a").external(0, "x", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "y", 0).initial(0).build()
        c = SpecBuilder("c").external(0, "z", 0).initial(0).build()
        m = compose_many([a, b, c])
        assert m.initial == (0, 0, 0)

    def test_matches_iterated_binary(self):
        a, b = sender(), receiver()
        c = SpecBuilder("c").external(0, "get", 1).external(1, "out", 0).initial(0).build()
        flat = compose_many([a, b, c])
        nested = compose(compose(a, b), c)
        assert trace_equivalent(flat, nested)

    def test_three_way_sharing_rejected(self):
        a = SpecBuilder("a").external(0, "e", 0).initial(0).build()
        b = SpecBuilder("b").external(0, "e", 0).initial(0).build()
        c = SpecBuilder("c").external(0, "e", 0).initial(0).build()
        with pytest.raises(CompositionError, match="three or more"):
            compose_many([a, b, c])

    def test_pipeline_behaviour(self):
        """x -> (hidden m) -> y pipeline delivers in order."""
        stage1 = (
            SpecBuilder("s1").external(0, "x", 1).external(1, "m", 0).initial(0).build()
        )
        stage2 = (
            SpecBuilder("s2").external(0, "m", 1).external(1, "y", 0).initial(0).build()
        )
        pipe = compose_many([stage1, stage2])
        traces = language_upto(pipe, 4)
        assert ("x", "y") in traces
        assert ("x", "y", "x", "y") in traces
        assert ("y",) not in traces


class TestCompositionSemantics:
    def test_paper_definition_on_full_product(self):
        """Spot-check the textbook T and λ definitions on the full product."""
        left = sender()
        right = receiver()
        full = compose(left, right, reachable_only=False)
        # external: left moves alone on unshared event
        assert ((0, 1), "put", (1, 1)) in full.external
        # external: right moves alone
        assert ((0, 1), "get", (0, 0)) in full.external
        # internal: synchronized shared event
        assert ((1, 0), (0, 1)) in full.internal
        # no transition where only one side of a shared event is enabled
        assert not any(
            e == "msg" for _, e, _ in full.external
        )
