"""Unit tests for graph primitives: λ*, SCCs, sink sets, τ*."""

from repro.events import Alphabet
from repro.spec import SpecBuilder
from repro.spec.graph import (
    close_under_lambda,
    find_path,
    internal_sccs,
    is_sink,
    lambda_closure,
    lambda_closure_of,
    reachable_sink_sets,
    reachable_states,
    sink_acceptance_sets,
    sink_sets,
    sink_states,
    tau,
    tau_star,
    tau_star_of,
)


def chain():
    """0 λ 1 λ 2, with externals on 0 and 2."""
    return (
        SpecBuilder("chain")
        .internal(0, 1)
        .internal(1, 2)
        .external(0, "a", 0)
        .external(2, "c", 0)
        .initial(0)
        .build()
    )


def fig4_left():
    """The paper's Fig. 4 left machine: a two-state internal cycle offering
    f and g, entered via e."""
    return (
        SpecBuilder("fig4")
        .external("s", "e", "p")
        .internal("p", "q")
        .internal("q", "p")
        .external("p", "f", "s")
        .external("q", "g", "s")
        .initial("s")
        .build()
    )


class TestLambdaClosure:
    def test_single_state_closure(self):
        spec = chain()
        assert lambda_closure_of(spec, 0) == frozenset([0, 1, 2])
        assert lambda_closure_of(spec, 1) == frozenset([1, 2])
        assert lambda_closure_of(spec, 2) == frozenset([2])

    def test_closure_is_reflexive(self):
        spec = chain()
        for s in spec.states:
            assert s in lambda_closure_of(spec, s)

    def test_set_closure(self):
        spec = chain()
        assert close_under_lambda(spec, [1]) == frozenset([1, 2])
        assert close_under_lambda(spec, [0, 2]) == frozenset([0, 1, 2])

    def test_whole_spec_closure_matches_pointwise(self):
        spec = fig4_left()
        table = lambda_closure(spec)
        for s in spec.states:
            assert table[s] == lambda_closure_of(spec, s)

    def test_closure_through_cycle(self):
        spec = fig4_left()
        assert lambda_closure_of(spec, "p") == frozenset(["p", "q"])
        assert lambda_closure_of(spec, "q") == frozenset(["p", "q"])


class TestSCC:
    def test_cycle_is_one_component(self):
        spec = fig4_left()
        components, scc_of = internal_sccs(spec)
        cycle = {frozenset(c) for c in components if len(c) > 1}
        assert cycle == {frozenset(["p", "q"])}
        assert scc_of["p"] == scc_of["q"]

    def test_acyclic_gives_singletons(self):
        spec = chain()
        components, _ = internal_sccs(spec)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 3

    def test_every_state_assigned(self):
        spec = fig4_left()
        _, scc_of = internal_sccs(spec)
        assert set(scc_of) == set(spec.states)


class TestSinkSets:
    def test_cycle_with_no_exit_is_sink(self):
        spec = fig4_left()
        assert frozenset(["p", "q"]) in sink_sets(spec)
        assert is_sink(spec, "p")
        assert is_sink(spec, "q")

    def test_state_without_internal_out_is_trivial_sink(self):
        spec = fig4_left()
        assert frozenset(["s"]) in sink_sets(spec)
        assert is_sink(spec, "s")

    def test_state_with_internal_exit_is_not_sink(self):
        spec = chain()
        assert not is_sink(spec, 0)
        assert not is_sink(spec, 1)
        assert is_sink(spec, 2)
        assert sink_states(spec) == frozenset([2])

    def test_cycle_with_exit_is_not_sink(self):
        spec = (
            SpecBuilder("m")
            .internal(0, 1)
            .internal(1, 0)
            .internal(1, 2)
            .external(2, "x", 2)
            .initial(0)
            .build()
        )
        assert sink_states(spec) == frozenset([2])

    def test_reachable_sink_sets(self):
        spec = chain()
        assert reachable_sink_sets(spec, 0) == [frozenset([2])]
        assert reachable_sink_sets(spec, 2) == [frozenset([2])]


class TestTauStar:
    def test_tau_is_enabled(self, internal_cycle):
        assert tau(internal_cycle, 0) == Alphabet(["e"])

    def test_tau_star_unions_over_closure(self):
        spec = chain()
        assert tau_star_of(spec, 0) == Alphabet(["a", "c"])
        assert tau_star_of(spec, 1) == Alphabet(["c"])

    def test_tau_star_whole_spec_matches_pointwise(self):
        spec = fig4_left()
        table = tau_star(spec)
        for s in spec.states:
            assert table[s] == tau_star_of(spec, s)

    def test_fig4_collapse_property(self):
        """The paper's Fig. 4: the sink cycle offers {f, g} as one unit."""
        spec = fig4_left()
        assert tau_star_of(spec, "p") == Alphabet(["f", "g"])
        assert tau_star_of(spec, "q") == Alphabet(["f", "g"])

    def test_sink_acceptance_sets(self):
        spec = fig4_left()
        [accept] = sink_acceptance_sets(spec, "p")
        assert accept == Alphabet(["f", "g"])

    def test_acceptance_menu_from_hub(self, nondet_choice):
        menu = sink_acceptance_sets(nondet_choice, "hub")
        assert sorted(tuple(sorted(m)) for m in menu) == [("l",), ("r",)]


class TestReachability:
    def test_reachable_states_all(self, relay):
        assert reachable_states(relay) == frozenset([0, 1, 2, 3])

    def test_reachable_excludes_orphans(self):
        spec = (
            SpecBuilder("m").external(0, "a", 1).state(99).initial(0).build()
        )
        assert 99 not in reachable_states(spec)

    def test_reachable_follows_internal(self):
        spec = chain()
        assert reachable_states(spec) == frozenset([0, 1, 2])


class TestFindPath:
    def test_trivial_path(self, relay):
        assert find_path(relay, lambda s: s == 0) == []

    def test_shortest_external_path(self, relay):
        assert find_path(relay, lambda s: s == 2) == ["x", "m"]

    def test_path_with_internal_steps(self):
        spec = chain()
        assert find_path(spec, lambda s: s == 2) == [None, None]

    def test_unreachable_returns_none(self):
        spec = (
            SpecBuilder("m").external(0, "a", 1).state(99).initial(0).build()
        )
        assert find_path(spec, lambda s: s == 99) is None
