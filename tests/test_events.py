"""Unit tests for events, alphabets, and interfaces."""

import pytest

from repro.errors import AlphabetError
from repro.events import (
    Alphabet,
    Interface,
    composition_alphabet,
    is_receive,
    is_send,
    matching_receive,
    matching_send,
    message_of,
    receive,
    send,
    shared_events,
)


class TestNamingConventions:
    def test_send_receive_predicates(self):
        assert is_send("-d0")
        assert is_receive("+d0")
        assert not is_send("+d0")
        assert not is_receive("-d0")
        assert not is_send("acc")
        assert not is_receive("del")

    def test_bare_prefix_is_not_an_event_kind(self):
        assert not is_send("-")
        assert not is_receive("+")

    def test_message_of(self):
        assert message_of("-d0") == "d0"
        assert message_of("+a1") == "a1"
        assert message_of("timeout") == "timeout"

    def test_constructors(self):
        assert send("D") == "-D"
        assert receive("D") == "+D"

    def test_matching_receive(self):
        assert matching_receive("-d0") == "+d0"
        with pytest.raises(AlphabetError):
            matching_receive("+d0")

    def test_matching_send(self):
        assert matching_send("+a0") == "-a0"
        with pytest.raises(AlphabetError):
            matching_send("acc")


class TestAlphabet:
    def test_construction_and_membership(self):
        a = Alphabet(["x", "y"])
        assert "x" in a
        assert len(a) == 2

    def test_rejects_non_string_events(self):
        with pytest.raises(AlphabetError):
            Alphabet([3])
        with pytest.raises(AlphabetError):
            Alphabet([""])

    def test_sorted_is_deterministic(self):
        assert Alphabet(["b", "a", "c"]).sorted() == ["a", "b", "c"]

    def test_set_algebra_preserves_type(self):
        a = Alphabet(["x", "y"])
        b = Alphabet(["y", "z"])
        assert isinstance(a | b, Alphabet)
        assert isinstance(a & b, Alphabet)
        assert isinstance(a - b, Alphabet)
        assert isinstance(a ^ b, Alphabet)
        assert (a | b) == Alphabet(["x", "y", "z"])
        assert (a & b) == Alphabet(["y"])
        assert (a - b) == Alphabet(["x"])
        assert (a ^ b) == Alphabet(["x", "z"])

    def test_named_methods(self):
        a = Alphabet(["x"])
        assert a.union(["y"]) == Alphabet(["x", "y"])
        assert Alphabet(["x", "y"]).intersection(["y"]) == Alphabet(["y"])
        assert Alphabet(["x", "y"]).difference(["y"]) == Alphabet(["x"])
        assert a.symmetric_difference(["x", "z"]) == Alphabet(["z"])

    def test_equality_with_frozenset(self):
        assert Alphabet(["x"]) == frozenset(["x"])


class TestCompositionAlphabet:
    def test_symmetric_difference_rule(self):
        left = ["acc", "-d0", "+a0"]
        right = ["-d0", "+d0", "+a0", "-a0"]
        assert composition_alphabet(left, right) == Alphabet(
            ["acc", "+d0", "-a0"]
        )

    def test_shared_events(self):
        assert shared_events(["a", "b"], ["b", "c"]) == Alphabet(["b"])

    def test_disjoint_alphabets_fully_exposed(self):
        assert composition_alphabet(["a"], ["b"]) == Alphabet(["a", "b"])


class TestInterface:
    def test_construction(self):
        iface = Interface(["m", "n"], ["x", "y"])
        assert iface.int_events == Alphabet(["m", "n"])
        assert iface.ext_events == Alphabet(["x", "y"])
        assert iface.full == Alphabet(["m", "n", "x", "y"])

    def test_overlap_rejected(self):
        with pytest.raises(AlphabetError, match="disjoint"):
            Interface(["m", "x"], ["x"])

    def test_classify(self):
        iface = Interface(["m"], ["x"])
        assert iface.classify("m") == "int"
        assert iface.classify("x") == "ext"
        with pytest.raises(AlphabetError):
            iface.classify("zzz")

    def test_iteration_is_sorted_full_alphabet(self):
        iface = Interface(["m"], ["a", "z"])
        assert list(iface) == ["a", "m", "z"]

    def test_empty_int_is_legal(self):
        iface = Interface([], ["x"])
        assert iface.int_events == Alphabet([])
