"""Runtime fault injection and structured deadlock reporting.

Cross-validation is the point: the injectors steer *scheduling* only, so
their effects must line up with the analytical results — a total-loss
adversary starves progress exactly where the satisfaction checker says
silent loss breaks it, while a fair policy keeps the watchdog quiet; and
every injected run remains a valid run of the composed system.
"""

import pytest

from repro.errors import DeadlockError
from repro.protocols.configs import ab_end_to_end
from repro.simulate import (
    BiasedPolicy,
    DropInjector,
    DuplicateInjector,
    FairRandomPolicy,
    ProgressWatchdog,
    RandomPolicy,
    RoundRobinPolicy,
    ScriptedPolicy,
    ServiceMonitor,
    Simulator,
    StallInjector,
)
from repro.spec.spec import Specification
from repro.traces import accepts


def _dead_spec():
    """One state, one declared-refused event: deadlocked immediately."""
    return Specification(
        "D", {0}, frozenset({"x"}), frozenset(), frozenset(), 0
    )


class TestPolicyDeadlockGuards:
    @pytest.mark.parametrize(
        "policy",
        [
            RandomPolicy(),
            RoundRobinPolicy(),
            FairRandomPolicy(),
            BiasedPolicy({"internal": 2.0}),
            ScriptedPolicy(["x"]),
            DropInjector(),
            StallInjector(),
            DuplicateInjector(),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_empty_moves_raise_structured_deadlock(self, policy):
        with pytest.raises(DeadlockError) as exc:
            policy([], 42)
        assert exc.value.step_index == 42

    def test_strict_step_raises_with_state_vector(self):
        sim = Simulator([_dead_spec()], FairRandomPolicy())
        with pytest.raises(DeadlockError) as exc:
            sim.step(strict=True)
        assert exc.value.state_vector == (0,)
        assert exc.value.step_index == 0
        assert sim.log.deadlocked  # the log still records the deadlock

    def test_strict_run_raises(self):
        sim = Simulator([_dead_spec()], FairRandomPolicy())
        with pytest.raises(DeadlockError):
            sim.run(10, strict=True)

    def test_non_strict_step_still_returns_none(self):
        # back-compat: the default contract is unchanged
        sim = Simulator([_dead_spec()], FairRandomPolicy())
        assert sim.step() is None
        assert sim.log.deadlocked


class TestInjectorWatchdogCrossValidation:
    """The operational counterpart of the analytical loss results."""

    def test_fair_policy_keeps_watchdog_quiet(self):
        scenario = ab_end_to_end(lossy=True)
        sim = Simulator(scenario.components, FairRandomPolicy(seed=1))
        watchdog = ProgressWatchdog(limit=60)
        for _ in range(300):
            move = sim.step()
            if move is None:
                break
            watchdog.observe_move(move)
        assert not watchdog.triggered

    def test_total_loss_adversary_triggers_watchdog(self):
        """Losing every message starves `del` forever — the scheduling
        face of the analytical result that undetectable loss breaks
        progress (cf. the loss@2 cell of the resilience matrix)."""
        scenario = ab_end_to_end(lossy=True)
        injector = DropInjector(
            FairRandomPolicy(seed=1), component=1, rate=1.0, seed=1
        )
        sim = Simulator(scenario.components, injector)
        watchdog = ProgressWatchdog(limit=60)
        for _ in range(300):
            move = sim.step()
            if move is None:
                break
            watchdog.observe_move(move)
        assert watchdog.triggered
        assert injector.injected > 0
        # the adversary never let a delivery through
        assert "del" not in set(sim.log.external_trace)

    def test_stall_injector_worsens_stalls_but_cannot_break_ab(self):
        """The AB protocol serializes delivery, so even a maximal stall
        adversary is forced to let externals through — stalls worsen but
        the run stays safe."""
        scenario = ab_end_to_end(lossy=True)

        def worst(policy):
            sim = Simulator(scenario.components, policy)
            watchdog = ProgressWatchdog(limit=10**9)
            monitor = ServiceMonitor(scenario.service)
            for _ in range(300):
                move = sim.step()
                if move is None:
                    break
                watchdog.observe_move(move)
                monitor.observe_move(move)
            assert monitor.ok
            return watchdog.worst_stall

        fair = worst(FairRandomPolicy(seed=1))
        stalled = worst(
            StallInjector(FairRandomPolicy(seed=1), rate=1.0, seed=1)
        )
        assert stalled >= fair

    def test_duplicate_injector_runs_stay_safe(self):
        scenario = ab_end_to_end(lossy=True)
        injector = DuplicateInjector(FairRandomPolicy(seed=3), rate=0.8, seed=3)
        sim = Simulator(scenario.components, injector)
        monitor = ServiceMonitor(scenario.service)
        for _ in range(300):
            move = sim.step()
            if move is None:
                break
            monitor.observe_move(move)
        assert monitor.ok

    def test_rate_zero_reduces_to_base_policy(self):
        scenario = ab_end_to_end(lossy=True)
        plain = Simulator(scenario.components, FairRandomPolicy(seed=7))
        wrapped = Simulator(
            scenario.components,
            StallInjector(FairRandomPolicy(seed=7), rate=0.0, seed=7),
        )
        plain.run(100)
        wrapped.run(100)
        assert [m.label() for m in plain.log.steps] == [
            m.label() for m in wrapped.log.steps
        ]

    def test_injected_runs_are_valid_runs(self):
        """Injectors never invent moves: the external trace of an injected
        run is accepted by the analytically composed system."""
        from repro.compose import compose_many

        scenario = ab_end_to_end(lossy=True)
        injector = DropInjector(
            FairRandomPolicy(seed=5), component=1, rate=0.7, seed=5
        )
        sim = Simulator(scenario.components, injector)
        sim.run(200)
        composed = compose_many(scenario.components)
        assert accepts(composed, sim.log.external_trace)

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            DropInjector(rate=1.5)
