"""Unit and differential tests for the fault-model transformers.

The anchor result: :func:`repro.faults.loss` applied to the reliable
duplex channel reproduces the hand-built lossy channel of the paper's
Fig. 10 **byte-identically** — same states, same alphabet, same
transition sets, same initial state — so the generalized transformer
provably contains the paper's only fault model as its severity-1 case.
"""

import pytest

from repro.errors import FaultModelError
from repro.faults import (
    FAULT_KINDS,
    FaultModel,
    apply_faults,
    corruption,
    crash_restart,
    duplication,
    fault_model,
    loss,
    reorder,
)
from repro.protocols.abp import AB_TIMEOUT, ab_sender
from repro.protocols.channels import (
    ab_channel,
    lossy_duplex_channel,
    reliable_duplex_channel,
)
from repro.spec.spec import Specification


def _reliable(name="Ch", messages=("d0", "d1", "a0", "a1")):
    return reliable_duplex_channel(name=name, messages=list(messages))


def _lossy(name="Ch", messages=("d0", "d1", "a0", "a1"), timeout="timeout"):
    return lossy_duplex_channel(
        name=name, messages=list(messages), timeout=timeout
    )


class TestLossDifferential:
    """loss(reliable) == hand-built lossy, field by field."""

    def test_reproduces_lossy_duplex_channel_exactly(self):
        derived = loss(_reliable(), severity=1, timeout="timeout")
        golden = _lossy()
        assert derived.states == golden.states
        assert derived.alphabet == golden.alphabet
        assert derived.external == golden.external
        assert derived.internal == golden.internal
        assert derived.initial == golden.initial
        assert derived == golden

    def test_reproduces_ab_channel(self):
        derived = loss(
            ab_channel(lossy=False), severity=1, timeout=AB_TIMEOUT
        )
        assert derived == ab_channel(lossy=True)

    def test_idempotent(self):
        once = loss(_reliable(), severity=1)
        twice = loss(once, severity=1)
        assert once == twice

    def test_severity_zero_is_identity(self):
        spec = _reliable()
        assert loss(spec, severity=0) is spec

    def test_severity_two_adds_silent_loss(self):
        mild = loss(_reliable(), severity=1)
        silent = loss(_reliable(), severity=2)
        assert silent.internal - mild.internal == {("lost", "empty")}
        assert silent.external == mild.external

    def test_no_receive_states_only_declares_timeout(self):
        sender = ab_sender()
        # every state of the sender enables something, but a spec with no
        # receive-enabled state gains only the declared timeout
        no_rx = Specification(
            "W", {0, 1}, frozenset({"-m"}), {(0, "-m", 1)}, frozenset(), 0
        )
        out = loss(no_rx, severity=1, timeout="t")
        assert out.states == no_rx.states
        assert out.alphabet == no_rx.alphabet | {"t"}
        assert out.external == no_rx.external
        # and the sender (which has +a receives) does gain a lost state
        assert "lost" in loss(sender, severity=1).states


class TestDuplication:
    def test_widens_behavior_only(self):
        base = _reliable()
        dup = duplication(base, severity=1)
        assert base.external <= dup.external
        assert base.internal <= dup.internal
        assert dup.alphabet == base.alphabet
        assert dup.initial == base.initial

    def test_ghost_chain_depth_matches_severity(self):
        base = _reliable()
        for k in (1, 2, 3):
            dup = duplication(base, severity=k)
            ghosts = {
                s
                for s in dup.states
                if isinstance(s, tuple) and s and s[0] == "dup"
            }
            receives = {
                (s, e, s2) for s, e, s2 in base.external if e.startswith("+")
            }
            assert len(ghosts) == k * len(receives)


class TestReorder:
    def test_bag_states_at_capacity(self):
        # 4 messages: capacity k gives sum_{i<=k} multisets of size i
        ch = _reliable()
        assert len(reorder(ch, severity=1).states) == 5
        assert len(reorder(ch, severity=2).states) == 15
        assert len(reorder(ch, severity=3).states) == 35

    def test_crossing_is_possible_at_capacity_two(self):
        ch = reorder(_reliable(messages=("x", "y")), severity=2)
        # -x then -y then +y: the later message overtakes the earlier
        s = ch.initial
        (s,) = ch.successors(s, "-x")
        (s,) = ch.successors(s, "-y")
        assert ch.successors(s, "+y")

    def test_alphabet_preserved_including_declared_timeout(self):
        ch = ab_channel(lossy=False)  # declares timeout, refused everywhere
        out = reorder(ch, severity=2)
        assert out.alphabet == ch.alphabet
        assert all(e != AB_TIMEOUT for (_, e, _) in out.external)

    def test_rejects_non_channel_shape(self):
        with pytest.raises(FaultModelError, match="not channel-shaped"):
            reorder(ab_sender(), severity=1)

    def test_rejects_messageless_spec(self):
        plain = Specification(
            "P", {0}, frozenset({"go"}), {(0, "go", 0)}, frozenset(), 0
        )
        with pytest.raises(FaultModelError, match="no -x/\\+x"):
            reorder(plain, severity=1)


class TestCorruption:
    def test_adds_cross_delivery(self):
        base = _reliable(messages=("x", "y"))
        out = corruption(base, severity=1)
        assert base.external < out.external
        assert out.alphabet == base.alphabet
        # a held x may now be delivered as +y (to +x's target state)
        garbled = {
            (s, e, s2)
            for s, e, s2 in out.external
            if isinstance(s, tuple) and s and s[0] == "corrupt"
        }
        assert any(e == "+y" for (_, e, _) in garbled)
        assert any(e == "+x" for (_, e, _) in garbled)

    def test_single_message_unchanged(self):
        base = _reliable(messages=("x",))
        assert corruption(base, severity=1) is base

    def test_severity_bounds_fanout(self):
        base = _reliable(messages=("a", "b", "c", "d"))
        for k in (1, 2, 3):
            out = corruption(base, severity=k)
            for s in out.states:
                if isinstance(s, tuple) and s and s[0] == "corrupt":
                    continue
            per_receive = {}
            for s, e, s2 in out.external - base.external:
                key = s  # corrupt state: ("corrupt", s0, e0, s2_, e2)
                per_receive.setdefault(key[1:4], set()).add(e)
            assert all(len(es) <= k for es in per_receive.values())


class TestCrashRestart:
    def test_planes_and_crash_edges(self):
        base = _reliable(messages=("x",))
        out = crash_restart(base, severity=2)
        assert len(out.states) == 3 * len(base.states)
        assert out.initial == (base.initial, 0)
        crash_edges = out.internal - {
            ((s, c), (s2, c))
            for s, s2 in base.internal
            for c in range(3)
        }
        assert crash_edges == {
            ((s, c), (base.initial, c + 1))
            for s in base.states
            for c in range(2)
        }

    def test_alphabet_preserved(self):
        base = _reliable()
        assert crash_restart(base, severity=1).alphabet == base.alphabet


class TestFaultModelRegistry:
    def test_kinds_sorted_and_complete(self):
        assert FAULT_KINDS == (
            "corruption",
            "crash_restart",
            "duplication",
            "loss",
            "reorder",
        )

    def test_label_and_apply(self):
        m = fault_model("loss", 2, timeout="t")
        assert m.label == "loss@2"
        assert m.apply(_reliable()) == loss(_reliable(), 2, timeout="t")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultModelError, match="unknown fault kind"):
            fault_model("gamma-rays", 1)

    def test_bad_severity_rejected(self):
        with pytest.raises(FaultModelError):
            fault_model("loss", -1)
        with pytest.raises(FaultModelError):
            loss(_reliable(), severity=True)

    def test_models_hash_and_compare(self):
        a = fault_model("loss", 1, timeout="t")
        b = fault_model("loss", 1, timeout="t")
        assert a == b and hash(a) == hash(b)
        assert FaultModel("loss", 1) != FaultModel("loss", 2)

    def test_apply_faults_composes_left_to_right(self):
        spec = _reliable()
        models = [fault_model("loss", 1), fault_model("duplication", 1)]
        assert apply_faults(spec, models) == duplication(loss(spec, 1), 1)
