"""Unit tests for the chaos fault plane and the retry policies.

The differential guarantees live in ``test_chaos_differential.py``; this
file pins the mechanics underneath them: plan parsing and validation,
decision determinism, per-site counters and obs accounting, activation
scoping, and the retry policy's backoff/give-up/recovery behaviour with
injected clocks (no test here sleeps on real time).
"""

import pytest

from repro import chaos, obs
from repro.chaos import ChaosPlan, ChaosState, RetryPolicy
from repro.chaos.plan import plan_from_env
from repro.errors import ReproError


# ----------------------------------------------------------------------
# ChaosPlan: parsing, validation, decisions
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_from_spec_parses_every_knob_kind(self):
        plan = ChaosPlan.from_spec(
            "seed=7, p_kill=0.25, kill_at=2:5, hang_s=1.5, delay_polls=3"
        )
        assert plan.seed == 7
        assert plan.p_kill == 0.25
        assert plan.kill_at == (2, 5)
        assert plan.hang_s == 1.5
        assert plan.delay_polls == 3

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ReproError, match="unknown chaos spec key"):
            ChaosPlan.from_spec("p_kil=0.5")

    def test_from_spec_rejects_malformed_entries(self):
        with pytest.raises(ReproError, match="not key=value"):
            ChaosPlan.from_spec("p_kill")
        with pytest.raises(ReproError, match="cannot parse"):
            ChaosPlan.from_spec("kill_at=two")

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ReproError, match="probability"):
            ChaosPlan(p_kill=1.5)
        with pytest.raises(ReproError, match="non-negative"):
            ChaosPlan(kill_at=(-1,))
        with pytest.raises(ReproError, match="hang_s"):
            ChaosPlan(hang_s=-1.0)
        with pytest.raises(ReproError, match="delay_polls"):
            ChaosPlan(delay_polls=0)

    def test_explicit_indices_fire_exactly(self):
        plan = ChaosPlan(kill_at=(1, 3))
        assert [plan.kill_worker(n) for n in range(5)] == [
            False, True, False, True, False,
        ]

    def test_probabilistic_decisions_are_deterministic(self):
        a = ChaosPlan(seed=42, p_kill=0.5)
        b = ChaosPlan(seed=42, p_kill=0.5)
        decisions = [a.kill_worker(n) for n in range(64)]
        assert decisions == [b.kill_worker(n) for n in range(64)]
        assert any(decisions) and not all(decisions)
        # a different seed draws a different schedule
        c = ChaosPlan(seed=43, p_kill=0.5)
        assert decisions != [c.kill_worker(n) for n in range(64)]

    def test_sites_draw_independent_decisions(self):
        plan = ChaosPlan(seed=1, p_kill=0.5, p_hang=0.5)
        kills = [plan.kill_worker(n) for n in range(64)]
        hangs = [plan.hang_worker(n) for n in range(64)]
        assert kills != hangs

    def test_store_write_fault_precedence_and_kinds(self):
        plan = ChaosPlan(
            write_partial_at=(0,), write_enospc_at=(0, 1), write_error_at=(2,)
        )
        assert plan.store_write_fault(0) == "partial"  # partial wins ties
        assert plan.store_write_fault(1) == "enospc"
        assert plan.store_write_fault(2) == "error"
        assert plan.store_write_fault(3) is None

    def test_result_faults(self):
        plan = ChaosPlan(delay_at=(1,), delay_polls=4, dup_at=(2,))
        assert plan.result_delay(0) == 0
        assert plan.result_delay(1) == 4
        assert plan.result_duplicate(2) is True
        assert plan.result_duplicate(1) is False

    def test_wants_workers(self):
        assert not ChaosPlan().wants_workers
        assert not ChaosPlan(p_write_enospc=0.5, p_delay=0.2).wants_workers
        assert ChaosPlan(kill_at=(0,)).wants_workers
        assert ChaosPlan(p_hang=0.1).wants_workers

    def test_plan_is_picklable(self):
        import pickle

        plan = ChaosPlan.from_spec("seed=3,p_kill=0.1,hang_at=1:2")
        assert pickle.loads(pickle.dumps(plan)) == plan


# ----------------------------------------------------------------------
# ChaosState: counters and obs accounting
# ----------------------------------------------------------------------
class TestChaosState:
    def test_next_index_advances_per_site(self):
        state = ChaosState(ChaosPlan())
        assert [state.next_index("a") for _ in range(3)] == [0, 1, 2]
        assert state.next_index("b") == 0

    def test_injected_faults_are_counted(self):
        state = ChaosState(ChaosPlan(write_enospc_at=(0,), read_error_at=(0,)))
        with obs.use_collector() as collector:
            assert state.store_write_fault() == "enospc"
            assert state.store_write_fault() is None
            assert state.store_read_fault() is True
        counters = collector.snapshot().counters
        assert counters["chaos.injected"] == 2
        assert counters["chaos.injected.store.write.enospc"] == 1
        assert counters["chaos.injected.store.read"] == 1

    def test_result_fault_consults_both_knobs_on_one_index(self):
        state = ChaosState(ChaosPlan(delay_at=(0,), dup_at=(0,), delay_polls=2))
        assert state.result_fault() == (2, True)
        assert state.result_fault() == (0, False)


# ----------------------------------------------------------------------
# activation: scoping and the environment seam
# ----------------------------------------------------------------------
class TestActivation:
    def test_inactive_by_default(self):
        assert chaos.active() is None

    def test_use_chaos_scopes_and_restores(self):
        plan = ChaosPlan(kill_at=(0,))
        with chaos.use_chaos(plan) as state:
            assert chaos.active() is state
            assert state.plan is plan
            with chaos.use_chaos(None):
                assert chaos.active() is None
            assert chaos.active() is state
        assert chaos.active() is None

    def test_set_chaos_returns_previous_state(self):
        previous = chaos.set_chaos(ChaosPlan())
        try:
            assert previous is None
            assert chaos.active() is not None
        finally:
            chaos.set_chaos(None)
        assert chaos.active() is None

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "seed=9,p_write_error=0.5")
        plan = plan_from_env()
        assert plan == ChaosPlan(seed=9, p_write_error=0.5)
        monkeypatch.setenv("REPRO_CHAOS", "bogus_knob=1")
        with pytest.raises(ReproError):
            plan_from_env()


# ----------------------------------------------------------------------
# RetryPolicy: backoff, recovery, give-up — all on injected time
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_delays_grow_and_cap_deterministically(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.010, multiplier=2.0,
            max_delay_s=0.040, jitter=0.0,
        )
        delays = [policy.delay_s("site", k) for k in range(1, 5)]
        assert delays == [0.010, 0.020, 0.040, 0.040]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.010, jitter=0.5, seed=11)
        again = RetryPolicy(base_delay_s=0.010, jitter=0.5, seed=11)
        for k in (1, 2):
            d = policy.delay_s("s", k)
            assert d == again.delay_s("s", k)
            nominal = min(0.010 * 2 ** (k - 1), policy.max_delay_s)
            assert nominal * 0.5 <= d <= nominal * 1.5
        assert policy.delay_s("s", 1) != policy.delay_s("other", 1)

    def test_recovers_after_transient_failures(self):
        failures = [OSError("flaky"), OSError("flaky")]
        slept: list[float] = []

        def op():
            if failures:
                raise failures.pop(0)
            return "ok"

        policy = RetryPolicy(max_attempts=3)
        with obs.use_collector() as collector:
            result = policy.call(
                op, site="t", sleep=slept.append, clock=lambda: 0.0
            )
        assert result == "ok"
        assert len(slept) == 2
        counters = collector.snapshot().counters
        assert counters["retry.attempts"] == 3
        assert counters["retry.retries"] == 2
        assert counters["retry.recoveries"] == 1
        assert "retry.giveups" not in counters

    def test_gives_up_after_max_attempts(self):
        calls = []

        def op():
            calls.append(1)
            raise OSError("still down")

        policy = RetryPolicy(max_attempts=3)
        with obs.use_collector() as collector:
            with pytest.raises(OSError, match="still down"):
                policy.call(op, site="t", sleep=lambda s: None)
        assert len(calls) == 3
        counters = collector.snapshot().counters
        assert counters["retry.giveups"] == 1
        assert counters["retry.retries"] == 2

    def test_give_up_on_fails_fast(self):
        calls = []

        def op():
            calls.append(1)
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            RetryPolicy(max_attempts=5).call(op, site="t", sleep=lambda s: None)
        assert len(calls) == 1

    def test_unlisted_exceptions_propagate_immediately(self):
        def op():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(op, site="t", sleep=lambda s: None)

    def test_first_try_success_counts_no_recovery(self):
        with obs.use_collector() as collector:
            assert RetryPolicy().call(lambda: 5, site="t") == 5
        counters = collector.snapshot().counters
        assert counters["retry.attempts"] == 1
        assert "retry.recoveries" not in counters

    def test_recovery_notes_into_progress_stream(self):
        import io
        import json

        from repro.obs.progress import ProgressReporter, use_reporter

        failures = [OSError("flaky")]

        def op():
            if failures:
                raise failures.pop(0)
            return "ok"

        stream = io.StringIO()
        reporter = ProgressReporter(jsonl=stream, interval_s=0.0)
        with use_reporter(reporter):
            RetryPolicy().call(
                op, site="store.write:test", sleep=lambda s: None
            )
        events = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        notes = [e for e in events if e.get("event") == "note"]
        assert any(e.get("recovered") == "store.write:test" for e in notes)


# ----------------------------------------------------------------------
# the sites= filter: scoping injection without perturbing schedules
# ----------------------------------------------------------------------
class TestSiteFilter:
    def test_empty_filter_enables_every_site(self):
        from repro.chaos.plan import SITES

        plan = ChaosPlan()
        assert all(plan.site_enabled(site) for site in SITES)

    def test_filter_scopes_to_named_sites(self):
        plan = ChaosPlan(sites=("serve.job", "store.write"))
        assert plan.site_enabled("serve.job")
        assert plan.site_enabled("store.write")
        assert not plan.site_enabled("worker.task")
        assert not plan.site_enabled("store.read")

    def test_unknown_site_name_is_a_structured_error(self):
        from repro.chaos.plan import SITES, ChaosSpecError

        with pytest.raises(ChaosSpecError) as info:
            ChaosPlan(sites=("serve.job", "worker.tsak"))
        assert info.value.unknown == ("worker.tsak",)
        assert info.value.valid == SITES
        # the message itself lists every valid site — a typo must come
        # back with the menu, not a silent no-op
        for site in SITES:
            assert site in str(info.value)

    def test_from_spec_parses_colon_separated_site_lists(self):
        plan = ChaosPlan.from_spec(
            "seed=3, p_kill=0.5, sites=serve.job:store.write"
        )
        assert plan.sites == ("serve.job", "store.write")

    def test_from_spec_rejects_unknown_site_names(self):
        from repro.chaos.plan import SITES, ChaosSpecError

        with pytest.raises(ChaosSpecError) as info:
            ChaosPlan.from_spec("sites=serve.job:store.wrote")
        assert info.value.unknown == ("store.wrote",)
        assert info.value.valid == SITES

    def test_from_spec_rejects_unknown_keys_structurally(self):
        from repro.chaos.plan import ChaosSpecError

        with pytest.raises(ChaosSpecError) as info:
            ChaosPlan.from_spec("sights=serve.job")
        assert info.value.unknown == ("sights",)
        assert "sites" in info.value.valid

    def test_disabled_sites_neither_fire_nor_advance_counters(self):
        # faults armed at index 0 for two sites; only store.write enabled
        state = ChaosState(
            ChaosPlan(
                kill_at=(0,), write_enospc_at=(0,), sites=("store.write",)
            )
        )
        with obs.use_collector() as collector:
            # the filtered-out seam is an exact no-op ...
            assert state.serve_job_fault() is None
            assert state.serve_job_fault() is None
            # ... its occurrence counter never advanced ...
            assert state.next_index("serve.job") == 0
            # ... and the enabled site's schedule is undisturbed
            assert state.store_write_fault() == "enospc"
        counters = collector.snapshot().counters
        assert counters["chaos.injected"] == 1
        assert counters["chaos.injected.store.write.enospc"] == 1
        assert not any("serve.job" in key for key in counters)

    def test_serve_job_fault_kinds_and_accounting(self):
        state = ChaosState(
            ChaosPlan(kill_at=(0,), hang_at=(1,), raise_at=(2,))
        )
        with obs.use_collector() as collector:
            assert state.serve_job_fault() == "kill"
            assert state.serve_job_fault() == "hang"
            assert state.serve_job_fault() == "raise"
            assert state.serve_job_fault() is None
        counters = collector.snapshot().counters
        assert counters["chaos.injected.serve.job.kill"] == 1
        assert counters["chaos.injected.serve.job.hang"] == 1
        assert counters["chaos.injected.serve.job.raise"] == 1


# ----------------------------------------------------------------------
# RetryPolicy under concurrency: shared policy, independent callers
# ----------------------------------------------------------------------
class TestRetryPolicyConcurrency:
    def test_concurrent_callers_keep_deterministic_per_site_backoff(self):
        """One shared policy, many threads: each site's backoff schedule
        is the pure function delay_s(site, k) — interleaving with other
        callers must not perturb it (no cross-talk)."""
        import threading

        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, jitter=0.5, seed=5
        )
        sites = [f"store.write:site-{i}" for i in range(8)]
        observed: dict[str, list[float]] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(sites))

        def caller(site: str) -> None:
            try:
                failures = [OSError("flaky"), OSError("flaky")]
                slept: list[float] = []

                def op():
                    if failures:
                        raise failures.pop(0)
                    return site

                barrier.wait(timeout=30)
                assert policy.call(
                    op, site=site, sleep=slept.append, clock=lambda: 0.0
                ) == site
                observed[site] = slept
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=caller, args=(site,)) for site in sites
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors, errors
        for site in sites:
            assert observed[site] == [
                policy.delay_s(site, 1), policy.delay_s(site, 2)
            ], f"{site}: backoff schedule perturbed by concurrent callers"
        # distinct sites draw distinct jittered schedules
        assert len({tuple(s) for s in observed.values()}) > 1

    def test_concurrent_accounting_under_thread_safe_collector(self):
        """retry.* counters stay exact when N callers overlap, provided
        the installed collector is the thread-safe one."""
        import threading

        from repro.obs.core import ThreadSafeCollector

        policy = RetryPolicy(max_attempts=4)
        callers = 8
        barrier = threading.Barrier(callers)
        errors: list[BaseException] = []
        collector = ThreadSafeCollector()

        def caller(i: int) -> None:
            try:
                failures = [OSError("a"), OSError("b")]

                def op():
                    barrier.wait(timeout=30)  # maximize overlap
                    if failures:
                        raise failures.pop(0)
                    return i

                assert policy.call(
                    op, site=f"s{i}", sleep=lambda s: None,
                    clock=lambda: 0.0,
                ) == i
            except BaseException as exc:
                errors.append(exc)

        with obs.use_collector(collector):
            threads = [
                threading.Thread(target=caller, args=(i,))
                for i in range(callers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
        assert not errors, errors
        counters = collector.snapshot().counters
        assert counters["retry.attempts"] == 3 * callers
        assert counters["retry.retries"] == 2 * callers
        assert counters["retry.recoveries"] == callers
        assert "retry.giveups" not in counters
