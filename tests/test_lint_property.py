"""Property-based tests: lint agrees with the library's own transformations."""

from hypothesis import given, settings, strategies as st

from repro.lint import lint_spec
from repro.spec import ensure_normal_form, prune_unreachable, random_spec

SEEDS = st.integers(min_value=0, max_value=10_000)
SIZES = st.integers(min_value=2, max_value=7)


def norm_codes(spec):
    return {
        d.code for d in lint_spec(spec, role="service") if d.code.startswith("NORM")
    }


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_normal_form_specs_have_no_norm_errors(seed, size):
    spec = random_spec(
        n_states=size, events=["a", "b", "c"], internal_density=0.15, seed=seed
    )
    normed = ensure_normal_form(spec, conservative_fallback=True)
    report = lint_spec(normed, role="service")
    assert not [d for d in report.errors if d.code.startswith("NORM")], (
        report.describe()
    )


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_pruned_specs_never_report_unreachable_states(seed, size):
    spec = random_spec(
        n_states=size,
        events=["a", "b"],
        seed=seed,
        ensure_connected=False,
    )
    pruned = prune_unreachable(spec)
    assert "SPEC001" not in lint_spec(pruned).codes()


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_lint_is_deterministic(seed, size):
    spec = random_spec(
        n_states=size, events=["a", "b", "c"], internal_density=0.2, seed=seed
    )
    first = lint_spec(spec)
    second = lint_spec(spec)
    assert first.to_json() == second.to_json()


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, size=SIZES)
def test_norm_diagnostics_match_library_verdict(seed, size):
    from repro.spec import is_normal_form

    spec = random_spec(
        n_states=size, events=["a", "b", "c"], internal_density=0.2, seed=seed
    )
    # lint reports a NORM error exactly when the library rejects the spec
    assert bool(norm_codes(spec)) == (not is_normal_form(spec))
