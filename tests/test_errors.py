"""Tests for the exception hierarchy and its structured context."""

import pytest

from repro.errors import (
    AlphabetError,
    CodecError,
    CompositionError,
    DSLError,
    NormalFormError,
    NormalizationError,
    QuotientError,
    ReproError,
    SpecError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            SpecError,
            AlphabetError,
            NormalFormError,
            NormalizationError,
            QuotientError,
            CompositionError,
            DSLError,
            CodecError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_one_catch_at_api_boundary(self):
        """A caller can wrap any library call in one except clause."""
        from repro.spec import Specification

        with pytest.raises(ReproError):
            Specification("m", [], [], [], [], 0)


class TestStructuredContext:
    def test_spec_error_carries_name(self):
        err = SpecError("broken", spec_name="mymachine")
        assert err.spec_name == "mymachine"
        assert "mymachine" in str(err)

    def test_spec_error_without_name(self):
        err = SpecError("broken")
        assert err.spec_name is None
        assert str(err) == "broken"

    def test_normal_form_error_carries_witness(self):
        err = NormalFormError("bad", condition="ii", witness=frozenset({1, 2}))
        assert err.condition == "ii"
        assert err.witness == frozenset({1, 2})

    def test_dsl_error_formats_location(self):
        err = DSLError("oops", line=12, column=3)
        assert err.line == 12
        assert err.column == 3
        assert "line 12" in str(err)
        assert "col 3" in str(err)

    def test_dsl_error_line_only(self):
        assert "line 7" in str(DSLError("oops", line=7))

    def test_dsl_error_without_location(self):
        assert str(DSLError("oops")) == "oops"


class TestRaisedWithContext:
    def test_builder_propagates_spec_name(self):
        from repro.spec import SpecBuilder

        with pytest.raises(SpecError) as err:
            SpecBuilder("frobnicator").build()
        assert "frobnicator" in str(err.value)

    def test_normal_form_error_from_checker(self, internal_cycle):
        from repro.spec import assert_normal_form

        with pytest.raises(NormalFormError) as err:
            assert_normal_form(internal_cycle)
        # the fixture violates both (i) (mixed transitions) and (ii) (cycle);
        # the checker reports the first deterministically
        assert err.value.condition in {"i", "ii"}
        assert err.value.witness is not None

    def test_quotient_error_names_alphabets(self):
        from repro.quotient import QuotientProblem
        from repro.spec import SpecBuilder

        service = SpecBuilder("A").external(0, "x", 0).initial(0).build()
        component = SpecBuilder("B").external(0, "m", 0).initial(0).build()
        with pytest.raises(QuotientError) as err:
            QuotientProblem.build(service, component)
        assert "x" in str(err.value)
