"""Unit tests for progress satisfaction (the prog predicate)."""

import pytest

from repro.errors import NormalFormError
from repro.events import Alphabet
from repro.satisfy import prog, satisfies_progress
from repro.spec import SpecBuilder


class TestProgPredicate:
    def test_holds_when_offering_superset(self, nondet_choice):
        assert prog(nondet_choice, "hub", Alphabet(["l", "r"]))

    def test_holds_when_covering_one_option(self, nondet_choice):
        assert prog(nondet_choice, "hub", Alphabet(["l"]))
        assert prog(nondet_choice, "hub", Alphabet(["r"]))

    def test_fails_when_covering_nothing(self, nondet_choice):
        assert not prog(nondet_choice, "hub", Alphabet([]))
        assert not prog(nondet_choice, "hub", Alphabet(["zzz"]))

    def test_deterministic_hub_single_set(self, alternator):
        assert prog(alternator, 0, Alphabet(["acc"]))
        assert not prog(alternator, 0, Alphabet(["del"]))

    def test_deadlock_option_always_satisfiable(self):
        service = (
            SpecBuilder("svc")
            .external(0, "go", 1)
            .internal(1, 2)     # option: stop forever
            .internal(1, 3)     # option: offer x
            .external(3, "x", 0)
            .state(2)
            .initial(0)
            .build()
        )
        # empty acceptance set of sink {2} is covered by any offering
        assert prog(service, 1, Alphabet([]))


class TestSatisfiesProgress:
    def test_reflexive_on_deterministic(self, alternator):
        assert satisfies_progress(alternator, alternator).holds

    def test_stalling_impl_fails(self, alternator):
        staller = (
            SpecBuilder("stall")
            .external(0, "acc", 1)
            .event("del")
            .initial(0)
            .build()
        )
        result = satisfies_progress(staller, alternator)
        assert not result.holds
        assert result.violation is not None
        assert result.violation.trace == ("acc",)
        assert result.violation.offered == Alphabet([])
        assert "acc" in result.describe() or "del" in result.describe()

    def test_internal_divergence_that_offers_is_fine(self, alternator):
        # impl cycles internally but keeps acc reachable in its closure
        spinner = (
            SpecBuilder("spin")
            .internal(0, 1)
            .internal(1, 0)
            .external(1, "acc", 2)
            .external(2, "del", 0)
            .initial(0)
            .build()
        )
        assert satisfies_progress(spinner, alternator).holds

    def test_impl_settling_on_one_option(self, nondet_choice):
        # service allows settling on 'l' only
        settled = (
            SpecBuilder("impl")
            .external(0, "go", 1)
            .external(1, "l", 0)
            .event("r")
            .initial(0)
            .build()
        )
        assert satisfies_progress(settled, nondet_choice).holds

    def test_impl_offering_neither_option_fails(self, nondet_choice):
        stuck = (
            SpecBuilder("impl")
            .external(0, "go", 1)
            .event("l")
            .event("r")
            .initial(0)
            .build()
        )
        result = satisfies_progress(stuck, nondet_choice)
        assert not result.holds
        assert result.violation.service_hub == "hub"

    def test_impl_nondeterministically_choosing_option(self, nondet_choice):
        # impl internally picks l-side or r-side; each sink covers one option
        chooser = (
            SpecBuilder("impl")
            .external(0, "go", 1)
            .internal(1, 2)
            .internal(1, 3)
            .external(2, "l", 0)
            .external(3, "r", 0)
            .initial(0)
            .build()
        )
        assert satisfies_progress(chooser, nondet_choice).holds

    def test_service_must_be_normal_form(self, internal_cycle):
        impl = (
            SpecBuilder("impl")
            .external(0, "e", 1)
            .external(1, "f", 0)
            .event("g")
            .initial(0)
            .build()
        )
        with pytest.raises(NormalFormError):
            satisfies_progress(impl, internal_cycle)

    def test_fair_implementation_cycle_counts_as_union(self, alternator):
        """An impl sink cycle offers the union of its members' events."""
        # states 1<->2 cycle internally; 1 offers del, so the union covers it
        impl = (
            SpecBuilder("impl")
            .external(0, "acc", 1)
            .internal(1, 2)
            .internal(2, 1)
            .external(1, "del", 0)
            .initial(0)
            .build()
        )
        assert satisfies_progress(impl, alternator).holds

    def test_pairs_explored_reported(self, alternator):
        result = satisfies_progress(alternator, alternator)
        assert result.pairs_explored == 2
