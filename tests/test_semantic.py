"""Tests for the semantic analyzer (``repro.lint.semantic``, SEM2xx).

Each rule gets a purpose-built broken system that triggers exactly it;
the paper scenarios double as the clean corpus (zero errors).  The
kernel and reference product explorers are pinned byte-identical, and
budget trips must carry the partial report.
"""

import json

import pytest

from repro.errors import BudgetExceeded, LintError
from repro.io.dsl import parse_dsl
from repro.lint import (
    LintReport,
    analyze_composition,
    analyze_converter,
    analyze_problem,
    analyze_result,
    analyze_spec,
    explore_product,
)
from repro.protocols import (
    ab_end_to_end,
    colocated_scenario,
    handshake_scenario,
    lossy_handshake_scenario,
    ns_end_to_end,
    symmetric_scenario,
    weakened_symmetric_scenario,
)
from repro.quotient.budget import Budget
from repro.quotient.solve import solve_quotient
from repro.spec.compiled import use_kernel


def specs_of(text):
    return parse_dsl(text)


def codes(report):
    return {d.code for d in report.diagnostics}


SCENARIOS = [
    symmetric_scenario,
    colocated_scenario,
    weakened_symmetric_scenario,
    ns_end_to_end,
    ab_end_to_end,
    handshake_scenario,
    lossy_handshake_scenario,
]


# ----------------------------------------------------------------------
# one purpose-built broken system per rule
# ----------------------------------------------------------------------
class TestSem201DeadState:
    def test_solo_event_keeps_state_live(self):
        # 'solo' is owned by b alone, so it fires freely: state 1 is live
        specs = specs_of(
            """
spec a
    initial 0
    0 -> 0 : ping
end

spec b
    initial 0
    0 -> 0 : ping
    0 -> 1 : solo
    1 -> 1 : ping
end
"""
        )
        report = analyze_composition([specs["a"], specs["b"]])
        assert "SEM201" not in codes(report)

    def test_blocked_sync_makes_state_dead(self):
        # same shape, but 'gate' is shared (a declares it refused): the
        # sync can never happen, so b's state 1 is dead in the product
        # even though it is locally reachable
        specs = specs_of(
            """
spec a
    initial 0
    event gate
    0 -> 0 : ping
end

spec b
    initial 0
    0 -> 0 : ping
    0 -> 1 : gate
    1 -> 1 : ping
end
"""
        )
        report = analyze_composition([specs["a"], specs["b"]])
        found = [d for d in report if d.code == "SEM201"]
        assert [d.state for d in found] == [1]
        assert found[0].spec_name == "b"
        assert found[0].severity == "warning"


class TestSem202NonExecutable:
    def test_blocked_sync_transition(self):
        specs = specs_of(
            """
spec a
    initial 0
    event gate
    0 -> 0 : ping
end

spec b
    initial 0
    0 -> 0 : ping
    0 -> 1 : gate
end
"""
        )
        report = analyze_composition([specs["a"], specs["b"]])
        found = [d for d in report if d.code == "SEM202"]
        assert len(found) == 1
        assert found[0].event == "gate"
        assert found[0].witness == {"source": 0, "event": "gate", "target": 1}

    def test_transitions_from_dead_states_not_double_reported(self):
        specs = specs_of(
            """
spec a
    initial 0
    event gate
    0 -> 0 : ping
end

spec b
    initial 0
    0 -> 0 : ping
    0 -> 1 : gate
    1 -> 0 : ping
end
"""
        )
        report = analyze_composition([specs["a"], specs["b"]])
        # b's 1 -> 0 : ping starts at a SEM201-dead state: only the
        # entering transition (0 --gate--> 1) is reported by SEM202
        sem202 = [d for d in report if d.code == "SEM202"]
        assert [d.witness["source"] for d in sem202] == [0]


class TestSem203UnspecifiedReception:
    def test_forever_refused_receive(self):
        specs = specs_of(
            """
spec chan
    initial 0
    0 -> 1 : -msg
    1 -> 0 : +msg
end

spec peer
    initial 0
    event +msg
    0 -> 0 : -msg
end
"""
        )
        report = analyze_composition([specs["chan"], specs["peer"]])
        found = [d for d in report if d.code == "SEM203"]
        assert found and found[0].severity == "error"
        assert found[0].event == "+msg"
        assert found[0].witness["refusing_part"] == "peer"
        assert found[0].witness["offering_part"] == "chan"
        assert "trace" in found[0].witness

    def test_deferred_reception_is_not_flagged(self):
        # the receiver can't take +msg *now* but can after an external
        # move — the forward-cone rule must stay silent (the AB protocol
        # receiver works exactly like this)
        specs = specs_of(
            """
spec chan
    initial 0
    0 -> 1 : -msg
    1 -> 0 : +msg
end

spec peer
    initial 0
    0 -> 1 : -msg
    1 -> 2 : deliver
    2 -> 0 : +msg
end
"""
        )
        report = analyze_composition([specs["chan"], specs["peer"]])
        assert "SEM203" not in codes(report)

    def test_ab_protocol_end_to_end_has_no_false_positives(self):
        scenario = ab_end_to_end()
        report = analyze_composition(list(scenario.components))
        assert "SEM203" not in codes(report)


class TestSem204Deadlock:
    def test_reachable_deadlock_with_witness_trace(self):
        # after the 'go' sync both machines offer only an event the other
        # co-owns but never enables: the product blocks at (1, 1)
        specs = specs_of(
            """
spec a
    initial 0
    event other
    0 -> 1 : go
    1 -> 2 : stop
end

spec b
    initial 0
    event stop
    0 -> 1 : go
    1 -> 0 : other
end
"""
        )
        report = analyze_composition([specs["a"], specs["b"]])
        found = [d for d in report if d.code == "SEM204"]
        assert len(found) == 1
        assert found[0].severity == "error"
        assert found[0].witness["product_state"] == (1, 1)
        assert found[0].witness["trace"] == ["go"]

    def test_single_spec_terminal_state(self):
        specs = specs_of(
            """
spec s
    initial 0
    0 -> 1 : fin
end
"""
        )
        report = analyze_spec(specs["s"])
        assert "SEM204" in codes(report)


class TestSem205Livelock:
    def test_internal_cycle_with_no_exit(self):
        specs = specs_of(
            """
spec s
    initial 0
    0 -> 1 : start
    1 ~> 2
    2 ~> 1
end
"""
        )
        report = analyze_spec(specs["s"])
        found = [d for d in report if d.code == "SEM205"]
        assert len(found) == 1
        assert found[0].severity == "error"
        assert len(found[0].witness["scc"]) == 2

    def test_cycle_with_exit_is_not_livelock(self):
        specs = specs_of(
            """
spec s
    initial 0
    0 -> 1 : start
    1 ~> 2
    2 ~> 1
    2 -> 0 : escape
end
"""
        )
        report = analyze_spec(specs["s"])
        assert "SEM205" not in codes(report)

    def test_internal_self_loop_is_a_stutter_not_a_livelock(self):
        # the spec layer drops s ~> s (a λ self-loop is a no-op), so the
        # state is simply terminal: SEM204, not SEM205
        specs = specs_of(
            """
spec s
    initial 0
    0 -> 1 : start
    1 ~> 1
end
"""
        )
        report = analyze_spec(specs["s"])
        assert "SEM204" in codes(report)
        assert "SEM205" not in codes(report)


class TestSem206Doomed:
    def test_state_doomed_to_deadlock(self):
        specs = specs_of(
            """
spec s
    initial 0
    0 -> 1 : start
    1 ~> 2
end
"""
        )
        # 2 is the deadlock (SEM204); 1 only moves internally into it
        report = analyze_spec(specs["s"])
        sem206 = [d for d in report if d.code == "SEM206"]
        assert [d.witness["product_state"] for d in sem206] == [(1,)]
        assert sem206[0].severity == "warning"


class TestSem207ConverterCoverage:
    def test_unengaged_state_and_transition(self):
        specs = specs_of(
            """
spec comp
    initial 0
    event x
    0 -> 1 : a
    1 -> 0 : b
end

spec conv
    initial 0
    0 -> 1 : b
    1 -> 0 : a
    0 -> 2 : x
    2 -> 0 : a
end
"""
        )
        report = analyze_converter(specs["comp"], specs["conv"])
        found = [d for d in report if d.code == "SEM207"]
        assert found and all(d.severity == "info" for d in found)
        assert any(d.state == 2 and d.event is None for d in found)
        assert any(d.event == "x" for d in found)

    def test_fully_exercised_converter_is_silent(self):
        # conv moves in lockstep with comp: both syncs fire, every conv
        # state and transition is exercised
        specs = specs_of(
            """
spec comp
    initial 0
    0 -> 1 : a
    1 -> 0 : b
end

spec conv
    initial 0
    0 -> 1 : a
    1 -> 0 : b
end
"""
        )
        report = analyze_converter(specs["comp"], specs["conv"])
        assert "SEM207" not in codes(report)


class TestSem208QuotientMaximality:
    def test_progress_removed_states_reported(self):
        scenario = colocated_scenario()
        result = solve_quotient(
            scenario.service,
            scenario.composite,
            int_events=scenario.interface.int_events,
        )
        assert result.exists
        report = analyze_result(result)
        sem208 = [d for d in report if d.code == "SEM208"]
        assert sem208 and all(d.severity == "info" for d in sem208)
        # the colocated progress phase removes safety-quotient states;
        # each removal is attributed to its round
        assert any("progress round" in d.message for d in sem208)
        assert all(
            d.witness["reason"] for d in sem208
        )

    def test_no_converter_means_no_findings(self):
        scenario = lossy_handshake_scenario()
        result = solve_quotient(
            scenario.service,
            scenario.composite,
            int_events=scenario.interface.int_events,
        )
        assert not result.exists
        report = analyze_result(result)
        assert len(report) == 0


# ----------------------------------------------------------------------
# the seeded broken example (examples/broken_semantic.dsl)
# ----------------------------------------------------------------------
class TestBrokenSemanticExample:
    @pytest.fixture(scope="class")
    def report(self):
        with open("examples/broken_semantic.dsl", encoding="utf-8") as fh:
            specs = parse_dsl(fh.read())
        return analyze_composition([specs["left"], specs["right"]])

    def test_all_product_rules_fire(self, report):
        assert {
            "SEM201", "SEM202", "SEM203", "SEM204", "SEM205", "SEM206"
        } <= codes(report)

    def test_matches_golden(self, report):
        # regenerate (after a deliberate change) with:
        #   PYTHONPATH=src python - <<'EOF'
        #   from repro.io.dsl import parse_dsl
        #   from repro.lint import analyze_composition
        #   specs = parse_dsl(open("examples/broken_semantic.dsl").read())
        #   report = analyze_composition([specs["left"], specs["right"]])
        #   with open("tests/golden/analyze_broken.json", "w") as fh:
        #       fh.write(report.to_json(indent=2) + "\n")
        #   EOF
        with open("tests/golden/analyze_broken.json", encoding="utf-8") as fh:
            golden = fh.read()
        assert report.to_json(indent=2) + "\n" == golden


# ----------------------------------------------------------------------
# clean corpus: the paper scenarios report zero errors
# ----------------------------------------------------------------------
class TestScenariosAreClean:
    @pytest.mark.parametrize("build", SCENARIOS, ids=lambda b: b.__name__)
    def test_component_composition_has_no_errors(self, build):
        scenario = build()
        report = analyze_composition(list(scenario.components))
        assert report.errors == (), report.describe()

    @pytest.mark.parametrize("build", SCENARIOS, ids=lambda b: b.__name__)
    def test_service_is_clean(self, build):
        scenario = build()
        report = analyze_spec(scenario.service)
        assert report.errors == (), report.describe()

    def test_solved_problem_has_no_errors(self):
        scenario = handshake_scenario()
        report = analyze_problem(
            scenario.service,
            scenario.composite,
            scenario.interface.int_events,
        )
        assert report.errors == (), report.describe()


# ----------------------------------------------------------------------
# determinism and the kernel differential
# ----------------------------------------------------------------------
class TestDeterminismAndKernel:
    @pytest.mark.parametrize(
        "build", [ab_end_to_end, colocated_scenario, handshake_scenario],
        ids=lambda b: b.__name__,
    )
    def test_kernel_and_reference_reports_identical(self, build):
        scenario = build()
        parts = list(scenario.components)
        kernel_report = analyze_composition(parts)
        with use_kernel(False):
            reference_report = analyze_composition(parts)
        assert kernel_report.to_json() == reference_report.to_json()

    @pytest.mark.parametrize(
        "build", [ab_end_to_end, handshake_scenario], ids=lambda b: b.__name__
    )
    def test_product_graphs_identical(self, build):
        parts = list(build().components)
        kernel_graph = explore_product(parts)
        with use_kernel(False):
            reference_graph = explore_product(parts)
        assert kernel_graph.vectors == reference_graph.vectors
        assert kernel_graph.ext_out == reference_graph.ext_out
        assert kernel_graph.int_out == reference_graph.int_out
        assert kernel_graph.parents == reference_graph.parents

    def test_repeated_runs_byte_identical(self):
        parts = list(ab_end_to_end().components)
        first = analyze_composition(parts).to_json()
        second = analyze_composition(parts).to_json()
        assert first == second

    def test_json_rendering_is_loadable_and_sorted(self):
        with open("examples/broken_semantic.dsl", encoding="utf-8") as fh:
            specs = parse_dsl(fh.read())
        report = analyze_composition(list(specs.values()))
        payload = json.loads(report.to_json())
        assert payload["summary"]["errors"] == len(report.errors)


# ----------------------------------------------------------------------
# budget discipline
# ----------------------------------------------------------------------
class TestBudget:
    def test_budget_trip_carries_partial_report(self):
        parts = list(weakened_symmetric_scenario().components)
        with pytest.raises(BudgetExceeded) as exc_info:
            analyze_composition(parts, budget=Budget(max_pairs=3))
        partial = exc_info.value.partial_report
        assert isinstance(partial, LintReport)

    def test_untripped_budget_is_byte_identical(self):
        parts = list(ab_end_to_end().components)
        unbudgeted = analyze_composition(parts)
        budgeted = analyze_composition(parts, budget=Budget(max_pairs=10**9))
        assert unbudgeted.to_json() == budgeted.to_json()

    def test_analyze_problem_attaches_earlier_reports(self):
        scenario = handshake_scenario()
        with pytest.raises(BudgetExceeded) as exc_info:
            analyze_problem(
                scenario.service,
                scenario.composite,
                scenario.interface.int_events,
                budget=Budget(max_pairs=2),
            )
        assert isinstance(exc_info.value.partial_report, LintReport)


# ----------------------------------------------------------------------
# the solve_quotient(deep_preflight=True) hook
# ----------------------------------------------------------------------
class TestDeepPreflight:
    def test_clean_problem_solves_normally(self):
        scenario = handshake_scenario()
        result = solve_quotient(
            scenario.service,
            scenario.composite,
            int_events=scenario.interface.int_events,
            deep_preflight=True,
        )
        assert result.exists

    def test_livelocked_component_is_rejected_with_witness(self):
        specs = specs_of(
            """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
    2 ~> 3
    3 ~> 4
    4 ~> 3
end
"""
        )
        with pytest.raises(LintError) as exc_info:
            solve_quotient(
                specs["service"], specs["component"], deep_preflight=True
            )
        assert "SEM205" in str(exc_info.value)

    def test_default_solve_does_not_run_semantic_pass(self):
        # the same livelocked component passes without deep_preflight
        specs = specs_of(
            """
spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
    2 ~> 3
    3 ~> 4
    4 ~> 3
end
"""
        )
        result = solve_quotient(specs["service"], specs["component"])
        assert result is not None
