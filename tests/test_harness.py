"""Tests for the stress harness's reporting surface."""

from repro.protocols import (
    alternating_service,
    ns_channel,
    ns_receiver,
    ns_sender,
    sw_channel,
    sw_receiver,
    sw_sender,
)
from repro.simulate import BiasedPolicy, simulate_system, stress


class TestRunReport:
    def test_ok_requires_monitor_and_liveness(self):
        components = [sw_sender(), sw_channel(), sw_receiver()]
        report = simulate_system(
            components, alternating_service(), steps=300, seed=0
        )
        assert report.ok
        assert not report.deadlocked
        assert report.monitor.ok

    def test_counts_partition_moves(self):
        components = [sw_sender(), sw_channel(), sw_receiver()]
        report = simulate_system(
            components, alternating_service(), steps=400, seed=1
        )
        assert set(report.external_counts) <= {"acc", "del"}
        # the channel handoffs are interactions
        assert any(e.startswith(("-", "+")) for e in report.interaction_counts)
        assert report.steps <= 400

    def test_describe_contains_counts(self):
        components = [sw_sender(), sw_channel(), sw_receiver()]
        report = simulate_system(
            components, alternating_service(), steps=100, seed=2
        )
        text = report.describe()
        assert "seed 2" in text
        assert "acc" in text


class TestStressReport:
    def _ns(self):
        return [ns_sender(), ns_channel(), ns_receiver()]

    def test_violations_listed(self):
        report = stress(
            self._ns(),
            alternating_service(),
            seeds=range(8),
            steps=1200,
        )
        # under the default fair policy, NS duplicates eventually appear
        # in at least one seed (loss + retransmission)
        if report.violations:
            assert not report.all_ok
            assert "violation" in report.describe()
            for run in report.violations:
                assert not run.monitor.ok
        else:
            # fair policy may dodge duplicates in short runs; push harder
            pushed = [
                simulate_system(
                    self._ns(),
                    alternating_service(),
                    steps=1500,
                    seed=s,
                    policy=BiasedPolicy({"internal": 10.0, "del": 5.0}, seed=s),
                )
                for s in range(10)
            ]
            assert any(not r.monitor.ok for r in pushed)

    def test_total_external_sums_runs(self):
        components = [sw_sender(), sw_channel(), sw_receiver()]
        report = stress(
            components, alternating_service(), seeds=range(3), steps=200
        )
        assert report.total_external("del") == sum(
            r.external_counts.get("del", 0) for r in report.runs
        )

    def test_all_ok_on_clean_protocol(self):
        components = [sw_sender(), sw_channel(), sw_receiver()]
        report = stress(
            components, alternating_service(), seeds=range(4), steps=300
        )
        assert report.all_ok
        assert not report.deadlocks
