"""Differential suite for the sharded parallel kernel.

The pinned contract (see :mod:`repro.quotient.parallel`): for ANY problem
and ANY worker count, the parallel merge loops produce results identical
to the sequential kernel — same converter, same ``f``, same safety
machine, same deterministic work counters, same budget trip points, same
checkpoints.  Worker counts only change *scheduling*, never outputs.

The bulk of the suite drives the parallel code paths through
:class:`~repro.quotient.parallel.SerialExecutor` (the "everything stolen
back" schedule) via the executor-factory seam, so hundreds of random
problems run without paying process spawns; a smaller set of tests runs
real :class:`~repro.quotient.parallel.ShardExecutor` pools at workers
∈ {2, 4} to pin the multiprocessing path itself.  Checkpoints cross
worker counts in both directions (written at 4, resumed at 1, and vice
versa) and are JSON round-tripped, as in ``test_resume_differential``.
"""

import json

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import obs
from repro.errors import BudgetExceeded, InterruptRequested
from repro.faults import fault_model
from repro.lint.semantic import analyze_problem
from repro.persist import Checkpoint, InterruptController
from repro.protocols.configs import colocated_scenario
from repro.quotient import Budget, BudgetMeter, solve_quotient, use_workers
from repro.quotient.parallel import (
    SerialExecutor,
    ShardExecutor,
    _use_executor_factory,
)
from repro.spec import random_quotient_instance

SEEDS = st.integers(min_value=0, max_value=10_000)
FRACTIONS = st.floats(min_value=0.0, max_value=1.0)

#: Deterministic work counters that must be identical at any worker count
#: (kernel.parallel.* — scheduling stats — are deliberately excluded).
DETERMINISTIC_PREFIXES = ("quotient.",)


def _solve(instance, **kwargs):
    service, component, internal, _ = instance
    return solve_quotient(service, component, int_events=internal, **kwargs)


def _key(result):
    return (
        result.exists,
        result.converter,
        result.f,
        result.c0,
        result.c0_f,
        result.safety.spec,
        result.safety.f,
        result.safety.explored,
        result.safety.rejected,
        None if result.progress is None else result.progress.rounds,
        None if result.verification is None else result.verification.holds,
    )


def _work_counters(stats):
    return {
        name: value
        for name, value in stats.counters.items()
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


# ----------------------------------------------------------------------
# parallel merge vs sequential kernel: solve / analyze / resilience paths
# ----------------------------------------------------------------------
class TestParallelMergeDifferential:
    """SerialExecutor-driven sweeps: parallel loops, no process spawns."""

    @settings(max_examples=100, deadline=None)
    @given(seed=SEEDS, workers=st.integers(min_value=2, max_value=5))
    def test_solve_identical(self, seed, workers):
        instance = random_quotient_instance(seed=seed)
        baseline = _solve(instance)
        with _use_executor_factory(SerialExecutor):
            parallel = _solve(instance, workers=workers)
        assert _key(parallel) == _key(baseline)

    @settings(max_examples=30, deadline=None)
    @given(seed=SEEDS)
    def test_analyze_identical(self, seed):
        service, component, internal, _ = random_quotient_instance(seed=seed)
        baseline = analyze_problem(service, component, internal)
        with _use_executor_factory(SerialExecutor), use_workers(2):
            parallel = analyze_problem(service, component, internal)
        assert parallel.diagnostics == baseline.diagnostics

    # random seeds whose instances admit a converter (so the sweep has a
    # converter to judge); found by scanning seeds 0..400
    CONVERTER_SEEDS = (1, 18, 20, 22, 53, 54, 70, 105, 106, 135, 138, 140)

    @pytest.mark.parametrize("seed", CONVERTER_SEEDS)
    def test_resilience_identical(self, seed):
        from repro.faults import evaluate_resilience

        instance = random_quotient_instance(seed=seed)
        service, component, internal, _ = instance
        base_solve = _solve(instance)
        assert base_solve.exists
        grid = [fault_model("loss", 1)]
        baseline = evaluate_resilience(
            service, [component], base_solve.converter,
            int_events=internal, grid=grid, target=0,
        )
        with _use_executor_factory(SerialExecutor):
            parallel = evaluate_resilience(
                service, [component], base_solve.converter,
                int_events=internal, grid=grid, target=0, workers=3,
            )
        assert parallel.to_json_dict() == baseline.to_json_dict()

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, fraction=FRACTIONS)
    def test_budget_trips_at_identical_unit(self, seed, fraction):
        """A count budget trips on the same unit of work at any worker
        count, with identical partial stats and checkpoint payloads."""
        instance = random_quotient_instance(seed=seed)
        probe = InterruptController()
        _solve(instance, interrupt=probe)
        total = probe.charges
        assume(total >= 2)
        limit = max(1, round(fraction * (total - 1)))
        budget = Budget(max_pairs=limit)

        def trip(**kwargs):
            try:
                _solve(instance, budget=budget, **kwargs)
            except BudgetExceeded as exc:
                return exc.phase, exc.partial, exc.checkpoint.to_json_dict()
            return None

        baseline = trip()
        assume(baseline is not None)  # limit above the phases' pair count
        with _use_executor_factory(SerialExecutor):
            parallel = trip(workers=4)
        # elapsed_s is wall-clock; everything else must match exactly
        assert parallel is not None
        for got, want in ((parallel[1], baseline[1]),):
            got, want = dict(got), dict(want)
            got.pop("elapsed_s"), want.pop("elapsed_s")
            assert got == want
        assert parallel[0] == baseline[0]
        assert parallel[2] == baseline[2]


# ----------------------------------------------------------------------
# checkpoints cross worker counts (4 -> 1, 1 -> 4)
# ----------------------------------------------------------------------
def _interrupt_resume_across(instance, fraction, ckpt_workers, resume_workers):
    """Interrupt under one worker count, resume under another."""
    probe = InterruptController()
    with use_workers(ckpt_workers):
        baseline = _solve(instance, interrupt=probe)
    total = probe.charges
    if total < 2:  # trivial runs have no interior boundary
        return None
    at_charge = 1 + round(fraction * (total - 2))
    try:
        with use_workers(ckpt_workers):
            _solve(instance, interrupt=InterruptController(at_charge=at_charge))
    except InterruptRequested as exc:
        ckpt = exc.checkpoint
        assert ckpt is not None
        ckpt = Checkpoint.from_json_dict(
            json.loads(json.dumps(ckpt.to_json_dict()))
        )
        with use_workers(resume_workers):
            resumed = _solve(instance, resume_from=ckpt)
        return _key(baseline), _key(resumed)
    raise AssertionError(
        f"interrupt at charge {at_charge}/{total} never fired"
    )


class TestResumeAcrossWorkerCounts:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, fraction=FRACTIONS)
    def test_checkpoint_at_4_resumed_at_1(self, seed, fraction):
        instance = random_quotient_instance(seed=seed)
        with _use_executor_factory(SerialExecutor):
            outcome = _interrupt_resume_across(instance, fraction, 4, 1)
        assume(outcome is not None)
        baseline, resumed = outcome
        assert resumed == baseline

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, fraction=FRACTIONS)
    def test_checkpoint_at_1_resumed_at_4(self, seed, fraction):
        instance = random_quotient_instance(seed=seed)
        with _use_executor_factory(SerialExecutor):
            outcome = _interrupt_resume_across(instance, fraction, 1, 4)
        assume(outcome is not None)
        baseline, resumed = outcome
        assert resumed == baseline

    def test_real_pool_checkpoint_crosses_worker_counts(self):
        """One non-hypothesis case through actual worker pools."""
        instance = random_quotient_instance(seed=7)
        for ckpt_workers, resume_workers in ((2, 1), (1, 2)):
            outcome = _interrupt_resume_across(
                instance, 0.5, ckpt_workers, resume_workers
            )
            assert outcome is not None
            baseline, resumed = outcome
            assert resumed == baseline


# ----------------------------------------------------------------------
# real multiprocessing pools
# ----------------------------------------------------------------------
class TestRealPool:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_solve_identical_and_counters_deterministic(self, workers):
        for seed in (0, 3, 11):
            instance = random_quotient_instance(seed=seed)
            with obs.use_collector():
                baseline = _solve(instance)
            with obs.use_collector():
                parallel = _solve(instance, workers=workers)
            assert _key(parallel) == _key(baseline)
            # deterministic work counters identical; only kernel.parallel.*
            # (scheduling stats) may differ from the sequential run
            assert _work_counters(parallel.stats) == _work_counters(
                baseline.stats
            )
            assert parallel.stats.counters["kernel.parallel.tasks"] >= 0

    def test_colocated_scenario_json_identical(self):
        scenario = colocated_scenario()
        baseline = solve_quotient(
            scenario.service,
            scenario.composite,
            int_events=scenario.interface.int_events,
        )
        with use_workers(2):
            parallel = solve_quotient(
                scenario.service,
                scenario.composite,
                int_events=scenario.interface.int_events,
            )
        assert _key(parallel) == _key(baseline)

    def test_shard_executor_steals_unsubmitted_units(self):
        """result() on a backlogged key computes inline (work-stealing)."""
        scenario = colocated_scenario()
        from repro.quotient.types import QuotientProblem

        problem = QuotientProblem.build(
            scenario.service,
            scenario.composite,
            scenario.interface.int_events,
        )
        executor = ShardExecutor(problem, 2)
        try:
            cp = executor._cp
            start = cp.ext_closure(
                [cp.ca.initial * cp.n_component + cp.cb.initial]
            )
            assert start is not None
            # enqueue without pumping: the unit sits in the backlog, not
            # yet handed to the pool, so result() must compute it inline
            key = ("steal", start)
            executor._payload[key] = ("safety", (start,))
            executor._backlog.append(key)
            out = executor.result(key)
            assert executor.stats["stolen"] == 1
            expected = tuple(
                cp.extend(start, k) for k in range(len(cp.int_events))
            )
            assert out == expected
        finally:
            executor.close()


# ----------------------------------------------------------------------
# workers=1 fast path: the pool machinery is never constructed
# ----------------------------------------------------------------------
class TestSequentialFastPath:
    def test_workers_one_never_builds_an_executor(self):
        def boom(problem, workers):
            raise AssertionError("executor constructed on the workers=1 path")

        instance = random_quotient_instance(seed=0)
        with _use_executor_factory(boom), use_workers(1):
            result = _solve(instance)  # ambient sequential count
            explicit = _solve(instance, workers=1)
        assert _key(explicit) == _key(result)
        # sanity: the same factory seam *is* exercised at workers >= 2
        with _use_executor_factory(boom):
            with pytest.raises(AssertionError, match="executor constructed"):
                _solve(instance, workers=2)

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            use_workers(0).__enter__()
        instance = random_quotient_instance(seed=0)
        with pytest.raises(ValueError):
            _solve(instance, workers=-3)


# ----------------------------------------------------------------------
# BudgetMeter per-unit accounting (regression: stolen-shard dedup)
# ----------------------------------------------------------------------
class TestMeterUnitAccounting:
    def test_absorb_never_double_counts_stolen_unit(self):
        """A unit charged by the coordinator (steal-back) and again by the
        shard that originally owned it counts once after the merge."""
        meter = BudgetMeter(Budget(), "safety")
        shard = meter.fork()
        for i in (3, 4, 5):
            shard.charge_unit(("u", i), pairs=1, states=1)
        for i in (0, 1, 2, 3):  # ("u", 3) stolen mid-unit: charged twice
            meter.charge_unit(("u", i), pairs=1, states=1)
        meter.absorb(shard)
        assert meter.pairs == 6  # distinct units, not 7 raw charges
        assert meter.states == 6

    def test_absorb_trips_at_the_sequential_unit(self):
        """The budget trip point after a merge is the unit the sequential
        order would have tripped on, regardless of shard scheduling."""
        budget = Budget(max_pairs=5)
        sequential = BudgetMeter(budget, "safety")
        with pytest.raises(BudgetExceeded):
            for i in range(10):
                sequential.charge_unit(("u", i), pairs=1)
        trip_pairs = sequential.pairs
        trip_unit = list(sequential._units)[-1]

        merged = BudgetMeter(budget, "safety")
        shard = merged.fork()
        for i in (3, 4, 5, 6):  # shard locally under budget: no trip
            shard.charge_unit(("u", i), pairs=1)
        for i in (0, 1, 2, 3):  # ("u", 3) stolen: also charged here
            merged.charge_unit(("u", i), pairs=1)
        with pytest.raises(BudgetExceeded):
            merged.absorb(shard)
        assert merged.pairs == trip_pairs
        assert list(merged._units)[-1] == trip_unit

    def test_charge_unit_is_idempotent_per_id(self):
        meter = BudgetMeter(Budget(max_pairs=3), "safety")
        for _ in range(10):
            meter.charge_unit("only", pairs=1)
        assert meter.pairs == 1

    def test_absorb_unforked_child_is_noop(self):
        meter = BudgetMeter(Budget(), "safety")
        plain = BudgetMeter(Budget(), "safety")
        plain.charge(pairs=4)  # plain charges keep no unit ledger
        meter.absorb(plain)
        assert meter.pairs == 0
