"""Unit tests for the Section 6 architecture modeling."""

import pytest

from repro.arch import (
    LayerEntity,
    Stack,
    asymmetric_conversion_scenario,
    concatenated_system,
    concatenation_loses_end_to_end_sync,
    end_to_end_system,
    front_man_scenario,
    pass_through_entity,
    stack_composite,
    transport_conversion_scenario,
)
from repro.errors import CompositionError
from repro.events import Alphabet
from repro.protocols import (
    alternating_service,
    sw_channel,
    sw_receiver,
    sw_sender,
)
from repro.quotient import solve_quotient
from repro.satisfy import satisfies, satisfies_safety
from repro.spec import SpecBuilder
from repro.traces import accepts


class TestPassThrough:
    def test_relay_behaviour(self):
        pt = pass_through_entity(receive="in", forward="out")
        assert accepts(pt, ("in", "out", "in", "out"))
        assert not accepts(pt, ("out",))
        assert not accepts(pt, ("in", "in"))  # capacity 1

    def test_capacity(self):
        pt = pass_through_entity(receive="in", forward="out", capacity=3)
        assert accepts(pt, ("in", "in", "in"))
        assert not accepts(pt, ("in", "in", "in", "in"))
        assert accepts(pt, ("in", "in", "out", "in", "out"))


class TestConcatenation:
    def test_system_builds_with_user_interface(self):
        system = concatenated_system()
        assert system.alphabet == Alphabet(["acc", "del"])

    def test_fig16_anomaly_detected(self):
        finding = concatenation_loses_end_to_end_sync()
        assert finding.holds
        assert "acc.acc" in finding.detail

    def test_concatenation_still_delivers(self):
        """A weak guarantee survives: nothing is delivered before the first
        accept (the B side only ever forwards what the relay handed over).
        Stronger per-message accounting fails twice over: accepts run ahead
        (lost sync) and the NS side may duplicate deliveries."""
        system = concatenated_system()
        causal = (
            SpecBuilder("causal")
            .external(0, "acc", 1)
            .external(1, "acc", 1)
            .external(1, "del", 1)
            .initial(0)
            .build()
        )
        assert satisfies_safety(system, causal).holds
        # and the duplicate anomaly is real:
        from repro.protocols import windowed_alternating_service

        buffered = windowed_alternating_service(3)
        result = satisfies_safety(system, buffered)
        assert result.counterexample == ("acc", "del", "del")


class TestTransportScenarios:
    def test_fig17_symmetric_has_no_converter(self):
        scen = transport_conversion_scenario()
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        assert not result.exists

    def test_fig18_asymmetric_has_converter(self):
        scen = asymmetric_conversion_scenario()
        result = solve_quotient(
            scen.service, scen.composite, int_events=scen.interface.int_events
        )
        assert result.exists
        assert result.verification.holds

    def test_front_man_is_colocated_shape(self):
        scen = front_man_scenario()
        assert "front-man" in scen.title
        assert scen.interface.ext_events == Alphabet(["acc", "del"])


class TestStackModel:
    def _transport_entity(self):
        return LayerEntity(
            spec=sw_sender(),
            upper=Alphabet(["acc"]),
            lower=Alphabet(["-P", "+K"]),
        )

    def test_layer_entity_validation(self):
        with pytest.raises(CompositionError, match="overlap"):
            LayerEntity(
                spec=sw_sender(),
                upper=Alphabet(["acc"]),
                lower=Alphabet(["acc", "-P"]),
            )
        with pytest.raises(CompositionError, match="not in the alphabet"):
            LayerEntity(
                spec=sw_sender(),
                upper=Alphabet(["acc", "zzz"]),
                lower=Alphabet(["-P", "+K"]),
            )

    def test_stack_interface_mismatch_detected(self):
        lower = LayerEntity(
            spec=sw_channel(),
            upper=Alphabet(["-P", "+K", "+P", "-K"]),
            lower=Alphabet([]),
        )
        upper = LayerEntity(
            spec=sw_sender(),
            upper=Alphabet(["acc"]),
            lower=Alphabet(["-P"]),  # forgot +K
        )
        with pytest.raises(CompositionError, match="does not match"):
            Stack("host", (lower, upper)).validate()

    def test_empty_stack_rejected(self):
        with pytest.raises(CompositionError, match="empty"):
            Stack("host", ()).validate()

    def test_stack_composite_hides_layer_interface(self):
        # a two-entity stack: channel below, sender above
        lower = LayerEntity(
            spec=sw_channel(),
            upper=Alphabet(["-P", "+K"]),
            lower=Alphabet([]),
        )
        upper = LayerEntity(
            spec=sw_sender(),
            upper=Alphabet(["acc"]),
            lower=Alphabet(["-P", "+K"]),
        )
        composite = stack_composite(Stack("host", (lower, upper)))
        assert "-P" not in composite.alphabet
        assert "acc" in composite.alphabet
        # the channel's other side stays open
        assert "+P" in composite.alphabet

    def test_end_to_end_system(self):
        system = end_to_end_system(sw_sender(), sw_channel(), sw_receiver())
        assert system.alphabet == Alphabet(["acc", "del"])
        assert satisfies(system, alternating_service()).holds
