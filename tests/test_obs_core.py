"""Unit tests for the observability core: spans, counters, collectors."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import MetricsCollector, NullCollector, SpanRecord


class FakeClock:
    """A deterministic clock advancing by a fixed step per call."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def collector():
    """A recording collector installed for the duration of the test."""
    with obs.use_collector(MetricsCollector(clock=FakeClock())) as active:
        yield active


class TestNullCollector:
    def test_default_collector_is_null(self):
        assert isinstance(obs.current_collector(), NullCollector)
        assert not obs.current_collector().recording

    def test_span_returns_shared_noop_handle(self):
        first = obs.span("a", attr=1)
        second = obs.span("b")
        assert first is second  # no allocation on the disabled path
        with first as sp:
            sp.set(anything="ignored")

    def test_add_and_gauge_are_noops(self):
        obs.add("counter", 5)
        obs.gauge("gauge", 7)
        assert obs.snapshot_if_recording() is None


class TestSpans:
    def test_nesting_builds_parent_links(self, collector):
        with obs.span("root"):
            with obs.span("child"):
                with obs.span("grandchild"):
                    pass
            with obs.span("sibling"):
                pass
        snap = collector.snapshot()
        by_name = {s.name: s for s in snap.spans}
        assert by_name["root"].parent is None
        assert by_name["child"].parent == by_name["root"].index
        assert by_name["grandchild"].parent == by_name["child"].index
        assert by_name["sibling"].parent == by_name["root"].index
        assert snap.children_of(by_name["root"].index) == (
            by_name["child"],
            by_name["sibling"],
        )

    def test_timing_is_monotonic_and_nested(self, collector):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        snap = collector.snapshot()
        outer, inner = snap.find("outer")[0], snap.find("inner")[0]
        assert outer.start <= inner.start
        assert inner.end is not None and outer.end is not None
        assert inner.start <= inner.end <= outer.end
        assert outer.duration >= inner.duration > 0

    def test_attrs_at_open_and_via_set(self, collector):
        with obs.span("work", size=3) as sp:
            sp.set(result="ok", extra=7)
        (record,) = collector.snapshot().find("work")
        assert record.attrs == {"size": 3, "result": "ok", "extra": 7}

    def test_open_span_has_zero_duration(self, collector):
        collector.span_start("never_closed")
        (record,) = collector.snapshot().find("never_closed")
        assert record.end is None
        assert record.duration == 0.0

    def test_out_of_order_end_unwinds_stack(self, collector):
        outer = collector.span_start("outer")
        collector.span_start("inner")
        collector.span_end(outer)  # ends outer while inner is still open
        after = collector.span_start("after")
        assert collector.spans[after].parent is None

    def test_exception_still_closes_span(self, collector):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        (record,) = collector.snapshot().find("failing")
        assert record.end is not None


class TestCountersAndGauges:
    def test_counters_accumulate(self, collector):
        obs.add("pairs")
        obs.add("pairs", 4)
        obs.add("other", 2.5)
        snap = collector.snapshot()
        assert snap.counters == {"pairs": 5, "other": 2.5}

    def test_gauges_last_write_wins(self, collector):
        obs.gauge("states", 10)
        obs.gauge("states", 3)
        assert collector.snapshot().gauges == {"states": 3}

    def test_ops_counts_every_call(self, collector):
        before = collector.ops
        with obs.span("s"):
            obs.add("c")
            obs.gauge("g", 1)
        # span_start + add + gauge + span_end
        assert collector.ops == before + 4


class TestCollectorManagement:
    def test_use_collector_restores_previous(self):
        outer = obs.current_collector()
        with obs.use_collector() as active:
            assert obs.current_collector() is active
            with obs.use_collector() as nested:
                assert obs.current_collector() is nested
            assert obs.current_collector() is active
        assert obs.current_collector() is outer

    def test_set_collector_returns_previous(self):
        mine = MetricsCollector()
        previous = obs.set_collector(mine)
        try:
            assert obs.current_collector() is mine
        finally:
            assert obs.set_collector(previous) is mine

    def test_snapshot_is_frozen(self, collector):
        with obs.span("before"):
            obs.add("n")
        snap = collector.snapshot()
        with obs.span("after"):
            obs.add("n", 10)
        assert snap.counters == {"n": 1}
        assert len(snap.find("after")) == 0
        assert len(collector.snapshot().find("after")) == 1

    def test_snapshot_if_recording(self, collector):
        obs.add("x")
        snap = obs.snapshot_if_recording()
        assert snap is not None and snap.counters == {"x": 1}

    def test_find_returns_spans_in_start_order(self, collector):
        for _ in range(3):
            with obs.span("loop"):
                pass
        found = collector.snapshot().find("loop")
        assert [s.name for s in found] == ["loop"] * 3
        assert [s.start for s in found] == sorted(s.start for s in found)


class TestSpanRecord:
    def test_duration_property(self):
        record = SpanRecord(index=0, name="x", parent=None, start=1.0, end=3.5)
        assert record.duration == 2.5


class TestNestedCollectors:
    """use_collector must compose: nested and re-entrant scopes are legal.

    The resilience sweep records per-cell solves while the CLI records the
    whole run, so a collector is routinely installed inside another one.
    """

    def test_nested_collectors_record_independently(self):
        outer = MetricsCollector()
        inner = MetricsCollector()
        with obs.use_collector(outer):
            obs.add("n", 1)
            with obs.use_collector(inner):
                obs.add("n", 10)
                obs.event("inner.only")
            obs.add("n", 1)
        assert outer.counters["n"] == 2
        assert inner.counters["n"] == 10
        assert [e.name for e in inner.events] == ["inner.only"]
        assert outer.events == []
        assert isinstance(obs.current_collector(), NullCollector)

    def test_reentrant_same_collector(self):
        collector = MetricsCollector()
        with obs.use_collector(collector):
            obs.add("n", 1)
            with obs.use_collector(collector):
                obs.add("n", 1)
                with obs.use_collector(collector):
                    obs.add("n", 1)
            obs.add("n", 1)
        assert collector.counters["n"] == 4
        assert isinstance(obs.current_collector(), NullCollector)

    def test_spans_survive_nested_scope_of_another_collector(self):
        outer = MetricsCollector(clock=FakeClock())
        with obs.use_collector(outer):
            with obs.span("outer.work"):
                with obs.use_collector(MetricsCollector()):
                    with obs.span("inner.work"):
                        pass
        names = [s.name for s in outer.snapshot().spans]
        assert names == ["outer.work"]

    def test_inner_exception_restores_outer(self):
        outer = MetricsCollector()
        with obs.use_collector(outer):
            with pytest.raises(RuntimeError):
                with obs.use_collector(MetricsCollector()):
                    raise RuntimeError("boom")
            assert obs.current_collector() is outer
            obs.add("after", 1)
        assert outer.counters["after"] == 1


class TestEvents:
    def test_events_record_name_time_attrs(self):
        collector = MetricsCollector(clock=FakeClock())
        with obs.use_collector(collector):
            obs.event("checkpoint.write", path="x.ckpt")
            obs.event("interrupt", reason="sigint")
        snap = collector.snapshot()
        assert [e.name for e in snap.events] == ["checkpoint.write", "interrupt"]
        assert snap.events[0].attrs == {"path": "x.ckpt"}
        assert snap.events[0].ts < snap.events[1].ts

    def test_event_is_noop_without_collector(self):
        obs.event("nobody.listening", detail=1)  # must not raise

    def test_events_count_toward_ops(self):
        collector = MetricsCollector()
        with obs.use_collector(collector):
            obs.event("e")
        assert collector.ops == 1
