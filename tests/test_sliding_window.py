"""Tests for the sliding-window protocol family."""

import pytest

from repro.errors import SpecError
from repro.protocols import (
    alternating_service,
    sw_window_channel,
    sw_window_receiver,
    sw_window_sender,
    sw_window_system,
    windowed_alternating_service,
)
from repro.satisfy import satisfies, satisfies_safety
from repro.traces import accepts


class TestSender:
    def test_window_one_alternates(self):
        s = sw_window_sender(1)
        assert accepts(s, ("acc", "-p0", "+k0", "acc", "-p1", "+k1"))
        assert not accepts(s, ("acc", "acc"))
        assert not accepts(s, ("-p0",))

    def test_window_two_pipelines(self):
        s = sw_window_sender(2)
        assert accepts(s, ("acc", "-p0", "acc", "-p1", "+k0", "+k1"))
        # window full: third accept must wait for an ack
        assert not accepts(s, ("acc", "-p0", "acc", "-p1", "acc"))
        assert accepts(s, ("acc", "-p0", "acc", "-p1", "+k0", "acc"))

    def test_cumulative_ack_slides_base(self):
        s = sw_window_sender(2)
        # acking p1 implicitly acks p0 (base slides past both)
        assert accepts(s, ("acc", "-p0", "acc", "-p1", "+k1", "acc", "-p2"))

    def test_invalid_window(self):
        with pytest.raises(SpecError):
            sw_window_sender(0)


class TestReceiver:
    def test_in_order_delivery(self):
        r = sw_window_receiver(1)
        assert accepts(r, ("+p0", "del", "-k0", "+p1", "del", "-k1"))

    def test_stale_data_reacked_not_delivered(self):
        r = sw_window_receiver(1)
        # after delivering p0, a retransmitted p0 yields a re-ack, no del
        assert accepts(r, ("+p0", "del", "-k0", "+p0", "-k0"))
        assert not accepts(r, ("+p0", "del", "-k0", "+p0", "del"))


class TestChannel:
    def test_fifo_order(self):
        ch = sw_window_channel(2)
        assert accepts(ch, ("-p0", "-p1", "+p0", "+p1"))
        assert not accepts(ch, ("-p0", "-p1", "+p1"))

    def test_capacity(self):
        ch = sw_window_channel(1)
        assert not accepts(ch, ("-p0", "-p1"))


class TestSystem:
    @pytest.mark.parametrize("window", [1, 2])
    def test_satisfies_windowed_service(self, window):
        system = sw_window_system(window)
        service = windowed_alternating_service(window)
        assert satisfies(system, service).holds

    def test_window_one_equals_alternation(self):
        system = sw_window_system(1)
        assert satisfies(system, alternating_service()).holds

    def test_window_two_exceeds_window_one_service(self):
        system = sw_window_system(2)
        result = satisfies_safety(system, windowed_alternating_service(1))
        assert not result.holds
        assert result.counterexample == ("acc", "acc")

    def test_user_interface_only(self):
        assert set(sw_window_system(2).alphabet) == {"acc", "del"}

    def test_state_count_grows_with_window(self):
        assert len(sw_window_system(2).states) > len(sw_window_system(1).states)
