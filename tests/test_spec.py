"""Unit tests for the Specification value object."""

import pytest

from repro.errors import SpecError
from repro.events import Alphabet
from repro.spec import SpecBuilder, Specification


def make(name="M", **kw):
    defaults = dict(
        states=[0, 1],
        alphabet=["a", "b"],
        external=[(0, "a", 1)],
        internal=[(1, 0)],
        initial=0,
    )
    defaults.update(kw)
    return Specification(name, **defaults)


class TestConstruction:
    def test_minimal_spec(self):
        spec = Specification("m", [0], [], [], [], 0)
        assert spec.states == frozenset([0])
        assert spec.initial == 0
        assert len(spec) == 1

    def test_empty_states_rejected(self):
        with pytest.raises(SpecError, match="nonempty"):
            Specification("m", [], [], [], [], 0)

    def test_initial_must_be_a_state(self):
        with pytest.raises(SpecError, match="initial state"):
            Specification("m", [0], [], [], [], 7)

    def test_external_unknown_source_rejected(self):
        with pytest.raises(SpecError, match="source"):
            Specification("m", [0], ["a"], [(9, "a", 0)], [], 0)

    def test_external_unknown_target_rejected(self):
        with pytest.raises(SpecError, match="target"):
            Specification("m", [0], ["a"], [(0, "a", 9)], [], 0)

    def test_event_outside_alphabet_rejected(self):
        with pytest.raises(SpecError, match="not in alphabet"):
            Specification("m", [0], ["a"], [(0, "zz", 0)], [], 0)

    def test_internal_unknown_state_rejected(self):
        with pytest.raises(SpecError, match="unknown state"):
            Specification("m", [0], [], [], [(0, 9)], 0)

    def test_internal_self_loops_dropped(self):
        spec = Specification("m", [0, 1], [], [], [(0, 0), (0, 1)], 0)
        assert spec.internal == frozenset([(0, 1)])

    def test_alphabet_may_exceed_used_events(self):
        spec = Specification("m", [0], ["a", "ghost"], [(0, "a", 0)], [], 0)
        assert "ghost" in spec.alphabet
        assert spec.enabled(0) == Alphabet(["a"])


class TestQueries:
    def test_successors_and_predecessors(self):
        spec = make()
        assert spec.successors(0, "a") == frozenset([1])
        assert spec.successors(1, "a") == frozenset()
        assert spec.predecessors(1, "a") == frozenset([0])
        assert spec.predecessors(0, "a") == frozenset()

    def test_internal_adjacency(self):
        spec = make()
        assert spec.internal_successors(1) == frozenset([0])
        assert spec.internal_predecessors(0) == frozenset([1])
        assert spec.has_internal(1)
        assert not spec.has_internal(0)

    def test_enabled_is_tau(self):
        spec = make(external=[(0, "a", 1), (0, "b", 0)])
        assert spec.enabled(0) == Alphabet(["a", "b"])
        assert spec.enabled(1) == Alphabet([])

    def test_out_transitions_deterministic_order(self):
        spec = make(external=[(0, "b", 1), (0, "a", 1), (0, "a", 0)])
        assert list(spec.out_transitions(0)) == [("a", 0), ("a", 1), ("b", 1)]

    def test_is_deterministic(self):
        assert not make().is_deterministic()  # has internal transition
        det = Specification("d", [0, 1], ["a"], [(0, "a", 1)], [], 0)
        assert det.is_deterministic()
        fan = Specification("f", [0, 1], ["a"], [(0, "a", 1), (0, "a", 0)], [], 0)
        assert not fan.is_deterministic()

    def test_sorted_states_initial_first(self):
        spec = Specification("m", [3, 1, 2], [], [], [], 2)
        states = spec.sorted_states()
        assert states[0] == 2
        assert set(states) == {1, 2, 3}


class TestValueSemantics:
    def test_equality_is_structural(self):
        assert make() == make(name="other-name")

    def test_inequality_on_transitions(self):
        assert make() != make(external=[])

    def test_hash_consistent_with_eq(self):
        assert hash(make()) == hash(make(name="other"))

    def test_usable_as_dict_key(self):
        d = {make(): "x"}
        assert d[make(name="n2")] == "x"


class TestMapStates:
    def test_canonical_relabel_bfs(self):
        spec = (
            SpecBuilder("m")
            .external("start", "a", "mid")
            .external("mid", "b", "end")
            .initial("start")
            .build()
        )
        relabeled = spec.map_states(None)
        assert relabeled.initial == 0
        assert relabeled.states == frozenset([0, 1, 2])
        assert (0, "a", 1) in relabeled.external
        assert (1, "b", 2) in relabeled.external

    def test_explicit_mapping(self):
        spec = make()
        mapped = spec.map_states({0: "zero", 1: "one"})
        assert mapped.initial == "zero"
        assert ("zero", "a", "one") in mapped.external
        assert ("one", "zero") in mapped.internal

    def test_non_injective_mapping_rejected(self):
        with pytest.raises(SpecError, match="injective"):
            make().map_states({0: "x", 1: "x"})

    def test_unreachable_states_appended(self):
        spec = Specification("m", [0, 1, 99], ["a"], [(0, "a", 1)], [], 0)
        relabeled = spec.map_states(None)
        assert relabeled.states == frozenset([0, 1, 2])

    def test_renamed_keeps_structure(self):
        spec = make()
        assert spec.renamed("fresh").name == "fresh"
        assert spec.renamed("fresh") == spec
