"""Self-checks of the metric catalogue against the documentation.

Every span/counter/gauge/event name emitted anywhere under ``src/repro``
must be catalogued in ``docs/observability.md``, and every name the
catalogue lists must still be emitted — documentation and
instrumentation cannot drift apart silently (the ``docs/lint.md``
counterpart is ``tests/test_lint_registry.py``).

The scan is AST-based, so names inside docstrings don't count and
f-string names (``f"faults.{phase}_broken"``) are matched structurally:
each interpolated piece becomes a ``*`` wildcard, and the docs spell the
same position as an angle-bracket placeholder (``faults.<phase>_broken``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOC = ROOT / "docs" / "observability.md"

#: obs facade calls the scan recognises, mapped to catalogue kind.
KINDS = {"add": "counter", "gauge": "gauge", "event": "event", "span": "span"}

#: Names emitted through lookup tables or aliased imports that a literal
#: ``obs.X("name", ...)`` scan cannot see; each entry notes the site.
INDIRECT = {
    "counter": {
        # simulate/engine.py charges through the _MOVE_COUNTER table
        # (precomputed so the hot disabled path pays no formatting)
        "sim.moves.internal",
        "sim.moves.interaction",
        "sim.moves.external",
        # obs/ledger.py counts through ``from .core import add as _count``
        # (it must not import the facade it sits underneath)
        "ledger.appends",
        "ledger.gc_removed",
    },
}


def _name_pattern(node):
    """The metric-name literal of a call's first argument, or None.

    f-strings normalize to a wildcard per interpolated piece.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return "".join(
            piece.value if isinstance(piece, ast.Constant) else "*"
            for piece in node.values
        )
    return None


def emitted_names():
    names = {kind: set() for kind in KINDS.values()}
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "obs"
                and node.func.attr in KINDS
                and node.args
            ):
                continue
            name = _name_pattern(node.args[0])
            if name is not None:
                names[KINDS[node.func.attr]].add(name)
    for kind, extra in INDIRECT.items():
        names[kind].update(extra)
    return names


def documented_names():
    """The catalogue tables, keyed by kind, ``<...>`` → ``*`` wildcard."""
    text = DOC.read_text(encoding="utf-8")
    section = text.split("## Metric catalogue", 1)[1].split("\n## ", 1)[0]
    names = {kind: set() for kind in KINDS.values()}
    current = None
    for line in section.splitlines():
        if line.startswith("Spans:"):
            current = "span"
        elif line.startswith("Counters and gauges:"):
            current = "metric"
        elif line.startswith("Instant events:"):
            current = "event"
        if current is None or not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        row = {
            re.sub(r"<[^>]*>", "*", m)
            for m in re.findall(r"`([^`]+)`", cells[0])
        }
        if not row:
            continue  # header / separator rows carry no backticked names
        if current == "metric":
            if cells[1] not in ("counter", "gauge"):
                continue
            names[cells[1]].update(row)
        else:
            names[current].update(row)
    return names


@pytest.fixture(scope="module")
def emitted():
    return emitted_names()


@pytest.fixture(scope="module")
def documented():
    return documented_names()


def test_scan_finds_the_core_names(emitted):
    # guards the AST scan itself: an empty set would pass vacuously
    assert "quotient.safety.pairs_explored" in emitted["counter"]
    assert "quotient.progress.final_states" in emitted["gauge"]
    assert "budget.exceeded" in emitted["event"]
    assert "solve_quotient" in emitted["span"]
    assert "faults.*_broken" in emitted["counter"]  # f-string normalized


@pytest.mark.parametrize("kind", sorted(KINDS.values()))
def test_every_emitted_name_is_documented(kind, emitted, documented):
    missing = emitted[kind] - documented[kind]
    assert not missing, (
        f"{kind} names emitted in src/repro but absent from the "
        f"docs/observability.md catalogue: {sorted(missing)}"
    )


@pytest.mark.parametrize("kind", sorted(KINDS.values()))
def test_every_documented_name_is_emitted(kind, emitted, documented):
    stray = documented[kind] - emitted[kind]
    assert not stray, (
        f"{kind} names catalogued in docs/observability.md but no longer "
        f"emitted anywhere in src/repro: {sorted(stray)}"
    )


def test_no_name_is_both_counter_and_gauge(emitted):
    clash = emitted["counter"] & emitted["gauge"]
    assert not clash, f"names used as both counter and gauge: {sorted(clash)}"
