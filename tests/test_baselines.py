"""Unit and comparison tests for the bottom-up baselines (Section 2)."""

import pytest

from repro.baselines import (
    ConversionSeed,
    MessageCorrespondence,
    ProjectionMap,
    ab_to_ns_projection_map,
    fuse_peers,
    is_faithful_projection,
    okumura_converter,
    project,
    relay_converter,
)
from repro.compose import compose
from repro.errors import QuotientError, SpecError
from repro.protocols import (
    ab_receiver,
    ab_sender,
    colocated_scenario,
    ns_receiver,
    ns_sender,
    symmetric_scenario,
)
from repro.satisfy import satisfies
from repro.spec import SpecBuilder, rename_events
from repro.traces import accepts


class TestOkumuraConstruction:
    def test_fuse_peers_hides_relay(self):
        fused = fuse_peers(
            ab_receiver(), ns_sender(), p_deliver="del", q_accept="acc"
        )
        assert "del" not in fused.alphabet
        assert "acc" not in fused.alphabet
        assert fused.internal  # the hidden handoff

    def test_unknown_deliver_event_rejected(self):
        with pytest.raises(QuotientError):
            okumura_converter(
                ab_receiver(), ns_sender(), p_deliver="zzz", q_accept="acc"
            )

    def test_derivation_produces_candidate(self):
        result = okumura_converter(
            ab_receiver(), ns_sender(), p_deliver="del", q_accept="acc"
        )
        assert result.exists
        c = result.converter
        # the candidate relays: take d0 from the AB side, send D on the NS side
        assert accepts(c, ("+d0", "-D"))

    def test_trivial_seed_is_noop(self):
        free = okumura_converter(
            ab_receiver(), ns_sender(), p_deliver="del", q_accept="acc"
        )
        seeded = okumura_converter(
            ab_receiver(),
            ns_sender(),
            p_deliver="del",
            q_accept="acc",
            seed=ConversionSeed.trivial(),
        )
        assert len(free.converter.states) == len(seeded.converter.states)

    def test_constraining_seed_prunes(self):
        # seed forbids ever sending a1: machines using -a1 get cut
        seed_spec = (
            SpecBuilder("seed").state(0).event("-a1").initial(0).build()
        )
        result = okumura_converter(
            ab_receiver(),
            ns_sender(),
            p_deliver="del",
            q_accept="acc",
            seed=ConversionSeed(seed_spec),
        )
        assert result.exists
        assert all(e != "-a1" for _, e, _ in result.converter.external)


class TestOkumuraVsTopDown:
    """The paper's Section 2 point: a bottom-up converter must still be
    checked against the global service, and failure of that check is
    uninformative about existence."""

    def test_bottom_up_fails_global_check_in_symmetric_config(self):
        scen = symmetric_scenario()
        result = okumura_converter(
            ab_receiver(), ns_sender(), p_deliver="del", q_accept="acc"
        )
        composite = compose(scen.composite, result.converter)
        report = satisfies(composite, scen.service)
        assert not report.holds  # matches: no converter exists at all

    @staticmethod
    def _direct_ns_sender():
        # NS sender adapted to the direct interface: -D becomes N1's +D,
        # +A becomes N1's -A, and there is no timeout
        return (
            SpecBuilder("N0d")
            .external(0, "acc", 1)
            .external(1, "+D", 2)
            .external(2, "-A", 0)
            .initial(0)
            .build()
        )

    @staticmethod
    def _bit_tracking_seed():
        # ack bit b toward A0 only after N1 acked datum b; re-acks free
        return ConversionSeed(
            SpecBuilder("seed")
            .external("init", "+d0", "h0")
            .external("h0", "+D", "w0")
            .external("w0", "-A", "b0")
            .external("b0", "-a0", "b0")
            .external("b0", "+d0", "b0")
            .external("b0", "+d1", "h1")
            .external("h1", "+D", "w1")
            .external("w1", "-A", "b1")
            .external("b1", "-a1", "b1")
            .external("b1", "+d1", "b1")
            .external("b1", "+d0", "h0")
            .initial("init")
            .build()
        )

    def test_naive_bottom_up_fails_even_in_colocated_config(self):
        """Without seed insight, the fused peers acknowledge the AB sender
        before N1 has delivered: the global check catches ⟨acc.acc⟩."""
        scen = colocated_scenario()
        result = okumura_converter(
            ab_receiver(),
            self._direct_ns_sender(),
            p_deliver="del",
            q_accept="acc",
        )
        assert result.exists  # a candidate is produced...
        composite = compose(scen.composite, result.converter)
        report = satisfies(composite, scen.service)
        assert not report.holds  # ...but it is wrong
        assert report.safety.counterexample == ("acc", "acc")

    def test_bottom_up_succeeds_with_full_insight_seed(self):
        """A seed that already encodes the bit-tracking design makes the
        derivation succeed — Okumura's method works exactly when the seed
        carries the key insight the quotient would have derived."""
        scen = colocated_scenario()
        result = okumura_converter(
            ab_receiver(),
            self._direct_ns_sender(),
            p_deliver="del",
            q_accept="acc",
            seed=self._bit_tracking_seed(),
        )
        assert result.exists
        composite = compose(scen.composite, result.converter)
        report = satisfies(composite, scen.service)
        assert report.holds


class TestProjection:
    def test_project_applies_maps(self):
        a0 = ab_sender()
        mapping = ab_to_ns_projection_map(a0, role="sender")
        image = project(a0, mapping)
        assert image.alphabet == frozenset(
            {"acc", "-D", "+A", "timeoutN"}
        )
        assert accepts(image, ("acc", "-D", "+A"))

    def test_projection_erasure_to_internal(self):
        spec = SpecBuilder("m").external(0, "a", 1).external(1, "b", 0).initial(0).build()
        mapping = ProjectionMap(states={0: 0, 1: 1}, events={"a": "a", "b": None})
        image = project(spec, mapping)
        assert "b" not in image.alphabet
        assert (1, 0) in image.internal

    def test_projection_requires_total_maps(self):
        spec = SpecBuilder("m").external(0, "a", 1).initial(0).build()
        mapping = ProjectionMap(states={0: 0}, events={"a": "a"})
        with pytest.raises(SpecError):
            project(spec, mapping)

    def test_unknown_role_rejected(self):
        with pytest.raises(SpecError):
            ab_to_ns_projection_map(ab_sender(), role="nope")

    def test_ab_sender_projection_not_faithful_to_ns(self):
        """The stale-ack retransmission path has no NS counterpart: the
        bit-erased AB sender is NOT the NS sender — the heuristic's first
        obstacle."""
        a0 = ab_sender()
        mapping = ab_to_ns_projection_map(a0, role="sender")
        assert not is_faithful_projection(a0, ns_sender(), mapping)

    def test_ab_receiver_projection_not_faithful_to_ns(self):
        """Duplicate suppression (re-ack without delivery) breaks the
        receiver-side projection too."""
        a1 = ab_receiver()
        mapping = ab_to_ns_projection_map(a1, role="receiver")
        assert not is_faithful_projection(a1, ns_receiver(), mapping)

    def test_faithful_projection_positive_case(self):
        """Sanity: a genuinely refining machine projects faithfully."""
        unrolled = (
            SpecBuilder("u")
            .external(0, "a", 1)
            .external(1, "b", 2)
            .external(2, "a", 3)
            .external(3, "b", 0)
            .initial(0)
            .build()
        )
        folded = (
            SpecBuilder("f").external(0, "a", 1).external(1, "b", 0).initial(0).build()
        )
        mapping = ProjectionMap(
            states={0: 0, 1: 1, 2: 0, 3: 1},
            events={"a": "a", "b": "b"},
        )
        assert is_faithful_projection(unrolled, folded, mapping)


class TestRelayConverter:
    def test_relay_shape(self):
        relay = relay_converter(
            MessageCorrespondence(
                forward={"d0": "D", "d1": "D"}, backward={"A": "a0"}
            )
        )
        assert accepts(relay, ("+d0", "-D"))
        assert accepts(relay, ("+A", "-a0"))
        assert not accepts(relay, ("+d0", "+d1"))  # must forward first

    def test_stateless_relay_fails_where_paper_needs_state(self):
        """Lam's stateless relay cannot pick the right ack bit: composed
        into the co-located configuration it violates the service."""
        scen = colocated_scenario()
        relay = relay_converter(
            MessageCorrespondence(
                # forward data to N1's +D port; N1's ack -A answered with a0
                forward={"d0": "D", "d1": "D"},
                backward={},
            )
        )
        # adapt port names to the co-located interface (+D toward N1, -A from N1)
        relay = rename_events(relay, {"-D": "+D"})
        # give it the rest of the interface (refused): -a0/-a1/-A never sent
        from repro.spec import extend_alphabet

        relay = extend_alphabet(relay, ["-A", "-a0", "-a1"])
        composite = compose(scen.composite, relay)
        report = satisfies(composite, scen.service)
        assert not report.holds
