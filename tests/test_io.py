"""Unit tests for I/O: DOT export, JSON codec, the DSL, text rendering."""

import json

import pytest

from repro.errors import CodecError, DSLError
from repro.io import (
    dumps,
    loads,
    parse_dsl,
    parse_spec,
    render_adjacency,
    render_spec,
    render_table,
    spec_from_dict,
    spec_to_dict,
    to_dot,
    to_dsl,
)
from repro.spec import SpecBuilder, Specification


class TestDot:
    def test_valid_digraph_structure(self, alternator):
        dot = to_dot(alternator)
        assert dot.startswith('digraph "alt"')
        assert dot.rstrip().endswith("}")
        assert 'label="acc"' in dot
        assert "doublecircle" in dot  # initial state marker

    def test_internal_edges_dashed(self, lossy_hop):
        dot = to_dot(lossy_hop)
        assert "style=dashed" in dot

    def test_annotations(self, alternator):
        dot = to_dot(alternator, annotations={0: "start-here"})
        assert "start-here" in dot

    def test_quoting(self):
        spec = SpecBuilder('we"ird').external(0, "a", 1).initial(0).build()
        dot = to_dot(spec)
        assert '\\"' in dot

    def test_frozenset_states_rendered(self):
        spec = Specification(
            "m", [frozenset([1, 2])], [], [], [], frozenset([1, 2])
        )
        dot = to_dot(spec)
        assert "{1,2}" in dot

    def test_write_dot(self, alternator, tmp_path):
        from repro.io import write_dot

        path = tmp_path / "m.dot"
        write_dot(alternator, str(path))
        assert path.read_text().startswith("digraph")


class TestJsonCodec:
    def test_roundtrip_simple(self, alternator):
        assert loads(dumps(alternator)) == alternator

    def test_roundtrip_exotic_states(self):
        spec = Specification(
            "m",
            [("a", 1), frozenset([("b", 2)]), None, True, 0],
            ["e"],
            [(("a", 1), "e", frozenset([("b", 2)]))],
            [(None, True), (True, 0)],
            ("a", 1),
        )
        assert loads(dumps(spec)) == spec

    def test_roundtrip_preserves_name_and_alphabet(self, lossy_hop):
        restored = loads(dumps(lossy_hop))
        assert restored.name == lossy_hop.name
        assert restored.alphabet == lossy_hop.alphabet

    def test_bool_int_distinction(self):
        spec = Specification("m", [True, 1, 0], [], [], [(True, 1)], 0)
        restored = loads(dumps(spec))
        assert restored == spec

    def test_dict_form_is_json_serializable(self, alternator):
        json.dumps(spec_to_dict(alternator))

    def test_bad_version_rejected(self, alternator):
        doc = spec_to_dict(alternator)
        doc["format"] = 999
        with pytest.raises(CodecError, match="version"):
            spec_from_dict(doc)

    def test_malformed_json_rejected(self):
        with pytest.raises(CodecError, match="invalid JSON"):
            loads("{nope")

    def test_malformed_document_rejected(self):
        with pytest.raises(CodecError):
            spec_from_dict({"format": 1, "name": "x"})

    def test_unencodable_state_rejected(self):
        spec = Specification("m", [3.14], [], [], [], 3.14)
        with pytest.raises(CodecError, match="cannot encode"):
            dumps(spec)

    def test_file_roundtrip(self, alternator, tmp_path):
        from repro.io import dump, load

        path = tmp_path / "spec.json"
        dump(alternator, str(path))
        assert load(str(path)) == alternator


class TestDsl:
    GOOD = """
    # the Fig. 11 service
    spec service
        initial 0
        0 -> 1 : acc
        1 -> 0 : del
    end

    spec lossy
        initial idle
        idle -> sent : -M
        sent ~> lost            # loss
        sent -> idle : +M
        lost -> idle : timeout
        event ghost
    end
    """

    def test_parse_multiple_specs(self):
        specs = parse_dsl(self.GOOD)
        assert set(specs) == {"service", "lossy"}

    def test_integer_states_converted(self):
        specs = parse_dsl(self.GOOD)
        assert specs["service"].initial == 0
        assert specs["service"].states == frozenset([0, 1])

    def test_string_states_kept(self):
        specs = parse_dsl(self.GOOD)
        assert specs["lossy"].initial == "idle"

    def test_internal_transitions(self):
        specs = parse_dsl(self.GOOD)
        assert ("sent", "lost") in specs["lossy"].internal

    def test_declared_event(self):
        specs = parse_dsl(self.GOOD)
        assert "ghost" in specs["lossy"].alphabet

    def test_parse_spec_single(self):
        spec = parse_spec("spec m\n initial 0\n 0 -> 0 : a\nend")
        assert spec.name == "m"

    def test_parse_spec_rejects_multiple(self):
        with pytest.raises(DSLError, match="exactly one"):
            parse_spec(self.GOOD)

    @pytest.mark.parametrize(
        "text, message",
        [
            ("spec a\nspec b\nend", "nested"),
            ("end", "outside"),
            ("0 -> 1 : e", "outside"),
            ("spec a\n initial 0\n", "unterminated"),
            ("spec a\n 0 -> 1 : e\nend", "no 'initial'"),
            ("spec a\n initial 0\n 0 -> 1\nend", "malformed external"),
            ("spec a\n initial 0\n 0 ~> 1 : e\nend", "malformed internal"),
            ("spec a\n initial 0\n nonsense here\nend", "unrecognized"),
            ("spec a\n initial 0 1\nend", "exactly one"),
            ("spec a\n initial 0\n 0 -> 1 : e!!\nend", "invalid event"),
            ("spec a\n initial 0\nend\nspec a\n initial 0\nend", "duplicate"),
        ],
    )
    def test_errors_with_line_numbers(self, text, message):
        with pytest.raises(DSLError, match=message) as err:
            parse_dsl(text)
        assert "line" in str(err.value)

    def test_roundtrip_through_to_dsl(self, alternator):
        text = to_dsl(alternator)
        restored = parse_spec(text)
        assert restored == alternator

    def test_roundtrip_with_internal_and_refused(self, lossy_hop):
        from repro.spec import extend_alphabet

        spec = extend_alphabet(lossy_hop, ["ghost"])
        restored = parse_spec(to_dsl(spec))
        assert restored == spec


class TestRender:
    def test_render_spec_has_header_and_rows(self, alternator):
        text = render_spec(alternator)
        assert "2 states" in text
        assert "--acc" in text

    def test_render_lambda_rows(self, lossy_hop):
        assert "--λ" in render_spec(lossy_hop)

    def test_truncation(self, alternator):
        text = render_spec(alternator, max_rows=1)
        assert "more" in text

    def test_adjacency_marks_initial(self, alternator):
        text = render_adjacency(alternator)
        assert text.splitlines()[0].startswith("*")

    def test_adjacency_dead_state(self):
        spec = SpecBuilder("m").external(0, "a", 1).state(1).initial(0).build()
        assert "(dead)" in render_adjacency(spec)

    def test_render_table_alignment(self):
        text = render_table(
            ["col", "n"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        assert set(lines[2]) <= {"-", " "}
