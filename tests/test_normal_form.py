"""Unit tests for normal form, ψ, determinize, and normalize."""

import pytest

from repro.errors import NormalFormError, NormalizationError
from repro.events import Alphabet
from repro.spec import (
    SpecBuilder,
    assert_normal_form,
    determinize,
    ensure_normal_form,
    hub_enabled,
    is_normal_form,
    normal_form_violations,
    normalize,
    psi,
    psi_step,
    trace_equivalent,
)
from repro.spec.graph import sink_acceptance_sets
from repro.traces import language_upto


class TestViolations:
    def test_deterministic_spec_is_normal(self, alternator):
        assert is_normal_form(alternator)
        assert normal_form_violations(alternator) == []

    def test_hub_option_machine_is_normal(self, nondet_choice):
        assert is_normal_form(nondet_choice)

    def test_condition_i_mixed_transitions(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .internal(0, 1)
            .initial(0)
            .build()
        )
        conditions = {v.condition for v in normal_form_violations(spec)}
        assert "i" in conditions

    def test_condition_ii_internal_cycle(self, internal_cycle):
        conditions = {v.condition for v in normal_form_violations(internal_cycle)}
        assert "ii" in conditions

    def test_condition_iii_divergent_targets(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(0, "a", 2)
            .initial(0)
            .build()
        )
        conditions = {v.condition for v in normal_form_violations(spec)}
        assert "iii" in conditions

    def test_condition_iii_through_closure(self):
        # two λ-successors firing the same event to different states
        spec = (
            SpecBuilder("m")
            .internal("hub", "o1")
            .internal("hub", "o2")
            .external("o1", "e", "t1")
            .external("o2", "e", "t2")
            .initial("hub")
            .build()
        )
        conditions = {v.condition for v in normal_form_violations(spec)}
        assert "iii" in conditions

    def test_assert_raises_with_witness(self, internal_cycle):
        with pytest.raises(NormalFormError) as err:
            assert_normal_form(internal_cycle)
        assert err.value.condition in {"i", "ii", "iii"}


class TestPsi:
    def test_psi_empty_trace_is_initial(self, alternator):
        assert psi(alternator, ()) == 0

    def test_psi_follows_trace(self, alternator):
        assert psi(alternator, ("acc",)) == 1
        assert psi(alternator, ("acc", "del")) == 0

    def test_psi_none_for_non_trace(self, alternator):
        assert psi(alternator, ("del",)) is None

    def test_psi_through_hub(self, nondet_choice):
        assert psi(nondet_choice, ("go",)) == "hub"
        assert psi(nondet_choice, ("go", "l")) == "idle"
        assert psi(nondet_choice, ("go", "r")) == "idle"

    def test_psi_step(self, nondet_choice):
        assert psi_step(nondet_choice, "hub", "l") == "idle"
        assert psi_step(nondet_choice, "hub", "zzz") is None

    def test_psi_step_rejects_non_normal_form(self):
        spec = (
            SpecBuilder("m")
            .external(0, "a", 1)
            .external(0, "a", 2)
            .initial(0)
            .build()
        )
        with pytest.raises(NormalFormError):
            psi_step(spec, 0, "a")

    def test_hub_enabled_is_tau_star(self, nondet_choice):
        assert hub_enabled(nondet_choice, "hub") == Alphabet(["l", "r"])


class TestDeterminize:
    def test_result_is_deterministic_and_normal(self, lossy_hop):
        det = determinize(lossy_hop)
        assert det.is_deterministic()
        assert is_normal_form(det)

    def test_trace_preserving(self, lossy_hop):
        det = determinize(lossy_hop)
        assert language_upto(det, 4) == language_upto(lossy_hop, 4)

    def test_exact_equivalence(self, internal_cycle):
        det = determinize(internal_cycle)
        assert trace_equivalent(det, internal_cycle)

    def test_deterministic_input_roundtrips(self, alternator):
        det = determinize(alternator)
        assert trace_equivalent(det, alternator)
        assert len(det.states) == len(alternator.states)

    def test_alphabet_preserved(self, lossy_hop):
        assert determinize(lossy_hop).alphabet == lossy_hop.alphabet


class TestNormalize:
    def test_normalizes_internal_cycle(self, internal_cycle):
        # Fig. 4: the two-state sink cycle collapses into a single
        # acceptance option offering {f, g}
        nf = normalize(internal_cycle)
        assert is_normal_form(nf)
        assert trace_equivalent(nf, internal_cycle)
        hub = psi(nf, ("e",))
        [accept] = sink_acceptance_sets(nf, hub)
        assert accept == Alphabet(["f", "g"])

    def test_preserves_acceptance_menu(self, nondet_choice):
        nf = normalize(nondet_choice)
        assert is_normal_form(nf)
        assert trace_equivalent(nf, nondet_choice)
        hub = psi(nf, ("go",))
        menu = sorted(
            tuple(sorted(a)) for a in sink_acceptance_sets(nf, hub)
        )
        assert menu == [("l",), ("r",)]

    def test_deterministic_spec_keeps_shape(self, alternator):
        nf = normalize(alternator)
        assert is_normal_form(nf)
        assert trace_equivalent(nf, alternator)
        assert len(nf.states) == len(alternator.states)

    def test_rejects_uncovered_preemptible_event(self):
        # state 1 offers 'x' but can be pre-empted into sink 2 offering
        # only 'y': no sink covers 'x', so exact normalization must fail
        spec = (
            SpecBuilder("m")
            .external(0, "go", 1)
            .external(1, "x", 0)
            .internal(1, 2)
            .external(2, "y", 0)
            .initial(0)
            .build()
        )
        with pytest.raises(NormalizationError, match="pre-emptible"):
            normalize(spec)

    def test_deadlock_sink_becomes_empty_option(self):
        spec = (
            SpecBuilder("m")
            .external(0, "go", 1)
            .internal(1, 2)   # may silently die
            .external(2, "x", 0)
            .internal(1, 3)   # ... or deadlock
            .state(3)
            .initial(0)
            .build()
        )
        # 'x' is covered by sink {2}; the deadlock sink {3} contributes the
        # empty acceptance option
        nf = normalize(spec)
        assert is_normal_form(nf)
        hub = psi(nf, ("go",))
        menu = sorted(tuple(sorted(a)) for a in sink_acceptance_sets(nf, hub))
        assert menu == [(), ("x",)]


class TestEnsureNormalForm:
    def test_passthrough_when_already_normal(self, nondet_choice):
        assert ensure_normal_form(nondet_choice) is nondet_choice

    def test_normalizes_when_possible(self, internal_cycle):
        nf = ensure_normal_form(internal_cycle)
        assert is_normal_form(nf)

    def test_fallback_determinize(self):
        spec = (
            SpecBuilder("m")
            .external(0, "go", 1)
            .external(1, "x", 0)
            .internal(1, 2)
            .external(2, "y", 0)
            .initial(0)
            .build()
        )
        with pytest.raises(NormalizationError):
            ensure_normal_form(spec)
        nf = ensure_normal_form(spec, conservative_fallback=True)
        assert is_normal_form(nf)
        assert trace_equivalent(nf, spec)
