"""Cross-validation of the progress checker against a brute-force
evaluation of the paper's definition.

``B sat A wrt progress ≡ ∀t, b : ↦t b ⇒ prog.(ψ_A.t).b`` — evaluated
literally: enumerate traces of B up to a depth that covers the (small)
instances' reachable pair space, compute ``ψ_A.t`` by definition, and
check ``prog`` from the raw sink/τ* primitives.  The optimized checker in
:mod:`repro.satisfy.progress` must agree on every instance.
"""

from hypothesis import given, settings, strategies as st

from repro.satisfy import satisfies_progress, satisfies_safety
from repro.spec import psi, random_deterministic_service, random_spec
from repro.spec.graph import sink_acceptance_sets, tau_star
from repro.traces import enumerate_traces, states_after

SEEDS = st.integers(min_value=0, max_value=4_000)
EVENTS = ["a", "b"]
DEPTH = 7  # covers the pair space of 4x4-state instances


def brute_force_progress(impl, service, depth=DEPTH) -> bool:
    offered = tau_star(impl)
    for t in enumerate_traces(impl, depth):
        hub = psi(service, t)
        assert hub is not None  # safety already checked by caller
        menu = sink_acceptance_sets(service, hub)
        for b in states_after(impl, t):
            if not any(accept <= offered[b] for accept in menu):
                return False
    return True


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_progress_checker_matches_bruteforce(seed):
    service = random_deterministic_service(
        n_states=3, events=EVENTS, seed=seed
    )
    impl = random_spec(
        n_states=4,
        events=EVENTS,
        external_density=0.35,
        internal_density=0.15,
        seed=seed + 50_000,
    )
    if not satisfies_safety(impl, service).holds:
        return  # progress is only defined under safety
    fast = satisfies_progress(impl, service).holds
    slow = brute_force_progress(impl, service)
    assert fast == slow


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS)
def test_progress_checker_matches_bruteforce_nondet_service(seed):
    """Same agreement with a hub/option (genuinely nondeterministic)
    normal-form service."""
    from repro.spec import SpecBuilder

    service = (
        SpecBuilder("svc")
        .external(0, "a", "hub")
        .internal("hub", "oa")
        .internal("hub", "ob")
        .external("oa", "a", 0)
        .external("ob", "b", 0)
        .initial(0)
        .build()
    )
    impl = random_spec(
        n_states=4,
        events=EVENTS,
        external_density=0.3,
        internal_density=0.1,
        seed=seed,
    )
    if not satisfies_safety(impl, service).holds:
        return
    fast = satisfies_progress(impl, service).holds
    slow = brute_force_progress(impl, service)
    assert fast == slow


def test_bruteforce_on_paper_instance():
    """Deterministic spot check: the AB system passes both evaluations."""
    from repro.protocols import ab_end_to_end

    scen = ab_end_to_end()
    assert satisfies_progress(scen.composite, scen.service).holds
    assert brute_force_progress(scen.composite, scen.service, depth=6)
