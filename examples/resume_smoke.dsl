# Tiny conversion problem used by the CI resume-smoke step (and handy for
# trying --checkpoint/--resume by hand):
#
#   repro-converter solve examples/resume_smoke.dsl service component \
#       --budget-pairs 3 --checkpoint /tmp/smoke.ckpt        # exits 4
#   repro-converter solve examples/resume_smoke.dsl service component \
#       --checkpoint /tmp/smoke.ckpt --resume                # exits 0
#
# The resumed run's output is byte-identical to an uninterrupted one.

spec service
    initial 0
    0 -> 1 : acc
    1 -> 0 : del
end

spec component
    initial 0
    0 -> 1 : acc
    1 -> 2 : fwd
    2 -> 0 : del
end
