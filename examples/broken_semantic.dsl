# A deliberately broken two-machine system for the semantic analyzer
# (SEM2xx rules; see docs/lint.md).  Each defect is reachable only in
# the product, so the structural SPEC0xx rules alone cannot see most of
# them:
#
#   repro-converter analyze examples/broken_semantic.dsl --compose
#
# exits 2 with:
#
#   SEM203  right offers the receive event '+msg' at a reachable product
#           state, but left (a co-owner) never enables it anywhere — an
#           unspecified reception;
#   SEM204  the product deadlocks after left runs 'halt' (and again after
#           'drain' + one internal step);
#   SEM205  left's internal cycle 3 ~> 4 ~> 3 is a reachable livelock:
#           no exit, no external offer anywhere on the cycle;
#   SEM206  the product state after 'drain' is doomed — every path leads
#           into the deadlock;
#   SEM201  right's state 2 is dead: locally reachable, never reached in
#           any product state (the '+msg' sync can never happen);
#   SEM202  right's '+msg' and 'reset' transitions never fire.

spec left
    initial 0
    event +msg              # declared co-owner of '+msg', never enables it
    0 -> 1 : start
    1 -> 3 : fork
    3 ~> 4                  # livelock: internal cycle, no external offers
    4 ~> 3
    1 -> 5 : halt           # 5 has no moves at all -> product deadlock
    1 -> 6 : drain          # 6 ~> 7 -> deadlock; 6 itself is doomed
    6 ~> 7
end

spec right
    initial 0
    0 -> 1 : start
    1 -> 2 : +msg           # unspecified reception: left can never sync
    2 -> 0 : reset          # dead code: state 2 is unreachable in product
end
