#!/usr/bin/env python3
"""Diagnosing *why* no converter exists (the Fig. 12 analysis).

The top-down method's distinguishing power is the negative answer: when
the algorithm returns the empty machine, no converter exists for the given
inputs, full stop.  This example reproduces the paper's diagnosis of the
symmetric AB/NS configuration:

* the safety phase succeeds — there IS a converter that never violates
  strict alternation;
* but after a loss in the NS-side channel, that converter cannot tell
  whether the lost message was data or an acknowledgement.  Retransmitting
  risks a duplicate delivery (safety); not retransmitting risks eternal
  silence (progress).  The conflict shows up as a livelock in B ‖ C0 —
  "C and A0 exchange useless data and acknowledgement messages forever" —
  and the progress phase then eliminates every state.

Run:  python examples/converter_nonexistence.py
"""

from repro.analysis import find_livelocks
from repro.compose import compose
from repro.protocols import symmetric_scenario, weakened_symmetric_scenario
from repro.quotient import solve_quotient


def main() -> None:
    scenario = symmetric_scenario()
    print(scenario.describe())
    print()

    result = solve_quotient(
        scenario.service,
        scenario.composite,
        int_events=scenario.interface.int_events,
    )
    assert not result.exists

    print("safety phase:  C0 has", len(result.c0.states), "states "
          "(a safety-correct converter exists)")
    for r in result.progress.rounds:
        print(
            f"progress round {r.round_index}: marked {len(r.bad_states)} "
            f"bad, {r.remaining} remaining"
        )
    print("=> the initial state was removed: NO converter exists.\n")

    # Exhibit the livelock the paper describes.
    composite = compose(scenario.composite, result.c0)
    report = find_livelocks(composite)
    print("B || C0 livelock analysis:")
    print(" ", report.describe())
    visible = [e for e in (report.witness or ()) if e is not None]
    print(
        f"  after the user-visible trace {visible}, the system can spin "
        "through hidden retransmissions forever with no further acc/del."
    )
    print()

    # The paper's remedy #1: weaken the service (allow duplicates) — but
    # only the *nondeterministic* weakening works (see EXPERIMENTS.md).
    weakened = weakened_symmetric_scenario()
    weak_result = solve_quotient(
        weakened.service,
        weakened.composite,
        int_events=weakened.interface.int_events,
    )
    print(
        "with the duplicate-tolerant service: converter",
        "EXISTS" if weak_result.exists else "does not exist",
        f"({len(weak_result.converter.states)} states)"
        if weak_result.exists
        else "",
    )


if __name__ == "__main__":
    main()
