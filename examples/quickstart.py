#!/usr/bin/env python3
"""Quickstart: derive a protocol converter in ~30 lines.

Scenario: an existing component chain relays a user request ``x`` into an
internal message ``m``; a second internal message ``n`` triggers the reply
``y``.  We want the glue logic ("converter") between ``m`` and ``n`` that
makes the whole system behave as strict request/reply — and we want to
*derive* it, not design it.

Run:  python examples/quickstart.py
"""

from repro.io import render_spec
from repro.quotient import solve_quotient
from repro.spec import SpecBuilder


def main() -> None:
    # The service the users must see: strict x/y alternation (Ext = {x, y}).
    service = (
        SpecBuilder("Service")
        .external(0, "x", 1)
        .external(1, "y", 0)
        .initial(0)
        .build()
    )

    # The existing components, already composed (Σ = Int ∪ Ext):
    # on x they emit m; after being fed n they produce y.
    component = (
        SpecBuilder("Existing")
        .external(0, "x", 1)
        .external(1, "m", 2)
        .external(2, "n", 3)
        .external(3, "y", 0)
        .initial(0)
        .build()
    )

    # The quotient: a converter C over Int = {m, n} with
    # Existing || C satisfying Service — or a proof none exists.
    result = solve_quotient(service, component)

    print(result.summary())
    print()
    if result.exists:
        print(render_spec(result.converter))
        print()
        print("Independent verification:")
        print(result.verification.describe())
    else:
        print("No converter exists for these inputs.")


if __name__ == "__main__":
    main()
