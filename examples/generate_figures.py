#!/usr/bin/env python3
"""Regenerate every figure of the paper as Graphviz DOT files.

Writes one ``.dot`` per machine into an output directory (default
``figures/``): the inputs (Figs. 7, 8, 10, 11), the safety-phase machine
of the symmetric configuration (Fig. 12, our maximal version), and the
co-located quotient before and after pruning (Fig. 14 with and without
its "dotted boxes").  Render with e.g.::

    dot -Tpng figures/fig14_converter.dot -o fig14.png

Run:  python examples/generate_figures.py [output-dir]
"""

import sys
from pathlib import Path

from repro.io import write_dot
from repro.protocols import (
    ab_channel,
    ab_receiver,
    ab_sender,
    alternating_service,
    colocated_scenario,
    ns_channel,
    ns_receiver,
    ns_sender,
    symmetric_scenario,
)
from repro.quotient import QuotientProblem, prune_converter, solve_quotient


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out_dir.mkdir(parents=True, exist_ok=True)

    figures = {
        "fig07_ab_sender": ab_sender(),
        "fig07_ab_receiver": ab_receiver(),
        "fig08_ns_sender": ns_sender(),
        "fig08_ns_receiver": ns_receiver(),
        "fig10_ab_channel": ab_channel(),
        "fig10_ns_channel": ns_channel(),
        "fig11_service": alternating_service(),
    }

    # Fig. 12: safety-phase output of the symmetric configuration
    symmetric = symmetric_scenario()
    symmetric_result = solve_quotient(
        symmetric.service,
        symmetric.composite,
        int_events=symmetric.interface.int_events,
    )
    figures["fig12_safety_phase_C0"] = symmetric_result.c0.renamed(
        "Fig12_C0_maximal"
    )

    # Fig. 14: the co-located quotient, maximal and pruned
    colocated = colocated_scenario()
    colocated_result = solve_quotient(
        colocated.service,
        colocated.composite,
        int_events=colocated.interface.int_events,
    )
    problem = QuotientProblem.build(colocated.service, colocated.composite)
    pruned = prune_converter(
        problem, colocated_result.converter, colocated_result.f,
        exhaustive=True,
    )
    figures["fig14_converter_maximal"] = colocated_result.converter
    figures["fig14_converter_pruned"] = pruned.renamed("Fig14_pruned")

    for name, spec in figures.items():
        path = out_dir / f"{name}.dot"
        write_dot(spec, str(path))
        print(
            f"wrote {path}  ({len(spec.states)} states, "
            f"{len(spec.external)} external transitions)"
        )
    print(f"\nrender with:  dot -Tpng {out_dir}/<name>.dot -o <name>.png")


if __name__ == "__main__":
    main()
