#!/usr/bin/env python3
"""The paper's Section 5 example, end to end.

Converts between the alternating-bit protocol's sender side and the
non-sequenced protocol's receiver side so that together they provide the
strict alternating accept/deliver service (Fig. 11):

1. **symmetric configuration** (Fig. 9) — converter between two lossy
   channels: the algorithm proves NO converter exists;
2. **co-located configuration** (Fig. 13) — converter placed with the NS
   receiver: the algorithm produces the Fig. 14 converter, which we verify
   independently and then prune of its "superfluous portions".

Run:  python examples/ab_to_ns_conversion.py
"""

from repro.analysis import explain_converter
from repro.io import render_spec
from repro.protocols import colocated_scenario, symmetric_scenario
from repro.quotient import QuotientProblem, prune_converter, solve_quotient


def run_scenario(scenario):
    print("=" * 72)
    print(scenario.describe())
    print("-" * 72)
    result = solve_quotient(
        scenario.service,
        scenario.composite,
        int_events=scenario.interface.int_events,
    )
    print(explain_converter(result))
    return result


def main() -> None:
    # --- Fig. 9 / Fig. 12: the symmetric placement fails -----------------
    run_scenario(symmetric_scenario())
    print()

    # --- Fig. 13 / Fig. 14: co-location succeeds -------------------------
    scenario = colocated_scenario()
    result = run_scenario(scenario)

    # The maximal converter contains harmless-but-useless regions (the
    # dotted boxes of Fig. 14); prune them while preserving correctness.
    problem = QuotientProblem.build(scenario.service, scenario.composite)
    pruned = prune_converter(problem, result.converter, result.f)
    print()
    print(
        f"pruned converter: {len(result.converter.states)} -> "
        f"{len(pruned.states)} states (still verified)"
    )
    print()
    print(render_spec(pruned))


if __name__ == "__main__":
    main()
