#!/usr/bin/env python3
"""Section 6: interconnecting heterogeneous networks (Figs. 16-18).

Three gateway architectures for the same job, each checked mechanically:

1. **pass-through concatenation** (Fig. 16) — cheap, but provably loses
   end-to-end synchronization;
2. **symmetric transport-level conversion** (Fig. 17) — the quotient
   algorithm proves no converter can restore the end-to-end service;
3. **asymmetric, co-located conversion** (Fig. 18) — the converter sits
   with one endpoint over a reliable local path; the quotient algorithm
   derives it.

Run:  python examples/layered_gateway.py
"""

from repro.arch import (
    asymmetric_conversion_scenario,
    concatenated_system,
    concatenation_loses_end_to_end_sync,
    transport_conversion_scenario,
)
from repro.quotient import solve_quotient
from repro.satisfy import satisfies_safety
from repro.spec import SpecBuilder


def main() -> None:
    # ---- Fig. 16: concatenation --------------------------------------
    print("Fig. 16 — pass-through concatenation")
    system = concatenated_system()
    print(f"  system: {len(system.states)} states over "
          f"{sorted(system.alphabet)}")
    finding = concatenation_loses_end_to_end_sync()
    print(f"  {finding.detail}")
    causal = (
        SpecBuilder("causal")
        .external(0, "acc", 1)
        .external(1, "acc", 1)
        .external(1, "del", 1)
        .initial(0)
        .build()
    )
    weak_ok = satisfies_safety(system, causal).holds
    print(f"  data still flows (nothing delivered before the first accept): "
          f"{weak_ok}")
    print()

    # ---- Fig. 17: symmetric conversion -------------------------------
    print("Fig. 17 — symmetric transport-level conversion")
    scen = transport_conversion_scenario()
    result = solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )
    print(f"  converter exists: {result.exists}   "
          "(end-to-end service cannot be restored at the boundary)")
    print()

    # ---- Fig. 18: asymmetric conversion -------------------------------
    print("Fig. 18 — asymmetric conversion (converter co-located with TB1)")
    scen = asymmetric_conversion_scenario()
    result = solve_quotient(
        scen.service, scen.composite, int_events=scen.interface.int_events
    )
    print(f"  converter exists: {result.exists} "
          f"({len(result.converter.states)} states), independently verified: "
          f"{result.verification.holds}")
    print()
    print("Conclusion (the paper's): placement is architecture — the same "
          "mismatch is unsolvable at the network boundary and routine when "
          "the converter can share fate with one endpoint.")


if __name__ == "__main__":
    main()
