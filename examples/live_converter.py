#!/usr/bin/env python3
"""Derive a converter, then *run* it.

The quotient algorithm proves ``B ‖ C`` satisfies the service; this
example closes the loop operationally: it drops the derived Fig. 14
converter into a live discrete-event simulation of the AB sender, the
lossy channel, and the NS receiver, drives it with a seeded fair policy,
and watches the service monitor stay green while messages flow —
including through channel losses and retransmissions.

Run:  python examples/live_converter.py [steps] [seed]
"""

import sys

from repro.protocols import (
    ab_channel,
    ab_sender,
    alternating_service,
    colocated_scenario,
    ns_receiver,
)
from repro.quotient import solve_quotient
from repro.simulate import FairRandomPolicy, ServiceMonitor, Simulator


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    # 1. derive the converter
    scenario = colocated_scenario()
    result = solve_quotient(
        scenario.service,
        scenario.composite,
        int_events=scenario.interface.int_events,
    )
    assert result.exists
    print(
        f"derived converter: {len(result.converter.states)} states "
        "(independently verified)"
    )

    # 2. run it
    components = [ab_sender(), ab_channel(), ns_receiver(), result.converter]
    simulator = Simulator(components, FairRandomPolicy(seed))
    monitor = ServiceMonitor(alternating_service())

    losses = retransmissions = 0
    for _ in range(steps):
        move = simulator.step()
        if move is None:
            print("DEADLOCK (should never happen)")
            return
        monitor.observe_move(move)
        if move.kind == "internal":
            losses += 1
        if move.event in ("-d0", "-d1"):
            retransmissions += 1
        if move.kind == "external":
            marker = "->" if move.event == "acc" else "<-"
            print(f"  step {len(simulator.log.steps):4d}  {marker} {move.event}")

    # 3. report
    log = simulator.log
    print()
    print(f"ran {len(log.steps)} moves (seed {seed}):")
    print(f"  accepts:        {log.count('acc')}")
    print(f"  deliveries:     {log.count('del')}")
    print(f"  channel losses: {losses}")
    print(f"  transmissions:  {retransmissions} "
          "(> accepts when losses forced retries)")
    print(f"  {monitor.verdict().describe()}")


if __name__ == "__main__":
    main()
