#!/usr/bin/env python3
"""What is the best service these components can provide?

The paper asks "can B provide service S?" — this example asks the
designer's converse question and answers it by search: over a family of
candidate services (strict alternation, window-2 exactly-once,
duplicate-tolerant in two acceptance styles), find every service a
converter can achieve and the strongest among them, for both Section 5
configurations.

The symmetric configuration's answer mechanizes the paper's remark that
weakening the service to allow duplicates "thereby obtain[s] a converter":
the weakened service is not merely sufficient — it is exactly the
frontier.

Run:  python examples/service_frontier.py
"""

from repro.analysis import service_frontier
from repro.protocols import (
    alternating_service,
    at_least_once_service,
    at_least_once_service_strict,
    colocated_scenario,
    symmetric_scenario,
    windowed_alternating_service,
)


def main() -> None:
    candidates = [
        alternating_service(),            # S: exactly once, strictly alternating
        windowed_alternating_service(2),  # S(w=2): exactly once, window 2
        at_least_once_service(),          # S+: duplicates OK (choice-style)
        at_least_once_service_strict(),   # S+det: duplicates OK (det. style)
    ]

    for scenario in (symmetric_scenario(), colocated_scenario()):
        print("=" * 64)
        print(scenario.title)
        print("-" * 64)
        report = service_frontier(candidates, scenario.composite)
        print(report.describe())
        print()

    print(
        "Reading: in the symmetric placement nothing stronger than the\n"
        "duplicate-tolerant service is possible — the loss between the\n"
        "converter and the NS receiver is fundamental.  Co-locating the\n"
        "converter (Fig. 13) buys back exact-once delivery."
    )


if __name__ == "__main__":
    main()
