#!/usr/bin/env python3
"""Bring your own protocol: the spec DSL, the solver, and DOT export.

Defines a fresh conversion problem in the textual DSL — a credit-based
flow-control producer that must drive a simple ready/ack consumer — solves
the quotient, prunes the result, and writes Graphviz DOT files you can
render with ``dot -Tpng``.

Run:  python examples/custom_protocol_dsl.py [output-dir]
"""

import sys
from pathlib import Path

from repro.io import parse_dsl, render_spec, write_dot
from repro.quotient import QuotientProblem, prune_converter, solve_quotient

SPECS = """
# The service: every submitted job is eventually done, one at a time.
spec service
    initial 0
    0 -> 1 : submit
    1 -> 0 : done
end

# The existing components, pre-composed by hand here for clarity:
# a producer that turns 'submit' into a 'job' message but insists on
# receiving a 'credit' first, and a worker that performs 'work' and
# reports 'done' after being told to 'start'.
spec existing
    initial 0
    0 -> 1 : submit
    1 -> 2 : credit      # converter grants a credit
    2 -> 3 : job         # producer emits the job
    3 -> 4 : start       # converter starts the worker
    4 -> 0 : done
end
"""


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    specs = parse_dsl(SPECS)
    service, existing = specs["service"], specs["existing"]

    result = solve_quotient(service, existing)
    print(result.summary())
    print()

    if not result.exists:
        print("no converter exists for this setup")
        return

    problem = QuotientProblem.build(service, existing)
    pruned = prune_converter(problem, result.converter, result.f)
    print("essential converter (after pruning):")
    print(render_spec(pruned))

    for name, spec in (
        ("service", service),
        ("existing", existing),
        ("converter_maximal", result.converter),
        ("converter_pruned", pruned),
    ):
        path = out_dir / f"{name}.dot"
        write_dot(spec, str(path))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
