"""Bridge to networkx.

Converts specifications to :class:`networkx.MultiDiGraph` (and back),
which makes the whole networkx toolbox — layout, centrality, independent
SCC/reachability implementations — available for analysis and lets the
test suite cross-check this library's graph primitives against an
independent implementation.

Encoding: one node per state (node attribute ``initial`` on ``s0``);
one edge per transition with attribute ``event`` (the event name, or
``None`` for an internal λ transition).  The spec's ``name`` and
``alphabet`` ride along as graph attributes.
"""

from __future__ import annotations

import networkx as nx

from ..errors import CodecError
from ..spec.spec import Specification


def to_networkx(spec: Specification) -> "nx.MultiDiGraph":
    """Encode *spec* as a MultiDiGraph (see module docstring)."""
    graph = nx.MultiDiGraph(
        name=spec.name, alphabet=tuple(spec.alphabet.sorted())
    )
    for s in spec.sorted_states():
        graph.add_node(s, initial=(s == spec.initial))
    for s, e, s2 in spec.external:
        graph.add_edge(s, s2, event=e)
    for s, s2 in spec.internal:
        graph.add_edge(s, s2, event=None)
    return graph


def from_networkx(graph: "nx.MultiDiGraph") -> Specification:
    """Decode a MultiDiGraph produced by :func:`to_networkx` (or built by
    hand with the same attribute conventions)."""
    initials = [n for n, data in graph.nodes(data=True) if data.get("initial")]
    if len(initials) != 1:
        raise CodecError(
            f"graph must mark exactly one initial node, found {len(initials)}"
        )
    external = []
    internal = []
    used_events = set()
    for s, s2, data in graph.edges(data=True):
        event = data.get("event")
        if event is None:
            internal.append((s, s2))
        else:
            external.append((s, event, s2))
            used_events.add(event)
    alphabet = set(graph.graph.get("alphabet", ())) | used_events
    return Specification(
        graph.graph.get("name", "from_networkx"),
        graph.nodes,
        alphabet,
        external,
        internal,
        initials[0],
    )


def internal_subgraph(spec: Specification) -> "nx.DiGraph":
    """Just the λ relation, as a simple DiGraph (for SCC/condensation)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(spec.states)
    graph.add_edges_from(spec.internal)
    return graph


def condensation(spec: Specification) -> "nx.DiGraph":
    """networkx condensation of the λ graph (nodes = λ-SCCs).

    Node attribute ``members`` holds each SCC's state set; useful both for
    visualization and as an independent check of
    :func:`repro.spec.graph.internal_sccs`.
    """
    return nx.condensation(internal_subgraph(spec))
