"""JSON round-tripping of specifications.

State labels may be arbitrary hashable Python values (tuples, frozensets of
pairs, strings, ints ...), which JSON cannot represent natively; the codec
therefore encodes states structurally with a small tagged scheme:

* ``{"t": "s", "v": <str>}`` — string
* ``{"t": "i", "v": <int>}`` — int
* ``{"t": "T", "v": [<state>, ...]}`` — tuple of states
* ``{"t": "F", "v": [<state>, ...]}`` — frozenset of states (sorted)
* ``{"t": "n"}`` — None

Anything else is rejected with :class:`CodecError` (encode your exotic
labels first with ``Specification.map_states``).  The format is versioned;
decoding validates the document shape and re-runs the specification
constructor's own validation.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import CodecError
from ..spec.spec import Specification, State

FORMAT_VERSION = 1


def _encode_state(state: State) -> Any:
    if state is None:
        return {"t": "n"}
    if isinstance(state, bool):
        # bool is an int subclass; keep it distinct for faithful round-trips
        return {"t": "b", "v": state}
    if isinstance(state, str):
        return {"t": "s", "v": state}
    if isinstance(state, int):
        return {"t": "i", "v": state}
    if isinstance(state, tuple):
        return {"t": "T", "v": [_encode_state(x) for x in state]}
    if isinstance(state, frozenset):
        encoded = [_encode_state(x) for x in state]
        encoded.sort(key=lambda d: json.dumps(d, sort_keys=True))
        return {"t": "F", "v": encoded}
    raise CodecError(
        f"cannot encode state label of type {type(state).__name__}: {state!r}"
    )


def _decode_state(doc: Any) -> State:
    if not isinstance(doc, dict) or "t" not in doc:
        raise CodecError(f"malformed state document: {doc!r}")
    tag = doc["t"]
    if tag == "n":
        return None
    if tag == "b":
        return bool(doc["v"])
    if tag == "s":
        return str(doc["v"])
    if tag == "i":
        return int(doc["v"])
    if tag == "T":
        return tuple(_decode_state(x) for x in doc["v"])
    if tag == "F":
        return frozenset(_decode_state(x) for x in doc["v"])
    raise CodecError(f"unknown state tag {tag!r}")


def spec_to_dict(spec: Specification) -> dict[str, Any]:
    """Encode a specification as a JSON-serializable dict."""
    return {
        "format": FORMAT_VERSION,
        "name": spec.name,
        "alphabet": spec.alphabet.sorted(),
        "states": [_encode_state(s) for s in spec.sorted_states()],
        "initial": _encode_state(spec.initial),
        "external": sorted(
            (
                [_encode_state(s), e, _encode_state(s2)]
                for s, e, s2 in spec.external
            ),
            key=lambda t: json.dumps(t, sort_keys=True),
        ),
        "internal": sorted(
            ([_encode_state(s), _encode_state(s2)] for s, s2 in spec.internal),
            key=lambda t: json.dumps(t, sort_keys=True),
        ),
    }


def spec_from_dict(doc: dict[str, Any]) -> Specification:
    """Decode a specification from its dict form (validating throughout)."""
    if not isinstance(doc, dict):
        raise CodecError("document must be an object")
    if doc.get("format") != FORMAT_VERSION:
        raise CodecError(
            f"unsupported format version {doc.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        name = doc["name"]
        states = [_decode_state(s) for s in doc["states"]]
        alphabet = list(doc["alphabet"])
        external = [
            (_decode_state(s), e, _decode_state(s2))
            for s, e, s2 in doc["external"]
        ]
        internal = [
            (_decode_state(s), _decode_state(s2)) for s, s2 in doc["internal"]
        ]
        initial = _decode_state(doc["initial"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed specification document: {exc}") from exc
    return Specification(name, states, alphabet, external, internal, initial)


def dumps(spec: Specification, *, indent: int | None = 2) -> str:
    """Serialize *spec* to a JSON string."""
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def loads(text: str) -> Specification:
    """Deserialize a specification from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"invalid JSON: {exc}") from exc
    return spec_from_dict(doc)


def dump(spec: Specification, path: str) -> None:
    """Write *spec* as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(spec))
        fh.write("\n")


def load(path: str) -> Specification:
    """Read a specification from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())
