"""Plain-text rendering of specifications and results.

Terminal-friendly views used by the CLI, the examples, and the benchmark
harness: an aligned transition table, a one-line summary, and a compact
adjacency rendering for small machines.
"""

from __future__ import annotations

from ..spec.spec import Specification, State


def _fmt_state(state: State, width: int = 0) -> str:
    text = repr(state) if not isinstance(state, (int, str)) else str(state)
    return text.ljust(width)


def render_spec(spec: Specification, *, max_rows: int | None = None) -> str:
    """An aligned transition table.

    Columns: source state, label (event name or ``λ``), target state.
    """
    rows: list[tuple[str, str, str]] = []
    for s in spec.sorted_states():
        for e, s2 in spec.out_transitions(s):
            rows.append((_fmt_state(s), e, _fmt_state(s2)))
        for s2 in sorted(spec.internal_successors(s), key=repr):
            rows.append((_fmt_state(s), "λ", _fmt_state(s2)))

    truncated = 0
    if max_rows is not None and len(rows) > max_rows:
        truncated = len(rows) - max_rows
        rows = rows[:max_rows]

    if rows:
        w0 = max(len(r[0]) for r in rows)
        w1 = max(len(r[1]) for r in rows)
    else:
        w0 = w1 = 1

    lines = [
        f"{spec.name}  ({len(spec.states)} states, "
        f"{len(spec.external)} external + {len(spec.internal)} internal "
        f"transitions, initial = {_fmt_state(spec.initial)})"
    ]
    for src, label, dst in rows:
        lines.append(f"  {src.ljust(w0)}  --{label.ljust(w1)}-->  {dst}")
    if truncated:
        lines.append(f"  ... ({truncated} more)")
    return "\n".join(lines)


def render_adjacency(spec: Specification) -> str:
    """One line per state: ``state: e1->t1 e2->t2 λ->t3``."""
    lines = []
    for s in spec.sorted_states():
        parts = [f"{e}->{_fmt_state(s2)}" for e, s2 in spec.out_transitions(s)]
        parts += [
            f"λ->{_fmt_state(s2)}"
            for s2 in sorted(spec.internal_successors(s), key=repr)
        ]
        marker = "*" if s == spec.initial else " "
        lines.append(f"{marker}{_fmt_state(s)}: " + (" ".join(parts) or "(dead)"))
    return "\n".join(lines)


def render_table(
    headers: list[str], rows: list[list[object]], *, title: str | None = None
) -> str:
    """A minimal aligned table for benchmark output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
