"""A small textual DSL for specifications.

Grammar (line-oriented; ``#`` starts a comment; blank lines ignored)::

    spec <name>
        initial <state>
        state <state> [<state> ...]      # declare isolated states (optional)
        event <event> [<event> ...]      # declare refused events (optional)
        <src> -> <dst> : <event>         # external transition
        <src> ~> <dst>                   # internal (λ) transition
    end

A file may contain several ``spec ... end`` blocks.  State tokens that look
like integers are converted to ``int`` (matching the library's examples);
everything else stays a string.  Event names may contain ``+``/``-``
prefixes and alphanumerics/underscores.

Example::

    spec service
        initial 0
        0 -> 1 : acc
        1 -> 0 : del
    end
"""

from __future__ import annotations

import re

from ..errors import DSLError
from ..spec.builder import SpecBuilder
from ..spec.spec import Specification, State

_EVENT_RE = re.compile(r"^[+\-]?[A-Za-z0-9_.]+$")
_STATE_RE = re.compile(r"^[A-Za-z0-9_.+\-]+$")


def _parse_state(token: str, line_no: int) -> State:
    if not _STATE_RE.match(token):
        raise DSLError(f"invalid state token {token!r}", line=line_no)
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return token


def _parse_event(token: str, line_no: int) -> str:
    if not _EVENT_RE.match(token):
        raise DSLError(f"invalid event token {token!r}", line=line_no)
    return token


def parse_dsl(text: str) -> dict[str, Specification]:
    """Parse a DSL document into named specifications.

    Raises :class:`DSLError` with a line number on any malformed input.
    """
    specs: dict[str, Specification] = {}
    builder: SpecBuilder | None = None
    current_name: str | None = None
    saw_initial = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()

        if tokens[0] == "spec":
            if builder is not None:
                raise DSLError(
                    f"nested 'spec' (previous block {current_name!r} not "
                    "closed with 'end')",
                    line=line_no,
                )
            if len(tokens) != 2:
                raise DSLError("'spec' takes exactly one name", line=line_no)
            current_name = tokens[1]
            if current_name in specs:
                raise DSLError(
                    f"duplicate spec name {current_name!r}", line=line_no
                )
            builder = SpecBuilder(current_name)
            saw_initial = False
            continue

        if tokens[0] == "end":
            if builder is None:
                raise DSLError("'end' outside a spec block", line=line_no)
            if len(tokens) != 1:
                raise DSLError("'end' takes no arguments", line=line_no)
            if not saw_initial:
                raise DSLError(
                    f"spec {current_name!r} has no 'initial' declaration",
                    line=line_no,
                )
            assert current_name is not None
            specs[current_name] = builder.build()
            builder = None
            current_name = None
            continue

        if builder is None:
            raise DSLError(
                f"statement outside a spec block: {line!r}", line=line_no
            )

        if tokens[0] == "initial":
            if len(tokens) != 2:
                raise DSLError("'initial' takes exactly one state", line=line_no)
            builder.initial(_parse_state(tokens[1], line_no))
            saw_initial = True
            continue

        if tokens[0] == "state":
            if len(tokens) < 2:
                raise DSLError("'state' needs at least one state", line=line_no)
            for tok in tokens[1:]:
                builder.state(_parse_state(tok, line_no))
            continue

        if tokens[0] == "event":
            if len(tokens) < 2:
                raise DSLError("'event' needs at least one event", line=line_no)
            for tok in tokens[1:]:
                builder.event(_parse_event(tok, line_no))
            continue

        # transitions:  src -> dst : event   |   src ~> dst
        if "~>" in tokens:
            if len(tokens) != 3 or tokens[1] != "~>":
                raise DSLError(
                    f"malformed internal transition: {line!r}", line=line_no
                )
            src = _parse_state(tokens[0], line_no)
            dst = _parse_state(tokens[2], line_no)
            builder.internal(src, dst)
            continue

        if "->" in tokens:
            if (
                len(tokens) != 5
                or tokens[1] != "->"
                or tokens[3] != ":"
            ):
                raise DSLError(
                    f"malformed external transition (want 'src -> dst : "
                    f"event'): {line!r}",
                    line=line_no,
                )
            src = _parse_state(tokens[0], line_no)
            dst = _parse_state(tokens[2], line_no)
            event = _parse_event(tokens[4], line_no)
            builder.external(src, event, dst)
            continue

        raise DSLError(f"unrecognized statement: {line!r}", line=line_no)

    if builder is not None:
        raise DSLError(
            f"unterminated spec block {current_name!r} (missing 'end')",
            line=len(text.splitlines()),
        )
    return specs


def parse_spec(text: str) -> Specification:
    """Parse a document expected to contain exactly one spec."""
    specs = parse_dsl(text)
    if len(specs) != 1:
        raise DSLError(
            f"expected exactly one spec, found {len(specs)}: "
            f"{sorted(specs)}"
        )
    return next(iter(specs.values()))


def to_dsl(spec: Specification) -> str:
    """Render a specification back into DSL text (round-trippable when the
    state labels are ints or simple strings)."""
    lines = [f"spec {spec.name}"]
    lines.append(f"    initial {spec.initial}")
    mentioned: set[State] = {spec.initial}
    used_events: set[str] = set()
    for s in spec.sorted_states():
        for e, s2 in spec.out_transitions(s):
            lines.append(f"    {s} -> {s2} : {e}")
            mentioned.update((s, s2))
            used_events.add(e)
    for s, s2 in sorted(spec.internal, key=repr):
        lines.append(f"    {s} ~> {s2}")
        mentioned.update((s, s2))
    isolated = [s for s in spec.sorted_states() if s not in mentioned]
    if isolated:
        lines.append("    state " + " ".join(str(s) for s in isolated))
    refused = sorted(set(spec.alphabet) - used_events)
    if refused:
        lines.append("    event " + " ".join(refused))
    lines.append("end")
    return "\n".join(lines) + "\n"
