"""Graphviz DOT export.

Renders specifications in the paper's visual vocabulary: nodes are states
(double circle for the initial state), labeled edges are external
transitions, unlabeled dashed edges are internal transitions — matching the
figure conventions ("transitions in λ have no label").
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..spec.spec import Specification, State


def _default_state_label(state: State) -> str:
    if isinstance(state, frozenset):
        inner = ",".join(sorted(repr(x) for x in state))
        return "{" + inner + "}"
    return str(state)


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(
    spec: Specification,
    *,
    state_label: Callable[[State], str] | None = None,
    annotations: Mapping[State, str] | None = None,
    rankdir: str = "LR",
) -> str:
    """Serialize *spec* as a Graphviz digraph.

    Parameters
    ----------
    state_label:
        Optional state-to-label function (default: compact ``str``).
    annotations:
        Optional extra per-state text (e.g. the quotient's pair sets),
        rendered on a second label line.
    rankdir:
        Graph direction, default left-to-right.
    """
    label_of = state_label or _default_state_label
    lines = [f"digraph {_quote(spec.name)} {{"]
    lines.append(f"  rankdir={rankdir};")
    lines.append('  node [shape=circle, fontsize=11];')
    lines.append('  edge [fontsize=10];')

    index = {s: i for i, s in enumerate(spec.sorted_states())}

    for s in spec.sorted_states():
        label = label_of(s)
        if annotations and s in annotations:
            label = f"{label}\\n{annotations[s]}"
        shape = "doublecircle" if s == spec.initial else "circle"
        lines.append(f"  n{index[s]} [label={_quote(label)}, shape={shape}];")

    for s in spec.sorted_states():
        for e, s2 in spec.out_transitions(s):
            lines.append(f"  n{index[s]} -> n{index[s2]} [label={_quote(e)}];")
    for s, s2 in sorted(spec.internal, key=lambda t: (index[t[0]], index[t[1]])):
        lines.append(f"  n{index[s]} -> n{index[s2]} [style=dashed];")

    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(spec: Specification, path: str, **kwargs) -> None:
    """Write the DOT rendering of *spec* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_dot(spec, **kwargs))
