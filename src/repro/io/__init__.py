"""Serialization and rendering: DOT, JSON, the spec DSL, and text tables."""

from .dot import to_dot, write_dot
from .dsl import parse_dsl, parse_spec, to_dsl
from .nx import condensation, from_networkx, internal_subgraph, to_networkx
from .json_codec import dump, dumps, load, loads, spec_from_dict, spec_to_dict
from .render import render_adjacency, render_spec, render_table

__all__ = [
    "condensation",
    "dump",
    "dumps",
    "load",
    "loads",
    "parse_dsl",
    "from_networkx",
    "internal_subgraph",
    "parse_spec",
    "render_adjacency",
    "render_spec",
    "render_table",
    "spec_from_dict",
    "spec_to_dict",
    "to_dot",
    "to_networkx",
    "to_dsl",
    "write_dot",
]
