"""A stop-and-wait protocol (library extension, not from the paper).

A minimal positive-acknowledgement protocol for *reliable* channels: the
sender transmits one packet ``P`` and waits for the acknowledgement ``K``
before accepting the next message.  Without sequence numbers or timeouts it
is only correct over loss-free channels — which makes it a useful third
protocol for exercising the quotient machinery on fresh conversion
problems (e.g. AB-to-stop-and-wait in the examples and tests) and for
demonstrating *when* conversion is trivial.
"""

from __future__ import annotations

from ..spec.builder import SpecBuilder
from ..spec.spec import Specification


def sw_sender(*, name: str = "W0") -> Specification:
    """Stop-and-wait Sender: accept, transmit ``P``, await ``K``."""
    return (
        SpecBuilder(name)
        .external(0, "acc", 1)
        .external(1, "-P", 2)
        .external(2, "+K", 0)
        .initial(0)
        .build()
    )


def sw_receiver(*, name: str = "W1") -> Specification:
    """Stop-and-wait Receiver: receive ``P``, deliver, acknowledge ``K``."""
    return (
        SpecBuilder(name)
        .external(0, "+P", 1)
        .external(1, "del", 2)
        .external(2, "-K", 0)
        .initial(0)
        .build()
    )


def sw_channel(*, name: str = "Wch") -> Specification:
    """The stop-and-wait channel: reliable, capacity one, duplex (P/K)."""
    from .channels import reliable_duplex_channel

    return reliable_duplex_channel(name=name, messages=("P", "K"))


def sw_end_to_end(*, name: str = "W0||Wch||W1") -> Specification:
    """The composed stop-and-wait system over its reliable channel."""
    from ..compose.nary import compose_many

    return compose_many([sw_sender(), sw_channel(), sw_receiver()], name=name)
