"""The alternating-bit protocol (Fig. 7).

The AB protocol [Bartlett, Scantlebury & Wilkinson 1969] delivers each
accepted message exactly once over a lossy channel by attaching a one-bit
sequence number:

* the **Sender** ``A0`` accepts a message (``acc``), transmits it with the
  current bit (``-d0`` / ``-d1``), and waits for the matching
  acknowledgement (``+a0`` / ``+a1``).  A timeout (the channel's
  never-premature loss signal) or a wrong-numbered acknowledgement causes
  retransmission; the matching acknowledgement flips the bit;
* the **Receiver** ``A1`` delivers (``del``) a data message whose bit
  matches the one it expects, then acknowledges with that bit and flips its
  expectation; a duplicate (wrong-bit) data message is re-acknowledged with
  the previous bit and not delivered.

Event conventions follow the paper: ``-x`` passes message ``x`` into a
channel, ``+x`` removes it; ``acc``/``del`` are the user interface.  The
sender's timeout event is shared with its channel (see
:mod:`repro.protocols.channels`).
"""

from __future__ import annotations

from ..spec.builder import SpecBuilder
from ..spec.spec import Specification

AB_TIMEOUT = "timeout"
"""The AB sender/channel timeout event name."""


def ab_sender(*, name: str = "A0", timeout: str = AB_TIMEOUT) -> Specification:
    """The AB protocol Sender ``A0``.

    States (BFS numbering):

    ====  ==========================================
    0     idle, current bit 0
    1     ready to (re)transmit d0
    2     waiting for a0
    3     idle, current bit 1
    4     ready to (re)transmit d1
    5     waiting for a1
    ====  ==========================================
    """
    return (
        SpecBuilder(name)
        .external(0, "acc", 1)
        .external(1, "-d0", 2)
        .external(2, "+a0", 3)
        .external(2, "+a1", 1)  # stale acknowledgement: retransmit
        .external(2, timeout, 1)
        .external(3, "acc", 4)
        .external(4, "-d1", 5)
        .external(5, "+a1", 0)
        .external(5, "+a0", 4)  # stale acknowledgement: retransmit
        .external(5, timeout, 4)
        .initial(0)
        .build()
    )


def ab_receiver(*, name: str = "A1") -> Specification:
    """The AB protocol Receiver ``A1``.

    States:

    ====  ===================================================
    0     expecting bit 0
    1     got d0, ready to deliver
    2     ready to acknowledge with a0
    3     expecting bit 1
    4     got d1, ready to deliver
    5     ready to acknowledge with a1
    ====  ===================================================

    Duplicates re-enter the acknowledge states without delivering: a ``+d1``
    while expecting bit 0 re-sends ``a1``; a ``+d0`` while expecting bit 1
    re-sends ``a0``.
    """
    return (
        SpecBuilder(name)
        .external(0, "+d0", 1)
        .external(0, "+d1", 5)  # duplicate: re-acknowledge a1
        .external(1, "del", 2)
        .external(2, "-a0", 3)
        .external(3, "+d1", 4)
        .external(3, "+d0", 2)  # duplicate: re-acknowledge a0
        .external(4, "del", 5)
        .external(5, "-a1", 0)
        .initial(0)
        .build()
    )


def ab_protocol_events() -> dict[str, frozenset[str]]:
    """The AB protocol's event sets, by interface.

    Returns a dict with keys ``user_sender`` (``acc``), ``user_receiver``
    (``del``), ``channel_sender`` (sender↔channel events including the
    timeout), and ``channel_receiver`` (receiver↔channel events).
    """
    return {
        "user_sender": frozenset({"acc"}),
        "user_receiver": frozenset({"del"}),
        "channel_sender": frozenset({"-d0", "-d1", "+a0", "+a1", AB_TIMEOUT}),
        "channel_receiver": frozenset({"+d0", "+d1", "-a0", "-a1"}),
    }
