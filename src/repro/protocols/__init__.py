"""The paper's protocols: alternating-bit, non-sequenced, channels,
services, and the Section 5 problem configurations."""

from .abp import AB_TIMEOUT, ab_protocol_events, ab_receiver, ab_sender
from .channels import (
    ab_channel,
    lossy_duplex_channel,
    ns_channel,
    reliable_duplex_channel,
    simplex_channel,
)
from .configs import (
    AB_CONVERTER_SIDE,
    EXT_EVENTS,
    NS_DIRECT_SIDE,
    NS_SENDER_SIDE,
    ConversionScenario,
    ab_end_to_end,
    colocated_scenario,
    ns_end_to_end,
    symmetric_scenario,
    weakened_symmetric_scenario,
)
from .handshake import (
    handshake_channel,
    handshake_scenario,
    lossy_handshake_scenario,
    threeway_server,
    twoway_client,
)
from .nonseq import NS_TIMEOUT, ns_protocol_events, ns_receiver, ns_sender
from .sliding_window import (
    sw_window_channel,
    sw_window_receiver,
    sw_window_sender,
    sw_window_system,
)
from .stopwait import sw_channel, sw_end_to_end, sw_receiver, sw_sender
from .services import (
    alternating_service,
    at_least_once_service,
    at_least_once_service_strict,
    choice_service,
    windowed_alternating_service,
)

__all__ = [
    "AB_CONVERTER_SIDE",
    "AB_TIMEOUT",
    "ConversionScenario",
    "EXT_EVENTS",
    "NS_DIRECT_SIDE",
    "NS_SENDER_SIDE",
    "NS_TIMEOUT",
    "ab_channel",
    "ab_end_to_end",
    "ab_protocol_events",
    "ab_receiver",
    "ab_sender",
    "alternating_service",
    "at_least_once_service",
    "at_least_once_service_strict",
    "choice_service",
    "colocated_scenario",
    "handshake_channel",
    "handshake_scenario",
    "lossy_duplex_channel",
    "lossy_handshake_scenario",
    "ns_channel",
    "ns_end_to_end",
    "ns_protocol_events",
    "ns_receiver",
    "ns_sender",
    "reliable_duplex_channel",
    "simplex_channel",
    "sw_channel",
    "sw_window_channel",
    "sw_window_receiver",
    "sw_window_sender",
    "sw_window_system",
    "sw_end_to_end",
    "sw_receiver",
    "sw_sender",
    "symmetric_scenario",
    "threeway_server",
    "twoway_client",
    "weakened_symmetric_scenario",
    "windowed_alternating_service",
]
