"""A parameterized sliding-window protocol (library extension).

A go-back-N-style protocol with sequence numbers modulo ``2·N`` over a
reliable, reordering-free channel: the sender may have up to ``N``
unacknowledged messages outstanding; the receiver delivers in order and
cumulatively acknowledges.  With ``N = 1`` it degenerates to stop-and-wait
with sequence numbers.

The family serves three purposes in this repository:

* a third realistic protocol for conversion experiments (converting the
  AB world to a windowed world exercises quotients whose Int alphabet and
  state space grow with ``N``);
* a scaling knob for the Section 7 complexity benchmarks that is
  *protocol-shaped* rather than synthetic;
* together with :func:`~repro.protocols.services.windowed_alternating_service`,
  a validation pair: ``sw_system(N)`` satisfies the window-``N`` service.

Events: ``acc``/``del`` at the user interface; ``-p<i>``/``+p<i>`` for
data with sequence number ``i``; ``-k<i>``/``+k<i>`` for the cumulative
acknowledgement of ``i``.
"""

from __future__ import annotations

from ..compose.nary import compose_many
from ..errors import SpecError
from ..spec.builder import SpecBuilder
from ..spec.spec import Specification


def _check_window(window: int) -> int:
    if window < 1:
        raise SpecError("window must be at least 1")
    return 2 * window  # sequence-number modulus


def sw_window_sender(window: int, *, name: str | None = None) -> Specification:
    """Sliding-window sender.

    State ``(base, next_seq)`` (both mod ``2·window``) tracks the oldest
    unacknowledged number and the next number to assign; at most
    ``window`` messages are outstanding.  ``acc`` is only possible when
    the window is open; ``+k<i>`` slides the base to ``i + 1``.

    The state also carries ``pending`` — how many accepted-but-unsent
    messages exist (at most one at a time here: each ``acc`` must be
    followed by its ``-p`` before the next ``acc``), which keeps the
    machine small while preserving window semantics.
    """
    modulus = _check_window(window)
    builder = SpecBuilder(name if name is not None else f"SW0(N={window})")

    def outstanding(base: int, nxt: int) -> int:
        return (nxt - base) % modulus

    states = [
        (base, nxt, pending)
        for base in range(modulus)
        for nxt in range(modulus)
        if outstanding(base, nxt) <= window
        for pending in (0, 1)
        if not (pending and outstanding(base, nxt) >= window)
    ]
    for base, nxt, pending in states:
        out = outstanding(base, nxt)
        if pending:
            # must transmit the accepted message next
            builder.external(
                (base, nxt, 1), f"-p{nxt}", (base, (nxt + 1) % modulus, 0)
            )
        else:
            if out < window:
                builder.external((base, nxt, 0), "acc", (base, nxt, 1))
        # cumulative acknowledgements for any outstanding message
        for k in range(out):
            seq = (base + k) % modulus
            builder.external(
                (base, nxt, pending), f"+k{seq}",
                ((seq + 1) % modulus, nxt, pending),
            )
    return builder.initial((0, 0, 0)).build()


def sw_window_receiver(window: int, *, name: str | None = None) -> Specification:
    """Sliding-window receiver: in-order delivery, per-message cumulative ack.

    State ``expected`` (mod ``2·window``), plus a delivery/ack pipeline:
    ``+p<i>`` with ``i = expected`` leads to ``del`` then ``-k<i>``;
    out-of-order data (a stale retransmission) is re-acknowledged with the
    last in-order number without delivery.
    """
    modulus = _check_window(window)
    builder = SpecBuilder(name if name is not None else f"SW1(N={window})")
    for expected in range(modulus):
        idle = ("idle", expected)
        last = (expected - 1) % modulus
        # in-order data
        got = ("got", expected)
        builder.external(idle, f"+p{expected}", got)
        builder.external(got, "del", ("ack", expected))
        builder.external(("ack", expected), f"-k{expected}",
                         ("idle", (expected + 1) % modulus))
        # stale data: re-ack the last delivered number, no delivery
        for stale in range(modulus):
            if stale == expected:
                continue
            if (expected - stale) % modulus <= window:
                builder.external(idle, f"+p{stale}", ("reack", expected))
        builder.external(("reack", expected), f"-k{last}", idle)
    return builder.initial(("idle", 0)).build()


def sw_window_channel(window: int, *, name: str | None = None) -> Specification:
    """Reliable, order-preserving, capacity-``window`` duplex channel.

    Modeled as a FIFO queue of at most ``window`` messages (data and acks
    share the queue; with the sender/receiver above the directions never
    actually interleave beyond the window bound).
    """
    modulus = _check_window(window)
    messages = [f"p{i}" for i in range(modulus)] + [
        f"k{i}" for i in range(modulus)
    ]
    builder = SpecBuilder(name if name is not None else f"SWch(N={window})")

    def label(queue: tuple[str, ...]):
        return ("q", queue)

    seen: set[tuple[str, ...]] = set()
    frontier: list[tuple[str, ...]] = [()]
    seen.add(())
    while frontier:
        queue = frontier.pop()
        if len(queue) < window:
            for m in messages:
                nxt = queue + (m,)
                builder.external(label(queue), f"-{m}", label(nxt))
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        if queue:
            head, rest = queue[0], queue[1:]
            builder.external(label(queue), f"+{head}", label(rest))
            if rest not in seen:
                seen.add(rest)
                frontier.append(rest)
    return builder.initial(label(())).build()


def sw_window_system(window: int, *, name: str | None = None) -> Specification:
    """``SW0 ‖ SWch ‖ SW1`` — the composed window-``N`` system.

    Satisfies :func:`~repro.protocols.services.windowed_alternating_service`
    of the same window (validated in the test suite and the ablation
    benchmarks).
    """
    return compose_many(
        [
            sw_window_sender(window),
            sw_window_channel(window),
            sw_window_receiver(window),
        ],
        name=name if name is not None else f"SW(N={window})",
    )
