"""The paper's conversion-problem configurations (Figs. 9 and 13).

Section 5 studies converting between the AB protocol's sender side and the
NS protocol's receiver side so that together they provide the alternating
accept/deliver service of Fig. 11:

* **symmetric configuration** (Fig. 9) — the converter sits between the two
  lossy channels: ``B = A0 ‖ Ach ‖ Nch ‖ N1``.  The converter interface
  Int is the AB channel's receiver side plus the NS channel's sender side
  (including the NS timeout).  The paper shows **no converter exists**: a
  loss between C and N1 is ambiguous (data or acknowledgement?), creating
  an unavoidable conflict between safety and progress.
* **co-located configuration** (Fig. 13) — the converter is placed with the
  NS receiver and exchanges messages with it directly (no Nch, no NS
  timeout): ``B = A0 ‖ Ach ‖ N1``.  Here a converter **does exist**; the
  algorithm produces the (maximal) machine of Fig. 14.

Each builder returns a :class:`ConversionScenario` bundling the service,
the composite ``B``, and the Int/Ext interface, ready to feed to
:func:`repro.quotient.solve_quotient`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compose.nary import compose_many
from ..events import Interface
from ..spec.spec import Specification
from .abp import ab_sender
from .channels import ab_channel, ns_channel
from .nonseq import NS_TIMEOUT, ns_receiver, ns_sender
from .services import alternating_service


@dataclass(frozen=True)
class ConversionScenario:
    """A ready-to-solve conversion problem.

    ``components`` keeps the individual machines for inspection/rendering;
    ``composite`` is their composition ``B``; ``service`` is ``A``;
    ``interface`` is the (Int, Ext) partition.
    """

    title: str
    service: Specification
    components: tuple[Specification, ...]
    composite: Specification
    interface: Interface

    def describe(self) -> str:
        parts = " || ".join(c.name for c in self.components)
        return (
            f"{self.title}\n"
            f"  B = {parts}: {len(self.composite.states)} states, "
            f"{len(self.composite.external)} external / "
            f"{len(self.composite.internal)} internal transitions\n"
            f"  Int = {self.interface.int_events.sorted()}\n"
            f"  Ext = {self.interface.ext_events.sorted()}"
        )


AB_CONVERTER_SIDE = frozenset({"+d0", "+d1", "-a0", "-a1"})
"""The converter's interface to the AB channel (it plays the AB receiver
role toward the channel)."""

NS_SENDER_SIDE = frozenset({"-D", "+A", NS_TIMEOUT})
"""The converter's interface to the NS channel in the symmetric
configuration (it plays the NS sender role, including the timeout)."""

NS_DIRECT_SIDE = frozenset({"+D", "-A"})
"""The converter's direct interface to the NS receiver in the co-located
configuration (the paper: "the '+D' and '-A' events match the same events
in N1")."""

EXT_EVENTS = frozenset({"acc", "del"})
"""The user interface of the conversion system (and of the service)."""


def symmetric_scenario() -> ConversionScenario:
    """Fig. 9: ``B = A0 ‖ Ach ‖ Nch ‖ N1`` — no converter exists."""
    components = (ab_sender(), ab_channel(), ns_channel(), ns_receiver())
    composite = compose_many(components, name="A0||Ach||Nch||N1")
    interface = Interface(AB_CONVERTER_SIDE | NS_SENDER_SIDE, EXT_EVENTS)
    return ConversionScenario(
        title="symmetric configuration (Fig. 9)",
        service=alternating_service(),
        components=components,
        composite=composite,
        interface=interface,
    )


def colocated_scenario() -> ConversionScenario:
    """Fig. 13: ``B = A0 ‖ Ach ‖ N1`` — the Fig. 14 converter exists."""
    components = (ab_sender(), ab_channel(), ns_receiver())
    composite = compose_many(components, name="A0||Ach||N1")
    interface = Interface(AB_CONVERTER_SIDE | NS_DIRECT_SIDE, EXT_EVENTS)
    return ConversionScenario(
        title="co-located configuration (Fig. 13)",
        service=alternating_service(),
        components=components,
        composite=composite,
        interface=interface,
    )


def weakened_symmetric_scenario() -> ConversionScenario:
    """Section 5's remark: duplicates allowed ⇒ a converter exists even in
    the symmetric configuration.

    Same ``B`` as :func:`symmetric_scenario` but the service is the
    at-least-once weakening.
    """
    from .services import at_least_once_service

    base = symmetric_scenario()
    return ConversionScenario(
        title="symmetric configuration, weakened (at-least-once) service",
        service=at_least_once_service(),
        components=base.components,
        composite=base.composite,
        interface=base.interface,
    )


def ns_end_to_end() -> ConversionScenario:
    """The NS protocol operating end to end (no conversion): ``N0 ‖ Nch ‖ N1``.

    Not a quotient problem — used by tests and benchmarks to validate the
    protocol models themselves (at-least-once delivery, duplicates
    possible).
    """
    components = (ns_sender(), ns_channel(), ns_receiver())
    composite = compose_many(components, name="N0||Nch||N1")
    return ConversionScenario(
        title="NS protocol end-to-end",
        service=alternating_service(),  # NOT satisfied — that is the point
        components=components,
        composite=composite,
        interface=Interface(frozenset(), EXT_EVENTS),
    )


def ab_end_to_end(*, lossy: bool = True) -> ConversionScenario:
    """The AB protocol end to end: ``A0 ‖ Ach ‖ A1`` — satisfies Fig. 11.

    Over a lossy or reliable channel, the AB protocol provides exactly-once
    alternating delivery; tests verify this with the satisfaction checker
    as validation of the Fig. 7 reconstruction.
    """
    from .abp import ab_receiver

    components = (ab_sender(), ab_channel(lossy=lossy), ab_receiver())
    composite = compose_many(components, name="A0||Ach||A1")
    return ConversionScenario(
        title=f"AB protocol end-to-end ({'lossy' if lossy else 'reliable'})",
        service=alternating_service(),
        components=components,
        composite=composite,
        interface=Interface(frozenset(), EXT_EVENTS),
    )
