"""Channel models (Fig. 10).

The paper models the duplex channel between a protocol's Sender and
Receiver as a separate component.  Channels are **lossy**: holding a
message, the channel may take an *internal* (unlabeled) transition to a
"lost" state, after which a timeout event occurs at the sending entity.
Modeling loss as a single internal transition is the paper's worked example
of nondeterminism-as-abstraction; the never-premature timeout is modeled by
making the timeout event the *only* event enabled in the lost state.

Conventions: ``-x`` puts message ``x`` into the channel, ``+x`` takes it
out.  Capacity is one message in flight (the classical alternating-bit
setting); both directions share the capacity, which is faithful to the
figure's single machine per protocol.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import SpecError
from ..spec.builder import SpecBuilder
from ..spec.spec import Specification
from .abp import AB_TIMEOUT
from .nonseq import NS_TIMEOUT

EMPTY = "empty"
LOST = "lost"


def lossy_duplex_channel(
    *,
    name: str,
    messages: Sequence[str],
    timeout: str,
) -> Specification:
    """A capacity-one lossy duplex channel over *messages*.

    States: ``empty``; ``("holding", m)`` per message; ``lost``.
    Transitions:

    * ``empty --(-m)--> holding(m)`` — either endpoint inserts ``m``;
    * ``holding(m) --(+m)--> empty`` — the other endpoint removes it;
    * ``holding(m) λ lost`` — the message is lost (internal);
    * ``lost --timeout--> empty`` — the loss eventually manifests as a
      (never premature) timeout at the sending protocol entity.
    """
    if not messages:
        raise SpecError("a channel needs at least one message type", spec_name=name)
    builder = SpecBuilder(name).initial(EMPTY)
    for m in messages:
        holding = ("holding", m)
        builder.external(EMPTY, f"-{m}", holding)
        builder.external(holding, f"+{m}", EMPTY)
        builder.internal(holding, LOST)
    builder.external(LOST, timeout, EMPTY)
    return builder.build()


def reliable_duplex_channel(
    *, name: str, messages: Sequence[str]
) -> Specification:
    """A capacity-one duplex channel that never loses messages.

    Used to validate the protocols in isolation (exactly-once delivery of
    the AB protocol holds over any channel; over a reliable one there are
    no timeouts at all) and for architecture experiments where one leg of
    the path is reliable (Section 6, Fig. 18).
    """
    if not messages:
        raise SpecError("a channel needs at least one message type", spec_name=name)
    builder = SpecBuilder(name).initial(EMPTY)
    for m in messages:
        holding = ("holding", m)
        builder.external(EMPTY, f"-{m}", holding)
        builder.external(holding, f"+{m}", EMPTY)
    return builder.build()


def ab_channel(*, name: str = "Ach", lossy: bool = True) -> Specification:
    """The AB protocol's channel: carries d0, d1 forward and a0, a1 back.

    The reliable variant still *declares* the timeout event (refusing it in
    every state — a timeout can never occur without a loss), so that the
    sender's timeout interface synchronizes and hides under composition
    exactly as in the lossy case.
    """
    messages = ("d0", "d1", "a0", "a1")
    if lossy:
        return lossy_duplex_channel(name=name, messages=messages, timeout=AB_TIMEOUT)
    from ..spec.ops import extend_alphabet

    return extend_alphabet(
        reliable_duplex_channel(name=name, messages=messages), [AB_TIMEOUT]
    )


def ns_channel(*, name: str = "Nch", lossy: bool = True) -> Specification:
    """The NS protocol's channel: carries D forward and A back.

    As with :func:`ab_channel`, the reliable variant declares (and refuses)
    the timeout event so composition interfaces match the lossy variant.
    """
    messages = ("D", "A")
    if lossy:
        return lossy_duplex_channel(name=name, messages=messages, timeout=NS_TIMEOUT)
    from ..spec.ops import extend_alphabet

    return extend_alphabet(
        reliable_duplex_channel(name=name, messages=messages), [NS_TIMEOUT]
    )


def simplex_channel(
    *, name: str, messages: Iterable[str], lossy: bool = False, timeout: str | None = None
) -> Specification:
    """A one-direction channel (insert with ``-m``, remove with ``+m``).

    A building block for architecture experiments that wire explicit
    per-direction paths.  With ``lossy=True`` a *timeout* event name is
    required.
    """
    messages = tuple(messages)
    if lossy and timeout is None:
        raise SpecError("a lossy channel needs a timeout event", spec_name=name)
    builder = SpecBuilder(name).initial(EMPTY)
    for m in messages:
        holding = ("holding", m)
        builder.external(EMPTY, f"-{m}", holding)
        builder.external(holding, f"+{m}", EMPTY)
        if lossy:
            builder.internal(holding, LOST)
    if lossy:
        assert timeout is not None
        builder.external(LOST, timeout, EMPTY)
    return builder.build()
