"""Service specifications (Fig. 11 and the Section 5 variants).

A service specification describes the conversion system's required
behaviour at the *user* interface (``Ext``), abstracting away every
protocol detail.
"""

from __future__ import annotations

from ..errors import SpecError
from ..spec.builder import SpecBuilder
from ..spec.spec import Specification


def alternating_service(
    *, name: str = "S", accept: str = "acc", deliver: str = "del"
) -> Specification:
    """The paper's desired service (Fig. 11): strict alternation.

    Every accepted message is delivered exactly once before the next can be
    accepted: traces are prefixes of ``acc del acc del ...``.  Deterministic
    and λ-free, hence trivially in normal form.
    """
    return (
        SpecBuilder(name)
        .external(0, accept, 1)
        .external(1, deliver, 0)
        .initial(0)
        .build()
    )


def at_least_once_service(
    *, name: str = "S+", accept: str = "acc", deliver: str = "del"
) -> Specification:
    """The weakened service of Section 5: duplicates permitted.

    Trace set: prefixes of ``(acc del+)*`` — after an accept, the message is
    delivered one *or more* times before the next accept.  This is the
    weakening the paper notes makes a converter possible even in the
    symmetric configuration, because a retransmission that turns out to be
    a duplicate no longer violates safety.

    The *acceptance structure* matters as much as the trace set here, and
    it is a textbook use of the paper's "nondeterminism as choice among
    acceptable behaviours": after at least one delivery, the service
    internally **chooses** between offering a duplicate delivery and
    offering the next accept (a hub state with λ edges to a ``{del}``
    option and an ``{acc}`` option).  A conversion system may therefore
    settle into *either* behaviour.  The deterministic variant
    (:func:`at_least_once_service_strict`), whose single acceptance set is
    ``{acc, del}``, demands that both events be simultaneously offerable —
    a strictly stronger progress obligation that the symmetric
    configuration still cannot meet (see the SEC5-W experiment).
    """
    return (
        SpecBuilder(name)
        .external(0, accept, 1)
        .external(1, deliver, "hub")
        .internal("hub", "dup")
        .internal("hub", "next")
        .external("dup", deliver, "hub")
        .external("next", accept, 1)
        .initial(0)
        .build()
    )


def at_least_once_service_strict(
    *, name: str = "S+det", accept: str = "acc", deliver: str = "del"
) -> Specification:
    """Deterministic variant of :func:`at_least_once_service`.

    Same trace set (prefixes of ``(acc del+)*``) but a single acceptance
    set ``{acc, del}`` after a delivery: the implementation must keep both
    a duplicate delivery *and* the next accept continuously available.
    Kept as a separate spec because the contrast between the two variants
    is a reproduced finding (experiment SEC5-W).
    """
    return (
        SpecBuilder(name)
        .external(0, accept, 1)
        .external(1, deliver, 2)
        .external(2, deliver, 2)
        .external(2, accept, 1)
        .initial(0)
        .build()
    )


def windowed_alternating_service(
    window: int, *, name: str | None = None, accept: str = "acc", deliver: str = "del"
) -> Specification:
    """Exactly-once delivery with up to *window* outstanding messages.

    Generalizes Fig. 11 (which is ``window=1``): up to *window* accepts may
    run ahead of deliveries, each message still delivered exactly once and
    in order.  Used by scaling benchmarks to grow service state spaces with
    a meaningful knob.
    """
    if window < 1:
        raise SpecError("window must be at least 1")
    builder = SpecBuilder(name if name is not None else f"S(w={window})")
    for outstanding in range(window + 1):
        if outstanding < window:
            builder.external(outstanding, accept, outstanding + 1)
        if outstanding > 0:
            builder.external(outstanding, deliver, outstanding - 1)
    return builder.initial(0).build()


def choice_service(
    *, name: str = "Schoice", accept: str = "acc", deliver: str = "del", reject: str = "rej"
) -> Specification:
    """A nondeterministic service exercising acceptance-set machinery.

    After an accept, the service *chooses* (internal transitions from a hub
    to two option states — normal form by construction) to either deliver
    the message or reject it.  An implementation may settle on either
    option; an environment must be prepared for both.  Used by tests for
    the progress semantics of genuinely nondeterministic normal-form
    services.
    """
    return (
        SpecBuilder(name)
        .external("idle", accept, "hub")
        .internal("hub", "opt_deliver")
        .internal("hub", "opt_reject")
        .external("opt_deliver", deliver, "idle")
        .external("opt_reject", reject, "idle")
        .initial("idle")
        .build()
    )
