"""The non-sequenced protocol (Fig. 8).

The NS protocol has no sequence numbers:

* the **Sender** ``N0`` accepts a message (``acc``), transmits it (``-D``),
  and retransmits on timeout until an acknowledgement (``+A``) arrives;
* the **Receiver** ``N1`` delivers (``del``) *every* received data message
  (``+D``) and acknowledges it (``-A``).

Both protocols guarantee at-least-once delivery over lossy channels, but NS
may deliver duplicates (a retransmission after a lost acknowledgement is
indistinguishable from new data), so its service is strictly weaker than
the AB protocol's exactly-once service — the root of the conversion
difficulty analyzed in Section 5.
"""

from __future__ import annotations

from ..spec.builder import SpecBuilder
from ..spec.spec import Specification

NS_TIMEOUT = "timeoutN"
"""The NS sender/channel timeout event name (distinct from the AB one —
in the paper's Fig. 9 configuration the two timeouts belong to different
interfaces: the AB timeout is internal to ``A0 ‖ Ach`` while the NS timeout
is part of the converter's interface)."""


def ns_sender(*, name: str = "N0", timeout: str = NS_TIMEOUT) -> Specification:
    """The NS protocol Sender ``N0``.

    States: 0 idle; 1 ready to (re)transmit D; 2 waiting for A.
    """
    return (
        SpecBuilder(name)
        .external(0, "acc", 1)
        .external(1, "-D", 2)
        .external(2, "+A", 0)
        .external(2, timeout, 1)
        .initial(0)
        .build()
    )


def ns_receiver(*, name: str = "N1") -> Specification:
    """The NS protocol Receiver ``N1``.

    States: 0 waiting for data; 1 ready to deliver; 2 ready to acknowledge.
    Delivers every received message — no duplicate suppression.
    """
    return (
        SpecBuilder(name)
        .external(0, "+D", 1)
        .external(1, "del", 2)
        .external(2, "-A", 0)
        .initial(0)
        .build()
    )


def ns_protocol_events() -> dict[str, frozenset[str]]:
    """The NS protocol's event sets, by interface."""
    return {
        "user_sender": frozenset({"acc"}),
        "user_receiver": frozenset({"del"}),
        "channel_sender": frozenset({"-D", "+A", NS_TIMEOUT}),
        "channel_receiver": frozenset({"+D", "-A"}),
    }
