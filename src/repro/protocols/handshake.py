"""Connection-establishment handshake protocols (library extension).

A conversion problem at the *connection management* level — the function
Section 6 singles out as the hard part of transport-level conversion
("the connection management function is concerned with end-to-end
synchronization").  Two mismatched handshake disciplines:

* a **two-way client**: user ``open`` → send connect-request ``CR`` →
  await connect-confirm ``CC`` (then considers the connection up);
* a **three-way server**: receive ``cr`` → (depending on the variant,
  see below) surface ``ready`` to its user and send ``cc`` → await the
  completing ``ack``.

The service over ``Ext = {open, ready}`` demands strict alternation: each
client ``open`` is followed by exactly one server-side ``ready`` before
the next ``open``.

The server comes in two variants that differ only in *when* the user-
visible ``ready`` happens relative to the confirm, plus a lossy-channel
variant; all three outcomes are derived and verified mechanically (tests
and the HS benchmark):

* ``accept_first=True`` (accept-then-confirm, BSD-``accept()``-like):
  ``ready`` precedes ``-cc`` — the converter's receipt of ``cc`` *proves*
  the server user has observed the connection.  A straightforward 9-state
  converter exists.
* ``accept_first=False`` (confirm-then-accept): ``ready`` happens after
  the completing ``ack``, invisible to the converter.  Naive analysis
  suggests no converter (confirming the client before ``ready`` risks an
  early second ``open``; never confirming stalls the client) — but the
  quotient algorithm **finds one anyway**: it pipelines, pre-opening the
  *next* server handshake and using the server's willingness to accept a
  new ``cr`` (only possible after ``ready`` was consumed) as an observable
  proxy.  A 12-state converter, and a demonstration that the maximal
  construction discovers side channels a human analysis misses.
* :func:`lossy_handshake_scenario`: over a lossy client channel, the
  two-way client (which has no timeout/retransmission) cannot recover a
  lost ``CR`` and no converter exists — a genuine nonexistence instance at
  the connection-management level.
"""

from __future__ import annotations

from ..compose.nary import compose_many
from ..events import Interface
from ..spec.builder import SpecBuilder
from ..spec.spec import Specification
from .channels import reliable_duplex_channel
from .configs import ConversionScenario
from .services import alternating_service


def twoway_client(*, name: str = "HC") -> Specification:
    """The two-way handshake client: open, send CR, await CC."""
    return (
        SpecBuilder(name)
        .external(0, "open", 1)
        .external(1, "-CR", 2)
        .external(2, "+CC", 0)
        .initial(0)
        .build()
    )


def threeway_server(*, accept_first: bool = True, name: str | None = None) -> Specification:
    """The three-way handshake server (see module docstring for variants)."""
    resolved = name if name is not None else (
        "HS-accept-first" if accept_first else "HS-confirm-first"
    )
    builder = SpecBuilder(resolved)
    if accept_first:
        # +cr, ready (user accepts), -cc, +ack
        builder.external(0, "+cr", 1)
        builder.external(1, "ready", 2)
        builder.external(2, "-cc", 3)
        builder.external(3, "+ack", 0)
    else:
        # +cr, -cc, +ack, ready (user learns last)
        builder.external(0, "+cr", 1)
        builder.external(1, "-cc", 2)
        builder.external(2, "+ack", 3)
        builder.external(3, "ready", 0)
    return builder.initial(0).build()


def handshake_channel(*, name: str = "HCch") -> Specification:
    """Reliable client-side channel carrying CR toward the converter and
    CC back (the converter is co-located with the server)."""
    return reliable_duplex_channel(name=name, messages=("CR", "CC"))


CLIENT_SIDE = frozenset({"+CR", "-CC"})
"""Converter interface to the client's channel."""

SERVER_SIDE = frozenset({"+cr", "-cc", "+ack"})
"""Converter interface directly to the server (co-located)."""

HS_EXT = frozenset({"open", "ready"})
"""User interface of the handshake conversion system."""


def handshake_scenario(*, accept_first: bool = True) -> ConversionScenario:
    """The handshake conversion problem, in either server variant.

    ``B = client ‖ channel ‖ server``;
    ``Int`` = the converter's two interfaces; ``Ext = {open, ready}``.
    """
    components = (
        twoway_client(),
        handshake_channel(),
        threeway_server(accept_first=accept_first),
    )
    composite = compose_many(
        components,
        name=f"HC||HCch||{components[2].name}",
    )
    return ConversionScenario(
        title=(
            "handshake conversion, "
            + ("accept-then-confirm server" if accept_first
               else "confirm-then-accept server")
        ),
        service=alternating_service(accept="open", deliver="ready"),
        components=components,
        composite=composite,
        interface=Interface(CLIENT_SIDE | SERVER_SIDE, HS_EXT),
    )


HS_TIMEOUT = "timeoutH"
"""Loss-timeout event of the lossy client channel (surfaces at the
converter, which plays the sending role toward the client for CC)."""


def lossy_handshake_scenario(*, accept_first: bool = True) -> ConversionScenario:
    """The handshake conversion over a *lossy* client channel.

    The two-way client has no timeout/retransmission of its own, so a lost
    ``CR`` strands it waiting for a confirm that may never legitimately
    come: **no converter exists** (the quotient empties), even in the
    accept-first variant.  The converter's timeout knowledge does not
    help — it cannot make the client resend.
    """
    from .channels import lossy_duplex_channel

    components = (
        twoway_client(),
        lossy_duplex_channel(
            name="HCch", messages=("CR", "CC"), timeout=HS_TIMEOUT
        ),
        threeway_server(accept_first=accept_first),
    )
    composite = compose_many(
        components,
        name=f"HC||lossy(HCch)||{components[2].name}",
    )
    return ConversionScenario(
        title=(
            "handshake conversion over a lossy client channel "
            f"({'accept' if accept_first else 'confirm'}-first server)"
        ),
        service=alternating_service(accept="open", deliver="ready"),
        components=components,
        composite=composite,
        interface=Interface(
            CLIENT_SIDE | SERVER_SIDE | {HS_TIMEOUT}, HS_EXT
        ),
    )
