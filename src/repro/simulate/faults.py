"""Runtime fault injection: adversarial schedulers for the simulator.

The analytical fault models of :mod:`repro.faults` change *what a
component can do* (they rewrite the specification); the injectors here
change *what the scheduler chooses to do*.  Each injector wraps a base
policy and, with a seeded probability, steers the run toward a fault
pattern the semantics already permits:

* :class:`DropInjector` — prefer a component's internal (λ) moves.  On a
  lossy channel the holding→lost λ **is** the loss event, so a high-rate
  drop injector is an adversarial network that loses as many messages as
  the specification allows.
* :class:`StallInjector` — prefer any non-external move, starving the
  observable interface.  The operational face of an *unfair* scheduler:
  a system can satisfy progress analytically (which assumes fairness)
  while a stall injector drives its :class:`ProgressWatchdog` past any
  finite budget.
* :class:`DuplicateInjector` — when the most recently executed
  interaction is enabled again, prefer re-taking it (replayed deliveries
  and retransmissions scheduled back-to-back).

Injectors never invent moves: every choice comes from the enabled-move
list, so injected runs remain valid runs of the composed system — a
triggered watchdog under injection is evidence about scheduling, not a
semantics bug.  When no target move is enabled (or the dice say no) the
wrapped base policy chooses, so ``rate=0.0`` reduces every injector to
its base policy.
"""

from __future__ import annotations

import random

from .engine import Move
from .policies import FairRandomPolicy, Policy, _require_moves


class _Injector:
    """Shared machinery: seeded dice, a wrapped base policy, a counter."""

    def __init__(
        self,
        base: Policy | None = None,
        *,
        rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        self._base = base if base is not None else FairRandomPolicy(seed)
        self._rate = rate
        self._rng = random.Random(seed)
        self.injected = 0

    def _candidates(self, moves: list[Move]) -> list[Move]:
        raise NotImplementedError

    def _observe(self, move: Move) -> None:
        """Hook: see every executed move (chosen by us or the base)."""

    def __call__(self, moves: list[Move], step_index: int) -> Move:
        _require_moves(moves, step_index)
        candidates = self._candidates(moves)
        if candidates and self._rng.random() < self._rate:
            self.injected += 1
            move = candidates[self._rng.randrange(len(candidates))]
        else:
            move = self._base(moves, step_index)
        self._observe(move)
        return move


class DropInjector(_Injector):
    """Prefer internal (λ) moves of one component — message loss, when
    that component is a lossy channel.

    ``component`` is the index of the targeted component in the
    simulator's component list (``None`` targets every component's λ
    moves).
    """

    def __init__(
        self,
        base: Policy | None = None,
        *,
        component: int | None = None,
        rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(base, rate=rate, seed=seed)
        self._component = component

    def _candidates(self, moves: list[Move]) -> list[Move]:
        return [
            m
            for m in moves
            if m.kind == "internal"
            and (
                self._component is None
                or m.participants[0] == self._component
            )
        ]


class StallInjector(_Injector):
    """Prefer non-external moves, starving the observable interface."""

    def _candidates(self, moves: list[Move]) -> list[Move]:
        return [m for m in moves if m.kind != "external"]


class DuplicateInjector(_Injector):
    """Prefer immediately re-taking the last executed interaction.

    Whenever the most recently executed interaction event is enabled
    again, take it (with probability ``rate``) — scheduling retransmitted
    deliveries back-to-back, the runtime counterpart of the analytical
    :func:`repro.faults.duplication` model.
    """

    def __init__(
        self,
        base: Policy | None = None,
        *,
        rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(base, rate=rate, seed=seed)
        self._last_interaction: object = None

    def _candidates(self, moves: list[Move]) -> list[Move]:
        if self._last_interaction is None:
            return []
        return [
            m
            for m in moves
            if m.kind == "interaction" and m.event == self._last_interaction
        ]

    def _observe(self, move: Move) -> None:
        if move.kind == "interaction":
            self._last_interaction = move.event
