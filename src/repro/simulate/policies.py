"""Move-selection policies for the simulator.

A policy is any callable ``(moves, step_index) -> Move``.  All built-in
policies are deterministic for a given seed, so runs are reproducible.

Every built-in policy guards against an empty move list with a structured
:class:`~repro.errors.DeadlockError` instead of whatever arithmetic
accident the selection code would otherwise hit (``randrange(0)``,
``step_index % 0``, weighted choice over nothing) — a policy is only ever
given moves to choose among; an empty list means the caller skipped the
simulator's deadlock handling.
"""

from __future__ import annotations

import random
from typing import Callable

from ..errors import DeadlockError
from .engine import Move

Policy = Callable[[list[Move], int], Move]


def _require_moves(moves: list[Move], step_index: int) -> None:
    if not moves:
        raise DeadlockError(
            f"policy invoked with no enabled moves at step {step_index}",
            step_index=step_index,
        )


class RandomPolicy:
    """Uniformly random choice among enabled moves (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def __call__(self, moves: list[Move], step_index: int) -> Move:
        _require_moves(moves, step_index)
        return moves[self._rng.randrange(len(moves))]


class RoundRobinPolicy:
    """Cycle deterministically through move indices.

    Cheap, seedless, and guarantees every persistently-enabled move class
    is eventually taken on long runs (a crude fairness).
    """

    def __call__(self, moves: list[Move], step_index: int) -> Move:
        _require_moves(moves, step_index)
        return moves[step_index % len(moves)]


class FairRandomPolicy:
    """Random choice biased toward moves taken least often.

    Implements the paper's fairness assumption operationally: a repeatedly
    enabled move cannot be pre-empted forever.  Selection weight is
    ``1 / (1 + times_taken)`` per move label.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._taken: dict[str, int] = {}

    def __call__(self, moves: list[Move], step_index: int) -> Move:
        _require_moves(moves, step_index)
        weights = [
            1.0 / (1 + self._taken.get(m.label(), 0)) for m in moves
        ]
        chosen = self._rng.choices(range(len(moves)), weights=weights)[0]
        move = moves[chosen]
        self._taken[move.label()] = self._taken.get(move.label(), 0) + 1
        return move


class BiasedPolicy:
    """Random choice with per-kind multipliers — e.g. a loss-happy
    adversary (``internal`` bias > 1) or a latency-free network
    (``interaction`` bias high).

    ``biases`` maps move kinds (``"internal"``, ``"interaction"``,
    ``"external"``) or exact event names to weight multipliers (default 1).
    Event-name entries take precedence over kind entries.
    """

    def __init__(self, biases: dict[str, float], seed: int = 0) -> None:
        self._biases = dict(biases)
        self._rng = random.Random(seed)

    def _weight(self, move: Move) -> float:
        if move.event is not None and move.event in self._biases:
            return self._biases[move.event]
        return self._biases.get(move.kind, 1.0)

    def __call__(self, moves: list[Move], step_index: int) -> Move:
        _require_moves(moves, step_index)
        weights = [max(self._weight(m), 0.0) for m in moves]
        if not any(w > 0 for w in weights):
            weights = [1.0] * len(moves)
        chosen = self._rng.choices(range(len(moves)), weights=weights)[0]
        return moves[chosen]


class ScriptedPolicy:
    """Follow a fixed label script, falling back to a base policy.

    Useful in tests to drive a system into a specific corner: each step,
    if some enabled move's :meth:`~repro.simulate.engine.Move.label`
    matches the next unconsumed script entry, take it; otherwise defer to
    the fallback policy without consuming the entry.
    """

    def __init__(self, script: list[str], fallback: Policy | None = None) -> None:
        self._script = list(script)
        self._cursor = 0
        self._fallback = fallback or RoundRobinPolicy()

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._script)

    def __call__(self, moves: list[Move], step_index: int) -> Move:
        _require_moves(moves, step_index)
        if self._cursor < len(self._script):
            wanted = self._script[self._cursor]
            for move in moves:
                if move.label() == wanted:
                    self._cursor += 1
                    return move
        return self._fallback(moves, step_index)
