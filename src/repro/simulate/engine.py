"""Discrete-event execution of composed specifications.

The rest of the library reasons about systems *analytically* (state-space
exploration); this package *runs* them.  A :class:`Simulator` holds a set
of components (exactly the machines you would pass to ``compose_many``),
tracks the current state vector, enumerates the moves the semantics
permits, and lets a pluggable policy choose among them:

* **internal move** — one component's λ transition;
* **interaction** — an event shared by exactly two components, enabled in
  both (the composition operator would hide it; the simulator executes it
  and records it);
* **external event** — an event owned by exactly one component, offered to
  the environment (the run's observable trace).

Executed runs agree with the analytical semantics by construction — the
moves enumerated at each step are precisely the outgoing transitions of
the corresponding composite state — and the test suite checks executed
traces against `accepts` on the composed machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .. import obs
from ..errors import CompositionError, DeadlockError
from ..events import Event
from ..spec.spec import Specification, State, _state_sort_key

StateVector = tuple[State, ...]

# precomputed counter names: Simulator.step is hot, so the disabled path
# must not pay for per-step string formatting
_MOVE_COUNTER = {
    "internal": "sim.moves.internal",
    "interaction": "sim.moves.interaction",
    "external": "sim.moves.external",
}


@dataclass(frozen=True)
class Move:
    """One executable move of the system.

    ``kind`` is ``"internal"`` (λ of one component), ``"interaction"``
    (synchronized shared event), or ``"external"`` (environment-visible
    event).  ``participants`` holds the indices of the components that
    change state; ``event`` is ``None`` only for λ moves.
    """

    kind: str
    event: Event | None
    participants: tuple[int, ...]
    before: StateVector
    after: StateVector

    def label(self) -> str:
        if self.kind == "internal":
            return f"λ@{self.participants[0]}"
        return str(self.event)


@dataclass
class RunLog:
    """The record of an executed run."""

    steps: list[Move] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def external_trace(self) -> tuple[Event, ...]:
        return tuple(
            m.event for m in self.steps if m.kind == "external" and m.event
        )

    @property
    def interaction_trace(self) -> tuple[Event, ...]:
        return tuple(
            m.event for m in self.steps if m.kind == "interaction" and m.event
        )

    def count(self, event: Event) -> int:
        return sum(1 for m in self.steps if m.event == event)

    def histogram(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for m in self.steps:
            out[m.label()] = out.get(m.label(), 0) + 1
        return dict(sorted(out.items()))

    def metrics(self) -> dict:
        """Per-run step/move metrics as a JSON-ready dict.

        The machine-readable companion of :meth:`histogram`: total steps,
        deadlock flag, move counts by kind, and the per-label histogram.
        """
        by_kind = {"internal": 0, "interaction": 0, "external": 0}
        for m in self.steps:
            by_kind[m.kind] += 1
        return {
            "steps": len(self.steps),
            "deadlocked": self.deadlocked,
            "moves": by_kind,
            "events": self.histogram(),
        }


class Simulator:
    """Step-by-step executor for a set of interacting components.

    Parameters
    ----------
    components:
        The machines, as they would be given to ``compose_many``.  Each
        event may appear in at most two components' alphabets (the same
        point-to-point restriction n-ary composition enforces).
    policy:
        A move chooser: callable ``(moves, step_index) -> Move`` given the
        deterministically-ordered list of enabled moves.  See
        :mod:`repro.simulate.policies`.
    """

    def __init__(self, components: Sequence[Specification], policy) -> None:
        if not components:
            raise CompositionError("simulator needs at least one component")
        owners: dict[Event, list[int]] = {}
        for idx, comp in enumerate(components):
            for e in comp.alphabet:
                owners.setdefault(e, []).append(idx)
        overshared = sorted(e for e, o in owners.items() if len(o) > 2)
        if overshared:
            raise CompositionError(
                f"events {overshared} appear in three or more component "
                "alphabets; declare point-to-point interfaces"
            )
        self._components = tuple(components)
        self._owners = {e: tuple(o) for e, o in owners.items()}
        self._policy = policy
        self._states: StateVector = tuple(c.initial for c in components)
        self._log = RunLog()

    # ------------------------------------------------------------------
    @property
    def states(self) -> StateVector:
        """The current state vector."""
        return self._states

    @property
    def log(self) -> RunLog:
        return self._log

    @property
    def components(self) -> tuple[Specification, ...]:
        return self._components

    # ------------------------------------------------------------------
    def enabled_moves(self) -> list[Move]:
        """All moves executable from the current state, in a deterministic
        order (internal moves, then interactions, then externals; each
        sorted)."""
        moves: list[Move] = []
        vector = self._states

        for idx, comp in enumerate(self._components):
            for s2 in sorted(
                comp.internal_successors(vector[idx]), key=_state_sort_key
            ):
                after = self._with(vector, {idx: s2})
                moves.append(
                    Move("internal", None, (idx,), vector, after)
                )

        for e in sorted(self._owners):
            owner_ids = self._owners[e]
            if len(owner_ids) == 2:
                i, j = owner_ids
                ci, cj = self._components[i], self._components[j]
                for si in sorted(ci.successors(vector[i], e), key=_state_sort_key):
                    for sj in sorted(
                        cj.successors(vector[j], e), key=_state_sort_key
                    ):
                        after = self._with(vector, {i: si, j: sj})
                        moves.append(
                            Move("interaction", e, owner_ids, vector, after)
                        )
            else:
                (i,) = owner_ids
                comp = self._components[i]
                for s2 in sorted(
                    comp.successors(vector[i], e), key=_state_sort_key
                ):
                    after = self._with(vector, {i: s2})
                    moves.append(Move("external", e, (i,), vector, after))
        return moves

    @staticmethod
    def _with(vector: StateVector, updates: dict[int, State]) -> StateVector:
        return tuple(
            updates.get(idx, s) for idx, s in enumerate(vector)
        )

    # ------------------------------------------------------------------
    def step(self, *, strict: bool = False) -> Move | None:
        """Execute one move chosen by the policy; ``None`` on deadlock.

        With ``strict=True`` a deadlock raises a structured
        :class:`~repro.errors.DeadlockError` carrying the composite state
        vector and the step index instead of returning ``None`` (the log's
        ``deadlocked`` flag is set either way).
        """
        moves = self.enabled_moves()
        if not moves:
            self._log.deadlocked = True
            obs.add("sim.deadlocks", 1)
            if strict:
                raise DeadlockError(
                    f"no enabled move at step {len(self._log.steps)} "
                    f"in state {self._states!r}",
                    state_vector=self._states,
                    step_index=len(self._log.steps),
                )
            return None
        move = self._policy(moves, len(self._log.steps))
        if move not in moves:
            raise CompositionError(
                "policy returned a move that is not enabled"
            )
        self._states = move.after
        self._log.steps.append(move)
        obs.add("sim.steps", 1)
        obs.add(_MOVE_COUNTER[move.kind], 1)
        return move

    def run(self, max_steps: int, *, strict: bool = False) -> RunLog:
        """Execute up to *max_steps* moves (stops early on deadlock).

        ``strict`` propagates to :meth:`step`: a deadlock raises
        :class:`~repro.errors.DeadlockError` instead of ending the run.
        """
        with obs.span("simulate.run", max_steps=max_steps) as sp:
            for _ in range(max_steps):
                if self.step(strict=strict) is None:
                    break
            sp.set(steps=len(self._log.steps), deadlocked=self._log.deadlocked)
        return self._log

    def reset(self) -> None:
        """Return to the initial state vector and clear the log."""
        self._states = tuple(c.initial for c in self._components)
        self._log = RunLog()
