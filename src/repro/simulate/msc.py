"""ASCII message-sequence-chart rendering of executed runs.

Turns a :class:`~repro.simulate.engine.RunLog` into the classic
protocol-paper sequence diagram: one lifeline per component plus an
environment lifeline on the right; interactions are horizontal arrows
between the participating lifelines, external events are arrows to/from
the environment, internal moves are annotated ticks on their lifeline.
"""

from __future__ import annotations

from typing import Sequence

from ..spec.spec import Specification
from .engine import RunLog

ENV = "(env)"


def _lane_positions(names: Sequence[str], width: int) -> list[int]:
    return [i * width + width // 2 for i in range(len(names))]


def render_msc(
    log: RunLog,
    components: Sequence[Specification],
    *,
    max_steps: int | None = None,
    lane_width: int = 14,
    include_internal: bool = True,
) -> str:
    """Render *log* (from a simulator over *components*) as an ASCII MSC.

    ``max_steps`` truncates long runs; internal (λ) moves can be hidden
    with ``include_internal=False``.
    """
    names = [c.name for c in components] + [ENV]
    env_idx = len(components)
    positions = _lane_positions(names, lane_width)
    total_width = lane_width * len(names)

    def lifeline_row() -> list[str]:
        row = [" "] * total_width
        for pos in positions:
            row[pos] = "|"
        return row

    def header() -> str:
        row = [" "] * total_width
        for name, pos in zip(names, positions):
            label = name[: lane_width - 2]
            start = max(0, min(pos - len(label) // 2, total_width - len(label)))
            row[start : start + len(label)] = label
        return "".join(row).rstrip()

    def arrow(row: list[str], src: int, dst: int, label: str) -> None:
        a, b = positions[src], positions[dst]
        left, right = (a, b) if a < b else (b, a)
        for x in range(left + 1, right):
            row[x] = "-"
        row[right if a < b else left] = ">" if a < b else "<"
        # place the label centred on the span
        mid = (left + right) // 2
        start = max(left + 1, mid - len(label) // 2)
        end = min(start + len(label), right)
        row[start:end] = label[: end - start]

    def tick(row: list[str], lane: int, label: str) -> None:
        pos = positions[lane]
        row[pos] = "*"
        text = f" {label}"
        end = min(pos + 1 + len(text), total_width)
        row[pos + 1 : end] = text[: end - pos - 1]

    lines = [header()]
    steps = log.steps if max_steps is None else log.steps[:max_steps]
    for idx, move in enumerate(steps):
        if move.kind == "internal" and not include_internal:
            continue
        row = lifeline_row()
        if move.kind == "interaction":
            i, j = move.participants
            assert move.event is not None
            arrow(row, i, j, move.event)
        elif move.kind == "external":
            (i,) = move.participants
            assert move.event is not None
            # receives (+x) and user-submissions flow env -> component;
            # everything else component -> env.  Direction is cosmetic.
            if move.event.startswith("+"):
                arrow(row, env_idx, i, move.event)
            else:
                arrow(row, i, env_idx, move.event)
        else:
            tick(row, move.participants[0], "λ")
        prefix = f"{idx:4d} "
        lines.append(prefix + "".join(row).rstrip())
    if max_steps is not None and len(log.steps) > max_steps:
        lines.append(f"     ... ({len(log.steps) - max_steps} more steps)")
    if log.deadlocked:
        lines.append("     == DEADLOCK ==")
    return "\n".join(lines)
