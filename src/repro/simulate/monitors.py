"""Runtime monitors: check executed runs against specifications online.

* :class:`ServiceMonitor` — a safety monitor synthesized from a service
  specification: feed it the run's external events; it tracks the set of
  service states compatible with the observed trace (online subset
  construction) and reports the first violation with its trace.
* :class:`ProgressWatchdog` — flags runs that go too long without any
  external event (the operational face of a progress violation: the
  analytical check says *may* never offer; the watchdog observes *hasn't
  for N steps*).

Monitors are deliberately independent of the analytical checkers — they
re-derive their verdicts from raw event feeds — so simulation results can
cross-validate the satisfaction machinery (and do, in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Event
from ..spec.graph import close_under_lambda
from ..spec.spec import Specification, State
from ..traces.core import Trace, format_trace
from ..traces.language import subset_step
from .engine import Move


@dataclass(frozen=True)
class MonitorVerdict:
    """Outcome of monitoring a run."""

    ok: bool
    violation_trace: Trace | None
    events_seen: int

    def describe(self) -> str:
        if self.ok:
            return f"monitor OK ({self.events_seen} external events)"
        assert self.violation_trace is not None
        return (
            "monitor VIOLATION: observed "
            f"{format_trace(self.violation_trace)} which the service forbids"
        )


class ServiceMonitor:
    """Online safety monitor for a service specification."""

    def __init__(self, service: Specification) -> None:
        self._service = service
        self._possible: frozenset[State] = close_under_lambda(
            service, [service.initial]
        )
        self._trace: list[Event] = []
        self._violation: Trace | None = None

    @property
    def ok(self) -> bool:
        return self._violation is None

    @property
    def trace(self) -> Trace:
        return tuple(self._trace)

    def observe(self, event: Event) -> bool:
        """Feed one external event; returns False on (first) violation."""
        if self._violation is not None:
            return False
        self._trace.append(event)
        nxt = subset_step(self._service, self._possible, event)
        if not nxt:
            self._violation = tuple(self._trace)
            return False
        self._possible = nxt
        return True

    def observe_move(self, move: Move) -> bool:
        """Feed a simulator move (non-external moves are ignored)."""
        if move.kind != "external" or move.event is None:
            return True
        return self.observe(move.event)

    def verdict(self) -> MonitorVerdict:
        return MonitorVerdict(
            ok=self._violation is None,
            violation_trace=self._violation,
            events_seen=len(self._trace),
        )


class ProgressWatchdog:
    """Flags *observed* stalls: too many moves without an external event.

    ``limit`` is the stall budget.  A triggered watchdog on a fair policy
    is strong evidence of (though not a proof of) a progress problem; the
    harness pairs it with the analytical checker.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._since_external = 0
        self._worst = 0
        self._triggered_at: int | None = None
        self._steps = 0

    @property
    def triggered(self) -> bool:
        return self._triggered_at is not None

    @property
    def worst_stall(self) -> int:
        return max(self._worst, self._since_external)

    @property
    def triggered_at(self) -> int | None:
        return self._triggered_at

    def observe_move(self, move: Move) -> bool:
        """Feed a move; returns False when the stall budget is exceeded."""
        self._steps += 1
        if move.kind == "external":
            self._worst = max(self._worst, self._since_external)
            self._since_external = 0
            return True
        self._since_external += 1
        if self._since_external > self.limit and self._triggered_at is None:
            self._triggered_at = self._steps
        return not self.triggered

    def describe(self) -> str:
        if self.triggered:
            return (
                f"watchdog TRIGGERED at step {self._triggered_at}: "
                f"{self._since_external} consecutive moves with no "
                "external event"
            )
        return f"watchdog ok (worst stall {self.worst_stall} moves)"
