"""End-to-end simulation harness for conversion systems.

Glues the engine, policies, and monitors into one call: execute a
converter (or any component set) against its environment for many steps,
under a seeded policy, with a service monitor and a progress watchdog
attached, and return an aggregate report.  ``stress`` repeats over many
seeds — the executable counterpart of the analytical verification the
solver performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..spec.spec import Specification
from .engine import RunLog, Simulator
from .monitors import MonitorVerdict, ProgressWatchdog, ServiceMonitor
from .policies import FairRandomPolicy, Policy


@dataclass(frozen=True)
class RunReport:
    """Aggregate outcome of one simulated run."""

    seed: int
    steps: int
    deadlocked: bool
    monitor: MonitorVerdict
    watchdog_triggered: bool
    worst_stall: int
    external_counts: dict[str, int]
    interaction_counts: dict[str, int]

    @property
    def ok(self) -> bool:
        return self.monitor.ok and not self.deadlocked

    def describe(self) -> str:
        externals = ", ".join(
            f"{e}×{n}" for e, n in sorted(self.external_counts.items())
        )
        return (
            f"seed {self.seed}: {self.steps} steps, "
            f"{'DEADLOCK, ' if self.deadlocked else ''}"
            f"{self.monitor.describe()}; externals: {externals or '(none)'}; "
            f"worst stall {self.worst_stall}"
        )


def simulate_system(
    components: Sequence[Specification],
    service: Specification,
    *,
    steps: int = 2_000,
    seed: int = 0,
    policy: Policy | None = None,
    stall_limit: int = 500,
) -> RunReport:
    """Run *components* for *steps* moves, monitored against *service*.

    The default policy is :class:`FairRandomPolicy` (the paper's fairness
    assumption, operationalized).  The service monitor sees exactly the
    external events of the run.
    """
    chosen_policy = policy if policy is not None else FairRandomPolicy(seed)
    simulator = Simulator(components, chosen_policy)
    monitor = ServiceMonitor(service)
    watchdog = ProgressWatchdog(stall_limit)

    for _ in range(steps):
        move = simulator.step()
        if move is None:
            break
        monitor.observe_move(move)
        watchdog.observe_move(move)

    log: RunLog = simulator.log
    external_counts: dict[str, int] = {}
    interaction_counts: dict[str, int] = {}
    for move in log.steps:
        if move.kind == "external" and move.event:
            external_counts[move.event] = external_counts.get(move.event, 0) + 1
        elif move.kind == "interaction" and move.event:
            interaction_counts[move.event] = (
                interaction_counts.get(move.event, 0) + 1
            )

    return RunReport(
        seed=seed,
        steps=len(log.steps),
        deadlocked=log.deadlocked,
        monitor=monitor.verdict(),
        watchdog_triggered=watchdog.triggered,
        worst_stall=watchdog.worst_stall,
        external_counts=external_counts,
        interaction_counts=interaction_counts,
    )


@dataclass(frozen=True)
class StressReport:
    """Aggregate over many seeded runs."""

    runs: tuple[RunReport, ...]

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def violations(self) -> tuple[RunReport, ...]:
        return tuple(r for r in self.runs if not r.monitor.ok)

    @property
    def deadlocks(self) -> tuple[RunReport, ...]:
        return tuple(r for r in self.runs if r.deadlocked)

    def total_external(self, event: str) -> int:
        return sum(r.external_counts.get(event, 0) for r in self.runs)

    def describe(self) -> str:
        lines = [
            f"{len(self.runs)} runs: "
            f"{len(self.violations)} violation(s), "
            f"{len(self.deadlocks)} deadlock(s), "
            f"all_ok={self.all_ok}"
        ]
        for r in self.violations[:3]:
            lines.append("  " + r.describe())
        return "\n".join(lines)


def stress(
    components: Sequence[Specification],
    service: Specification,
    *,
    seeds: Sequence[int] = tuple(range(10)),
    steps: int = 2_000,
    stall_limit: int = 500,
) -> StressReport:
    """Run :func:`simulate_system` across *seeds* and aggregate."""
    return StressReport(
        runs=tuple(
            simulate_system(
                components,
                service,
                steps=steps,
                seed=seed,
                stall_limit=stall_limit,
            )
            for seed in seeds
        )
    )
