"""Executable semantics: run composed specifications with seeded policies
and runtime monitors (the operational counterpart of the analytical
satisfaction checks)."""

from .engine import Move, RunLog, Simulator
from .faults import DropInjector, DuplicateInjector, StallInjector
from .harness import RunReport, StressReport, simulate_system, stress
from .msc import render_msc
from .monitors import MonitorVerdict, ProgressWatchdog, ServiceMonitor
from .policies import (
    BiasedPolicy,
    FairRandomPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ScriptedPolicy,
)

__all__ = [
    "BiasedPolicy",
    "DropInjector",
    "DuplicateInjector",
    "FairRandomPolicy",
    "Move",
    "MonitorVerdict",
    "ProgressWatchdog",
    "RandomPolicy",
    "RoundRobinPolicy",
    "RunLog",
    "RunReport",
    "ScriptedPolicy",
    "ServiceMonitor",
    "Simulator",
    "StallInjector",
    "render_msc",
    "StressReport",
    "simulate_system",
    "stress",
]
