"""Composition of specifications (the paper's || operator)."""

from .binary import check_composable, compose, synchronous_product
from .nary import compose_many

__all__ = ["check_composable", "compose", "compose_many", "synchronous_product"]
