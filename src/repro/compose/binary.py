"""The paper's binary composition operator ``‖`` (Section 3).

Composition makes each component part of the other's environment: events in
both alphabets synchronize (they can occur only when enabled in both
components) and become *internal* transitions of the composite, hidden from
the rest of the environment.  The composite's interface is the symmetric
difference of the component alphabets:

* ``Σ(A‖B) = (Σ_A ∪ Σ_B) − (Σ_A ∩ Σ_B)``
* external transitions: one component moves on an unshared event, the other
  stays put;
* internal transitions: either component's own λ step, or a synchronized
  shared event.

The paper defines the composite over the full product ``S_A × S_B``; since
unreachable product states have no behavioural significance, :func:`compose`
restricts to the reachable part by default (pass ``reachable_only=False``
for the literal textbook product).

:func:`synchronous_product` is the hiding-free variant (shared events stay
external) used by verification procedures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import obs
from ..errors import CompositionError
from ..events import Alphabet, composition_alphabet, shared_events
from ..spec.compiled import CompiledSpec, compiled, kernel_enabled
from ..spec.spec import Specification, State, _state_sort_key

if TYPE_CHECKING:
    # type-only: a runtime import would be circular (quotient imports compose)
    from ..persist.interrupt import InterruptController
    from ..quotient.budget import Budget, BudgetMeter


def compose(
    left: Specification,
    right: Specification,
    *,
    name: str | None = None,
    reachable_only: bool = True,
    budget: Budget | None = None,
    interrupt: "InterruptController | None" = None,
) -> Specification:
    """``left ‖ right`` per the paper's definition.

    State labels of the composite are ``(a, b)`` pairs.  With
    ``reachable_only=True`` (default) only product states reachable from
    ``(a0, b0)`` are kept; the full product is trace-equivalent but larger.

    With a *budget*, every materialized product state charges one
    ``states`` unit against it; exceeding ``max_states`` (or the wall-clock
    ceiling) raises :class:`~repro.errors.BudgetExceeded` with phase
    ``"compose"``.  The kernel and reference explorations materialize the
    same states, so count limits trip at the same total on both paths.
    An *interrupt* controller cancels the exploration cooperatively at the
    same charge boundaries (:class:`~repro.errors.InterruptRequested`);
    compositions are not checkpointed — they are cheap relative to the
    quotient phases and are simply redone on resume.
    """
    from ..quotient.budget import make_meter

    composite_name = name if name is not None else f"({left.name}||{right.name})"
    shared = shared_events(left.alphabet, right.alphabet)
    alphabet = composition_alphabet(left.alphabet, right.alphabet)
    meter = make_meter(budget, "compose", interrupt)

    with obs.span("compose", left=left.name, right=right.name) as sp:
        if reachable_only:
            if kernel_enabled():
                result = _compose_reachable_kernel(
                    left, right, composite_name, shared, alphabet, meter
                )
            else:
                result = _compose_reachable(
                    left, right, composite_name, shared, alphabet, meter
                )
        else:
            result = _compose_full(
                left, right, composite_name, shared, alphabet, meter
            )
        product = len(left.states) * len(right.states)
        sp.set(product_states=product, reachable_states=len(result.states))
        obs.add("compose.calls", 1)
        obs.add("compose.product_states", product)
        obs.add("compose.reachable_states", len(result.states))
        obs.add(
            "compose.transitions", len(result.external) + len(result.internal)
        )
    return result


def _moves(
    left: Specification,
    right: Specification,
    shared: Alphabet,
    a: State,
    b: State,
) -> tuple[list[tuple[str, State, State]], list[tuple[State, State]]]:
    """External and internal successor moves of product state ``(a, b)``.

    Returns ``(externals, internals)`` where externals are
    ``(event, a', b')`` triples and internals are ``(a', b')`` pairs.
    Deterministically ordered.
    """
    externals: list[tuple[str, State, State]] = []
    internals: list[tuple[State, State]] = []
    for e in sorted(left.enabled(a)):
        if e in shared:
            continue
        for a2 in sorted(left.successors(a, e), key=_state_sort_key):
            externals.append((e, a2, b))
    for e in sorted(right.enabled(b)):
        if e in shared:
            continue
        for b2 in sorted(right.successors(b, e), key=_state_sort_key):
            externals.append((e, a, b2))
    for a2 in sorted(left.internal_successors(a), key=_state_sort_key):
        internals.append((a2, b))
    for b2 in sorted(right.internal_successors(b), key=_state_sort_key):
        internals.append((a, b2))
    for e in sorted(shared):
        for a2 in sorted(left.successors(a, e), key=_state_sort_key):
            for b2 in sorted(right.successors(b, e), key=_state_sort_key):
                internals.append((a2, b2))
    return externals, internals


def _compose_reachable(
    left: Specification,
    right: Specification,
    name: str,
    shared: Alphabet,
    alphabet: Alphabet,
    meter: "BudgetMeter | None" = None,
) -> Specification:
    initial = (left.initial, right.initial)
    states: set[tuple[State, State]] = {initial}
    external: list[tuple[tuple[State, State], str, tuple[State, State]]] = []
    internal: list[tuple[tuple[State, State], tuple[State, State]]] = []
    frontier = [initial]
    if meter is not None:
        meter.charge(states=1, frontier=1)
    while frontier:
        a, b = current = frontier.pop()
        externals, internals = _moves(left, right, shared, a, b)
        for e, a2, b2 in externals:
            target = (a2, b2)
            external.append((current, e, target))
            if target not in states:
                states.add(target)
                frontier.append(target)
                if meter is not None:
                    meter.charge(states=1, frontier=len(frontier))
        for a2, b2 in internals:
            target = (a2, b2)
            if target != current:
                internal.append((current, target))
            if target not in states:
                states.add(target)
                frontier.append(target)
                if meter is not None:
                    meter.charge(states=1, frontier=len(frontier))
    return Specification(name, states, alphabet, external, internal, initial)


def _compose_reachable_kernel(
    left: Specification,
    right: Specification,
    name: str,
    shared: Alphabet,
    alphabet: Alphabet,
    meter: "BudgetMeter | None" = None,
) -> Specification:
    """Reachable composition over interned ``(int, int)`` pair codes.

    Explores the product over dense integers (pair code ``ia * |S_R| + ib``)
    and decodes back to the labeled ``(a, b)`` states only at the boundary.
    The resulting specification is identical to :func:`_compose_reachable`'s
    (states, transitions, and initial are *sets* — exploration order cannot
    leak into the value).
    """
    cl: CompiledSpec = compiled(left)
    cr: CompiledSpec = compiled(right)
    nr = cr.n_states
    shared_l = cl.encode_events(shared)
    shared_r = cr.encode_events(shared)
    shared_pairs = [(cl.event_index[e], cr.event_index[e]) for e in shared]
    levents, revents = cl.events, cr.events

    initial = cl.initial * nr + cr.initial
    seen = {initial}
    stack = [initial]
    if meter is not None:
        meter.charge(states=1, frontier=1)
    ext_edges: list[tuple[int, str, int]] = []
    int_edges: list[tuple[int, int]] = []
    while stack:
        code = stack.pop()
        ia, ib = divmod(code, nr)
        base_a = ia * nr
        for eid, targets in cl.ext_moves[ia]:
            if shared_l >> eid & 1:
                continue
            e = levents[eid]
            for ta in targets:
                t = ta * nr + ib
                ext_edges.append((code, e, t))
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
                    if meter is not None:
                        meter.charge(states=1, frontier=len(stack))
        for eid, targets in cr.ext_moves[ib]:
            if shared_r >> eid & 1:
                continue
            e = revents[eid]
            for tb in targets:
                t = base_a + tb
                ext_edges.append((code, e, t))
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
                    if meter is not None:
                        meter.charge(states=1, frontier=len(stack))
        for ta in cl.int_succ[ia]:
            t = ta * nr + ib
            if t != code:
                int_edges.append((code, t))
            if t not in seen:
                seen.add(t)
                stack.append(t)
                if meter is not None:
                    meter.charge(states=1, frontier=len(stack))
        for tb in cr.int_succ[ib]:
            t = base_a + tb
            if t != code:
                int_edges.append((code, t))
            if t not in seen:
                seen.add(t)
                stack.append(t)
                if meter is not None:
                    meter.charge(states=1, frontier=len(stack))
        ext_a = cl.ext_by_eid[ia]
        ext_b = cr.ext_by_eid[ib]
        for leid, reid in shared_pairs:
            lts = ext_a.get(leid)
            if not lts:
                continue
            rts = ext_b.get(reid)
            if not rts:
                continue
            for ta in lts:
                ta_base = ta * nr
                for tb in rts:
                    t = ta_base + tb
                    if t != code:
                        int_edges.append((code, t))
                    if t not in seen:
                        seen.add(t)
                        stack.append(t)
                        if meter is not None:
                            meter.charge(states=1, frontier=len(stack))

    lstates, rstates = cl.states, cr.states
    label = {c: (lstates[c // nr], rstates[c % nr]) for c in seen}
    return Specification(
        name,
        label.values(),
        alphabet,
        ((label[s], e, label[t]) for s, e, t in ext_edges),
        ((label[s], label[t]) for s, t in int_edges),
        label[initial],
    )


def _compose_full(
    left: Specification,
    right: Specification,
    name: str,
    shared: Alphabet,
    alphabet: Alphabet,
    meter: "BudgetMeter | None" = None,
) -> Specification:
    states = [(a, b) for a in left.states for b in right.states]
    if meter is not None:
        meter.charge(states=len(states))
    external = []
    internal = []
    for a, b in states:
        externals, internals = _moves(left, right, shared, a, b)
        external.extend(((a, b), e, (a2, b2)) for e, a2, b2 in externals)
        internal.extend(((a, b), (a2, b2)) for a2, b2 in internals if (a2, b2) != (a, b))
    return Specification(
        name, states, alphabet, external, internal, (left.initial, right.initial)
    )


def synchronous_product(
    left: Specification,
    right: Specification,
    *,
    name: str | None = None,
) -> Specification:
    """Synchronous product *without* hiding.

    Shared events still require both components to move, but remain external
    in the product; unshared events interleave; λ steps interleave.  The
    product's alphabet is the **union** of the component alphabets.  This is
    the standard construction for checking trace inclusion and refinement,
    not the paper's ``‖`` (which hides shared events).
    """
    product_name = name if name is not None else f"({left.name}×{right.name})"
    obs.add("compose.synchronous_products", 1)
    shared = shared_events(left.alphabet, right.alphabet)
    alphabet = left.alphabet | right.alphabet
    if kernel_enabled():
        return _synchronous_product_kernel(
            left, right, product_name, shared, alphabet
        )
    initial = (left.initial, right.initial)
    states: set[tuple[State, State]] = {initial}
    external = []
    internal = []
    frontier = [initial]
    while frontier:
        a, b = current = frontier.pop()
        moves: list[tuple[str | None, State, State]] = []
        for e in sorted(left.enabled(a)):
            if e in shared:
                for a2 in sorted(left.successors(a, e), key=_state_sort_key):
                    for b2 in sorted(right.successors(b, e), key=_state_sort_key):
                        moves.append((e, a2, b2))
            else:
                for a2 in sorted(left.successors(a, e), key=_state_sort_key):
                    moves.append((e, a2, b))
        for e in sorted(right.enabled(b)):
            if e not in shared:
                for b2 in sorted(right.successors(b, e), key=_state_sort_key):
                    moves.append((e, a, b2))
        for a2 in sorted(left.internal_successors(a), key=_state_sort_key):
            moves.append((None, a2, b))
        for b2 in sorted(right.internal_successors(b), key=_state_sort_key):
            moves.append((None, a, b2))
        for e, a2, b2 in moves:
            target = (a2, b2)
            if e is None:
                if target != current:
                    internal.append((current, target))
            else:
                external.append((current, e, target))
            if target not in states:
                states.add(target)
                frontier.append(target)
    return Specification(product_name, states, alphabet, external, internal, initial)


def _synchronous_product_kernel(
    left: Specification,
    right: Specification,
    name: str,
    shared: Alphabet,
    alphabet: Alphabet,
) -> Specification:
    """Hiding-free product over interned pair codes (see the compose kernel)."""
    cl: CompiledSpec = compiled(left)
    cr: CompiledSpec = compiled(right)
    nr = cr.n_states
    shared_l = cl.encode_events(shared)
    shared_r = cr.encode_events(shared)
    levents, revents = cl.events, cr.events

    initial = cl.initial * nr + cr.initial
    seen = {initial}
    stack = [initial]
    ext_edges: list[tuple[int, str, int]] = []
    int_edges: list[tuple[int, int]] = []
    while stack:
        code = stack.pop()
        ia, ib = divmod(code, nr)
        base_a = ia * nr
        ext_b = cr.ext_by_eid[ib]
        for eid, targets in cl.ext_moves[ia]:
            e = levents[eid]
            if shared_l >> eid & 1:
                rts = ext_b.get(cr.event_index[e])
                if not rts:
                    continue
                for ta in targets:
                    ta_base = ta * nr
                    for tb in rts:
                        t = ta_base + tb
                        ext_edges.append((code, e, t))
                        if t not in seen:
                            seen.add(t)
                            stack.append(t)
            else:
                for ta in targets:
                    t = ta * nr + ib
                    ext_edges.append((code, e, t))
                    if t not in seen:
                        seen.add(t)
                        stack.append(t)
        for eid, targets in cr.ext_moves[ib]:
            if shared_r >> eid & 1:
                continue
            e = revents[eid]
            for tb in targets:
                t = base_a + tb
                ext_edges.append((code, e, t))
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        for ta in cl.int_succ[ia]:
            t = ta * nr + ib
            if t != code:
                int_edges.append((code, t))
            if t not in seen:
                seen.add(t)
                stack.append(t)
        for tb in cr.int_succ[ib]:
            t = base_a + tb
            if t != code:
                int_edges.append((code, t))
            if t not in seen:
                seen.add(t)
                stack.append(t)

    lstates, rstates = cl.states, cr.states
    label = {c: (lstates[c // nr], rstates[c % nr]) for c in seen}
    return Specification(
        name,
        label.values(),
        alphabet,
        ((label[s], e, label[t]) for s, e, t in ext_edges),
        ((label[s], label[t]) for s, t in int_edges),
        label[initial],
    )


def check_composable(left: Specification, right: Specification) -> Alphabet:
    """Validate a composition and return the synchronized (hidden) events.

    Raises :class:`CompositionError` if the composition would be degenerate
    in a way that usually indicates a modeling mistake: identical alphabets
    (the composite would have an empty interface) are allowed but flagged
    only when *both* alphabets are empty.
    """
    if not left.alphabet and not right.alphabet:
        raise CompositionError(
            f"{left.name} and {right.name} both have empty alphabets; "
            "composition is vacuous"
        )
    return shared_events(left.alphabet, right.alphabet)
