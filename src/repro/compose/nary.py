"""N-ary composition of specifications.

Conversion systems are built from chains of components — e.g. the paper's
Fig. 9 configuration ``A0 ‖ Ach ‖ Nch ‖ N1``.  :func:`compose_many` folds
the binary operator left-to-right and then flattens the nested pair state
labels into plain tuples ``(s1, s2, ..., sk)``, which keeps multi-component
composites readable and hashable.

Note on associativity: iterated binary ``‖`` hides an event as soon as two
adjacent partial composites share it, so an event appearing in *three*
component alphabets would be hidden after the first synchronization and the
third component could never participate.  :func:`compose_many` detects this
through its static-analysis preflight (rule ``COMP001``) and raises
:class:`~repro.errors.LintError` (a :class:`CompositionError` subclass),
since it almost always indicates a mis-declared interface.  (Events shared
by exactly two components — the normal point-to-point interface case — are
handled exactly as the paper's operator does.)
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..errors import CompositionError
from ..lint.engine import preflight_composition
from ..spec.spec import Specification, State
from .binary import compose

if TYPE_CHECKING:
    # type-only: a runtime import would be circular (quotient imports compose)
    from ..persist.interrupt import InterruptController
    from ..quotient.budget import Budget


def _flatten_state(state: State, depth: int) -> tuple:
    """Unfold ``(((s1, s2), s3), s4)`` into ``(s1, s2, s3, s4)``."""
    if depth == 1:
        return (state,)
    assert isinstance(state, tuple) and len(state) == 2
    return _flatten_state(state[0], depth - 1) + (state[1],)


def compose_many(
    specs: Sequence[Specification],
    *,
    name: str | None = None,
    reachable_only: bool = True,
    flatten: bool = True,
    preflight: bool = True,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
) -> Specification:
    """Compose ``specs[0] ‖ specs[1] ‖ ... ‖ specs[k-1]``.

    Parameters
    ----------
    specs:
        At least one specification.  A single spec is returned unchanged
        (modulo renaming).
    name:
        Display name of the composite (default: joined component names).
    reachable_only:
        Restrict to the reachable product (default True).
    flatten:
        Relabel composite states from nested pairs to flat k-tuples.
    preflight:
        Run the composition-scope static-analysis rules first (default
        on); error-severity findings — e.g. ``COMP001``, an event shared
        by three or more alphabets — raise :class:`~repro.errors.LintError`
        before any product is built.  With ``preflight=False`` only the
        hard overshared-event check runs (the composition would be
        silently wrong without it).
    budget:
        Optional :class:`~repro.quotient.budget.Budget` passed to every
        binary :func:`~repro.compose.compose` in the fold; each binary
        step gets a fresh meter, so the limits apply per step.
    interrupt:
        Optional :class:`~repro.persist.InterruptController` passed to
        every binary step for cooperative cancellation.

    Raises
    ------
    CompositionError
        If ``specs`` is empty, or an event appears in three or more
        component alphabets (see module docstring).
    """
    if not specs:
        raise CompositionError("compose_many requires at least one specification")
    composite_name = name if name is not None else "||".join(s.name for s in specs)
    if len(specs) == 1:
        return specs[0].renamed(composite_name)

    if preflight:
        preflight_composition(specs).raise_if_errors()
    else:
        counts = Counter(e for s in specs for e in s.alphabet)
        overshared = sorted(e for e, n in counts.items() if n >= 3)
        if overshared:
            raise CompositionError(
                f"events {overshared} appear in three or more component "
                "alphabets; iterated binary composition would hide them after "
                "the first synchronization — declare distinct point-to-point "
                "interfaces"
            )

    with obs.span("compose_many", parts=len(specs), composite=composite_name) as sp:
        result = specs[0]
        for nxt in specs[1:]:
            result = compose(
                result,
                nxt,
                reachable_only=reachable_only,
                budget=budget,
                interrupt=interrupt,
            )
        result = result.renamed(composite_name)
        if flatten:
            depth = len(specs)
            mapping = {s: _flatten_state(s, depth) for s in result.states}
            result = result.map_states(mapping)
        sp.set(states=len(result.states))
    return result
