"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  Errors carry enough structured
context (offending spec name, event, state, trace) to produce actionable
messages without string parsing.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A specification tuple is malformed (Section 3 definition violated).

    Examples: a transition references an unknown state, an event outside the
    alphabet, an empty state set, or a missing initial state.
    """

    def __init__(self, message: str, *, spec_name: str | None = None) -> None:
        self.spec_name = spec_name
        if spec_name is not None:
            message = f"[{spec_name}] {message}"
        super().__init__(message)


class AlphabetError(ReproError):
    """An operation received incompatible or ill-formed event alphabets.

    Raised e.g. when satisfaction is checked between specifications with
    different interfaces, or when a quotient problem's Int and Ext sets are
    not disjoint.
    """


class NormalFormError(ReproError):
    """A specification required to be in normal form is not.

    The quotient algorithm requires the service specification ``A`` to be in
    the paper's normal form (Section 3, conditions i-iii).  The error records
    which condition failed and a witness.
    """

    def __init__(
        self,
        message: str,
        *,
        condition: str | None = None,
        witness: Any = None,
    ) -> None:
        self.condition = condition
        self.witness = witness
        super().__init__(message)


class NormalizationError(ReproError):
    """Exact, semantics-preserving normalization is impossible.

    ``normalize`` raises this when the input has a pre-emptible external
    transition whose event is not covered by any sibling sink's acceptance
    set; converting such a spec to normal form necessarily changes either its
    trace set or its progress semantics.  Callers may fall back to
    ``determinize`` (sound but conservative for progress).
    """


class QuotientError(ReproError):
    """The quotient problem instance itself is ill-posed.

    Raised for structural problems with the inputs (not for "no converter
    exists", which is a regular result, not an error).
    """


class CompositionError(ReproError):
    """Composition of specifications failed (e.g. duplicate state labels
    could not be disambiguated, or an n-ary composition list is empty)."""


class LintError(QuotientError, CompositionError):
    """Static analysis (:mod:`repro.lint`) found error-severity diagnostics.

    Raised by the opt-out preflights in :func:`repro.quotient.solve_quotient`
    and :func:`repro.compose.compose_many` so malformed inputs are rejected
    before the expensive product construction, with every violation collected
    (not just the first).  ``diagnostics`` holds the structured
    :class:`repro.lint.Diagnostic` findings; the message embeds their
    rendered form.

    Subclasses both :class:`QuotientError` and :class:`CompositionError` so
    existing ``except`` clauses around either entry point keep working.
    """

    def __init__(self, message: str, *, diagnostics: tuple = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class BudgetExceeded(ReproError):
    """A bounded solve ran out of its :class:`~repro.quotient.budget.Budget`.

    Raised by the budgeted entry points (``solve_quotient``, the quotient
    phases, ``compose``) when exploration exceeds ``max_pairs``,
    ``max_states``, or ``wall_time_s``.  Unlike an OOM kill or a wall-clock
    timeout imposed from outside, the error is *structured*: it names the
    phase that was interrupted, the limit that tripped, and carries the
    partial exploration statistics (including the frontier size at the
    moment of interruption) so callers can report how far the solve got and
    decide whether to retry with a larger budget.

    When raised out of :func:`repro.quotient.solve_quotient`, ``checkpoint``
    holds a :class:`repro.persist.Checkpoint` of the interrupted phase, so
    the solve can be resumed exactly where it stopped (see
    ``docs/robustness.md``).  ``phase_state`` is the raw (not yet
    serialized) loop state captured at the charge that tripped; it is an
    implementation detail of the phase/solver hand-off.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str,
        limit: str,
        partial: dict | None = None,
    ) -> None:
        self.phase = phase
        self.limit = limit
        self.partial = dict(partial or {})
        self.checkpoint: Any = None
        self.phase_state: dict | None = None
        super().__init__(message)

    def to_json_dict(self) -> dict:
        """Machine-readable form (the CLI's JSON error payload)."""
        return {
            "error": "budget-exceeded",
            "phase": self.phase,
            "limit": self.limit,
            "partial": self.partial,
            "message": str(self),
        }


class InterruptRequested(ReproError):
    """A cooperative interrupt stopped a solve at a charge boundary.

    Raised by :class:`~repro.quotient.budget.BudgetMeter` when an attached
    :class:`~repro.persist.InterruptController` reports a pending SIGINT,
    an expired ``--deadline``, or a deterministic test interrupt
    (``at_charge``).  Interrupts only fire at work-counter boundaries —
    after one unit of work has been fully processed — so the captured
    state is always consistent and an interrupted-then-resumed run is
    byte-identical to an uninterrupted one.

    Like :class:`BudgetExceeded`, the solver attaches a
    :class:`repro.persist.Checkpoint` as ``checkpoint`` before
    re-raising.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str,
        reason: str,
        partial: dict | None = None,
    ) -> None:
        self.phase = phase
        self.reason = reason
        self.partial = dict(partial or {})
        self.checkpoint: Any = None
        self.phase_state: dict | None = None
        super().__init__(message)

    def to_json_dict(self) -> dict:
        """Machine-readable form (the CLI's JSON error payload)."""
        return {
            "error": "interrupted",
            "phase": self.phase,
            "reason": self.reason,
            "partial": self.partial,
            "message": str(self),
        }


class PersistError(ReproError):
    """A checkpoint could not be written, read, or trusted.

    Raised by :mod:`repro.persist` for I/O failures, corrupt or truncated
    snapshot files (content-hash mismatch), unknown schema versions, and
    documents carrying unrecognized fields (a future writer's output must
    not be half-understood).  A *stale* checkpoint — one whose problem
    fingerprint does not match the supplied inputs — is reported through
    the lint surface instead (rule ``QUOT104``), because it is a property
    of the problem/checkpoint pairing, not of the file.
    """


class DeadlockError(ReproError):
    """A simulated system has no enabled move.

    Raised by simulator policies invoked with an empty move list and by
    :meth:`repro.simulate.engine.Simulator.step` in strict mode; carries the
    composite state vector and the step index so the deadlock is locatable
    without re-running the simulation.
    """

    def __init__(
        self,
        message: str,
        *,
        state_vector: tuple | None = None,
        step_index: int | None = None,
    ) -> None:
        self.state_vector = state_vector
        self.step_index = step_index
        super().__init__(message)


class FaultModelError(ReproError):
    """A fault transformer cannot be applied to the given specification.

    Raised e.g. for a negative severity, or for shape-restricted models
    (``reorder`` requires a channel-shaped alphabet of matched ``-x``/``+x``
    pairs).
    """


class DSLError(ReproError):
    """The textual spec DSL could not be parsed."""

    def __init__(
        self, message: str, *, line: int | None = None, column: int | None = None
    ) -> None:
        self.line = line
        self.column = column
        if line is not None:
            loc = f"line {line}" + (f", col {column}" if column is not None else "")
            message = f"{message} ({loc})"
        super().__init__(message)


class CodecError(ReproError):
    """JSON (de)serialization of a specification failed."""


class ServeError(ReproError):
    """A serve-layer request or job document is malformed or unservable.

    Raised by :mod:`repro.serve` for invalid job submissions (unknown
    kind, malformed payload, bad priority/deadline/budget) and for
    protocol-level problems a client can fix and resubmit.  ``status``
    carries the HTTP status code the server maps the error to.
    """

    def __init__(self, message: str, *, status: int = 400) -> None:
        self.status = status
        super().__init__(message)
