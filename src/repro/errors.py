"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  Errors carry enough structured
context (offending spec name, event, state, trace) to produce actionable
messages without string parsing.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A specification tuple is malformed (Section 3 definition violated).

    Examples: a transition references an unknown state, an event outside the
    alphabet, an empty state set, or a missing initial state.
    """

    def __init__(self, message: str, *, spec_name: str | None = None) -> None:
        self.spec_name = spec_name
        if spec_name is not None:
            message = f"[{spec_name}] {message}"
        super().__init__(message)


class AlphabetError(ReproError):
    """An operation received incompatible or ill-formed event alphabets.

    Raised e.g. when satisfaction is checked between specifications with
    different interfaces, or when a quotient problem's Int and Ext sets are
    not disjoint.
    """


class NormalFormError(ReproError):
    """A specification required to be in normal form is not.

    The quotient algorithm requires the service specification ``A`` to be in
    the paper's normal form (Section 3, conditions i-iii).  The error records
    which condition failed and a witness.
    """

    def __init__(
        self,
        message: str,
        *,
        condition: str | None = None,
        witness: Any = None,
    ) -> None:
        self.condition = condition
        self.witness = witness
        super().__init__(message)


class NormalizationError(ReproError):
    """Exact, semantics-preserving normalization is impossible.

    ``normalize`` raises this when the input has a pre-emptible external
    transition whose event is not covered by any sibling sink's acceptance
    set; converting such a spec to normal form necessarily changes either its
    trace set or its progress semantics.  Callers may fall back to
    ``determinize`` (sound but conservative for progress).
    """


class QuotientError(ReproError):
    """The quotient problem instance itself is ill-posed.

    Raised for structural problems with the inputs (not for "no converter
    exists", which is a regular result, not an error).
    """


class CompositionError(ReproError):
    """Composition of specifications failed (e.g. duplicate state labels
    could not be disambiguated, or an n-ary composition list is empty)."""


class LintError(QuotientError, CompositionError):
    """Static analysis (:mod:`repro.lint`) found error-severity diagnostics.

    Raised by the opt-out preflights in :func:`repro.quotient.solve_quotient`
    and :func:`repro.compose.compose_many` so malformed inputs are rejected
    before the expensive product construction, with every violation collected
    (not just the first).  ``diagnostics`` holds the structured
    :class:`repro.lint.Diagnostic` findings; the message embeds their
    rendered form.

    Subclasses both :class:`QuotientError` and :class:`CompositionError` so
    existing ``except`` clauses around either entry point keep working.
    """

    def __init__(self, message: str, *, diagnostics: tuple = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class DSLError(ReproError):
    """The textual spec DSL could not be parsed."""

    def __init__(
        self, message: str, *, line: int | None = None, column: int | None = None
    ) -> None:
        self.line = line
        self.column = column
        if line is not None:
            loc = f"line {line}" + (f", col {column}" if column is not None else "")
            message = f"{message} ({loc})"
        super().__init__(message)


class CodecError(ReproError):
    """JSON (de)serialization of a specification failed."""
