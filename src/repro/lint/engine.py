"""The lint engine: rule selection and the public entry points.

The engine never executes the quotient or a composition; it runs the
registered structural rules over one of three target shapes and returns a
:class:`~repro.lint.diagnostics.LintReport`:

* :func:`lint_spec` — one specification (optionally in the service role,
  which adds the ``NORM0xx`` normal-form rules);
* :func:`lint_composition` — the parts of a ``‖`` composition
  (``COMP0xx``/``CONV0xx`` rules, optionally each part's ``SPEC0xx``);
* :func:`lint_problem` — an ``(A, B, Int, Ext)`` quotient instance
  (partition rules, the service's normal form, empty-converter
  predictors, and each input's structural rules);
* :func:`run_rules` — the swiss-army dispatcher the CLI uses.

``select``/``ignore`` filter rules by code or code prefix (``"SPEC1"``
matches ``SPEC101``–``SPEC103``) or by rule name (``"unreachable-state"``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..events import Alphabet, Event
from ..spec.spec import Specification
from .diagnostics import Diagnostic, LintReport
from .rules import (
    ROLE_COMPONENT,
    ROLE_SERVICE,
    CheckpointTarget,
    CompositionTarget,
    ProblemTarget,
    Rule,
    SpecTarget,
    all_rules,
)

Selection = Iterable[str] | None


def _matches(rule: Rule, pattern: str) -> bool:
    return rule.code.startswith(pattern) or rule.name == pattern


def select_rules(
    *,
    scopes: Iterable[str],
    select: Selection = None,
    ignore: Selection = None,
) -> tuple[Rule, ...]:
    """Rules in *scopes*, filtered by ``select``/``ignore`` patterns."""
    wanted_scopes = set(scopes)
    chosen = [r for r in all_rules() if r.scope in wanted_scopes]
    if select is not None:
        patterns = list(select)
        chosen = [r for r in chosen if any(_matches(r, p) for p in patterns)]
    if ignore is not None:
        patterns = list(ignore)
        chosen = [r for r in chosen if not any(_matches(r, p) for p in patterns)]
    return tuple(chosen)


def _run(rules: Iterable[Rule], target: object) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    for rule in rules:
        found.extend(rule.check(target))
    return found


def lint_spec(
    spec: Specification,
    *,
    role: str = ROLE_COMPONENT,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Run the single-spec rules (plus ``NORM0xx`` for the service role)."""
    scopes = ["spec"] if role != ROLE_SERVICE else ["spec", "service"]
    rules = select_rules(scopes=scopes, select=select, ignore=ignore)
    target = SpecTarget(spec, role=role)
    return LintReport.collect(
        _run(rules, target),
        target=spec.name,
        rules_run=(r.code for r in rules),
    )


def lint_composition(
    parts: Sequence[Specification],
    *,
    include_parts: bool = False,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Run the composition-scope rules over the parts of a ``‖``.

    With ``include_parts`` each part is additionally linted with the
    single-spec rules (the CLI does this; the :func:`compose_many`
    preflight does not, because part-level findings do not invalidate the
    composition itself).
    """
    comp_rules = select_rules(scopes=["composition"], select=select, ignore=ignore)
    target_name = "||".join(p.name for p in parts) or "(empty composition)"
    diagnostics = _run(comp_rules, CompositionTarget(tuple(parts)))
    rules_run = [r.code for r in comp_rules]
    if include_parts:
        spec_rules = select_rules(scopes=["spec"], select=select, ignore=ignore)
        rules_run.extend(r.code for r in spec_rules)
        for part in parts:
            diagnostics.extend(_run(spec_rules, SpecTarget(part)))
    return LintReport.collect(
        diagnostics, target=target_name, rules_run=dict.fromkeys(rules_run)
    )


def lint_problem(
    service: Specification,
    component: Specification,
    int_events: Iterable[Event] | None = None,
    *,
    include_spec_rules: bool = True,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Lint a quotient instance ``service / component``.

    Runs the problem-scope partition/preflight rules and the service's
    normal-form rules; with ``include_spec_rules`` (default) both inputs
    also get the structural ``SPEC0xx`` pass.
    """
    declared = Alphabet(int_events) if int_events is not None else None
    problem_rules = select_rules(scopes=["problem"], select=select, ignore=ignore)
    service_rules = select_rules(scopes=["service"], select=select, ignore=ignore)
    diagnostics = _run(
        problem_rules, ProblemTarget(service, component, declared)
    )
    diagnostics.extend(_run(service_rules, SpecTarget(service, role=ROLE_SERVICE)))
    rules_run = [r.code for r in problem_rules] + [r.code for r in service_rules]
    if include_spec_rules:
        spec_rules = select_rules(scopes=["spec"], select=select, ignore=ignore)
        rules_run.extend(r.code for r in spec_rules)
        for part, role in ((service, ROLE_SERVICE), (component, ROLE_COMPONENT)):
            diagnostics.extend(_run(spec_rules, SpecTarget(part, role=role)))
    return LintReport.collect(
        diagnostics,
        target=f"{service.name}/{component.name}",
        rules_run=dict.fromkeys(rules_run),
    )


def lint_checkpoint(
    *,
    kind: str,
    phase: str,
    fingerprint: str,
    expected_kind: str,
    expected_fingerprint: str,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Lint a resume attempt: does the checkpoint match the problem?

    The solver calls this before trusting a loaded checkpoint; a
    mismatched fingerprint (``QUOT104``) means the checkpoint was taken
    for different inputs and resuming would silently compute garbage.
    All fields are plain strings so callers outside :mod:`repro.persist`
    (and tests) can lint synthetic checkpoints too.
    """
    rules = select_rules(scopes=["checkpoint"], select=select, ignore=ignore)
    target = CheckpointTarget(
        kind=kind,
        phase=phase,
        fingerprint=fingerprint,
        expected_kind=expected_kind,
        expected_fingerprint=expected_fingerprint,
    )
    return LintReport.collect(
        _run(rules, target),
        target=f"checkpoint:{phase}",
        rules_run=(r.code for r in rules),
    )


def preflight_quotient(
    service: Specification,
    component: Specification,
    int_events: Iterable[Event] | None = None,
) -> LintReport:
    """The solve-time preflight: partition + normal-form + predictors.

    Structural ``SPEC0xx`` findings about the inputs (unreachable states
    and the like) are deliberately excluded: they never change the
    quotient's answer, so they must not block a solve.  Use
    :func:`lint_problem` for the full report.
    """
    return lint_problem(
        service, component, int_events, include_spec_rules=False
    )


def preflight_composition(parts: Sequence[Specification]) -> LintReport:
    """The compose-time preflight (composition-scope rules only)."""
    return lint_composition(parts, include_parts=False)


def run_rules(
    *specs: Specification,
    role: str = ROLE_COMPONENT,
    compose: bool = False,
    service: Specification | None = None,
    component: Specification | None = None,
    int_events: Iterable[Event] | None = None,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Run the registry over whatever the caller has — the public API.

    * ``run_rules(spec)`` — structural lint of one spec;
    * ``run_rules(a, b, c)`` — each spec linted independently, one report;
    * ``run_rules(a, b, c, compose=True)`` — additionally treat the specs
      as parts of one ``‖`` composition (``COMP``/``CONV`` rules);
    * ``run_rules(service=A, component=B, int_events=[...])`` — full
      quotient-problem lint (any positional specs are linted too).

    Returns a single merged :class:`LintReport`.
    """
    if (service is None) != (component is None):
        raise ValueError(
            "service and component must be passed together (or not at all)"
        )
    reports: list[LintReport] = []
    for spec in specs:
        reports.append(lint_spec(spec, role=role, select=select, ignore=ignore))
    if compose:
        reports.append(
            lint_composition(list(specs), select=select, ignore=ignore)
        )
    if service is not None and component is not None:
        reports.append(
            lint_problem(
                service,
                component,
                int_events,
                select=select,
                ignore=ignore,
            )
        )
    if not reports:
        return LintReport.collect((), target="(nothing)")
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merged_with(report)
    return merged
