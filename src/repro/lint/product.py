"""Reachable product graphs for the semantic analyzer.

The ``SEM2xx`` rules (:mod:`repro.lint.semantic`) are reachability
properties of the *product* of several communicating machines: a state of
one part may be locally reachable yet dead in every composed run, a
transition may never fire on any product path, a product state may
deadlock.  This module builds that product once, deterministically, and
hands the rules a fully decoded :class:`ProductGraph`:

* **vectors** — every reachable tuple ``⟨s₁ … sₙ⟩`` of part states, in
  BFS discovery order (``vectors[0]`` is the initial vector);
* **edges** — per vector, the external moves (events owned by exactly one
  part) and the internal moves (one part's λ step, or a synchronization
  on an event shared by two or more parts — the moves ``‖`` would hide);
* **usage** — per part, which states appear in some vector and which
  transitions actually fire on some product edge;
* **witnesses** — first-discovery parent pointers, so every vector has a
  deterministic shortest-in-BFS-order trace from the initial vector.

Exploration follows the semantics of :func:`repro.compose.binary.compose`
(synchronize on shared events, interleave the rest) but keeps the part
structure instead of collapsing to an opaque composite, because the rules
must attribute findings to individual parts.

Two implementations produce byte-identical graphs: a compiled-kernel path
over :class:`~repro.spec.compiled.CompiledSpec` integer ids and a labeled
reference path.  ``REPRO_KERNEL=0`` (or :func:`~repro.spec.compiled
.use_kernel`) selects the reference path; the differential tests pin the
two against each other.  Exploration is budget-metered
(:class:`~repro.quotient.budget.Budget`): one ``states`` charge per
discovered vector, one ``pairs`` charge per expanded vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from .. import obs
from ..events import Alphabet, Event
from ..spec.compiled import compiled, kernel_enabled
from ..spec.spec import Specification, State, _state_sort_key

if TYPE_CHECKING:
    from ..quotient.budget import BudgetMeter

#: Label used for a part's internal (λ) step in rendered witness traces.
LAMBDA_STEP = "λ"


@dataclass(frozen=True)
class ProductGraph:
    """The reachable product of ``parts``, fully decoded and indexed.

    ``ext_out[i]`` / ``int_out[i]`` are the outgoing moves of vector
    ``i``: ``(event, target)`` pairs for solo (external) moves, and
    ``(label, target)`` pairs for hidden moves where ``label`` is the
    synchronized event or ``None`` for a single part's λ step.
    ``used[p]`` / ``fired_ext[p]`` / ``fired_int[p]`` project the product
    back onto part ``p``.
    """

    parts: tuple[Specification, ...]
    vectors: tuple[tuple[State, ...], ...]
    ext_out: tuple[tuple[tuple[Event, int], ...], ...]
    int_out: tuple[tuple[tuple[Event | None, int], ...], ...]
    parents: tuple[tuple[int, Event | None] | None, ...]
    used: tuple[frozenset[State], ...]
    fired_ext: tuple[frozenset[tuple[State, Event, State]], ...]
    fired_int: tuple[frozenset[tuple[State, State]], ...]
    _trace_cache: dict[int, tuple[str, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n(self) -> int:
        return len(self.vectors)

    def enabled_external(self, idx: int) -> Alphabet:
        """External events enabled at vector *idx*."""
        return Alphabet(e for e, _ in self.ext_out[idx])

    def trace_to(self, idx: int) -> tuple[str, ...]:
        """Event labels along the BFS discovery path to vector *idx*.

        External and synchronized steps contribute the event name;
        λ steps contribute :data:`LAMBDA_STEP`.  Deterministic: the path
        follows first-discovery parent pointers.
        """
        cached = self._trace_cache.get(idx)
        if cached is not None:
            return cached
        labels: list[str] = []
        cursor = idx
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            prev, label = parent
            labels.append(LAMBDA_STEP if label is None else label)
            cursor = prev
        labels.reverse()
        trace = tuple(labels)
        self._trace_cache[idx] = trace
        return trace

    def witness(self, idx: int) -> dict:
        """The standard product-state witness payload for diagnostics."""
        return {
            "product_state": self.vectors[idx],
            "trace": list(self.trace_to(idx)),
        }


def _event_owners(
    parts: Sequence[Specification],
) -> tuple[tuple[Event, ...], dict[Event, tuple[int, ...]]]:
    """The sorted union alphabet and each event's owning part indices."""
    owners: dict[Event, list[int]] = {}
    for p_idx, part in enumerate(parts):
        for e in part.alphabet:
            owners.setdefault(e, []).append(p_idx)
    events = tuple(sorted(owners))
    return events, {e: tuple(owners[e]) for e in events}


def explore_product(
    parts: Sequence[Specification],
    *,
    meter: "BudgetMeter | None" = None,
) -> ProductGraph:
    """Build the reachable product graph of *parts*.

    Raises :class:`~repro.errors.BudgetExceeded` /
    :class:`~repro.errors.InterruptRequested` mid-exploration when the
    *meter* trips; charges are placed after completed work units, so a
    budget that never trips cannot change the result.
    """
    parts = tuple(parts)
    if not parts:
        raise ValueError("cannot explore the product of zero parts")
    with obs.span("semantic_product", parts=len(parts)):
        if kernel_enabled():
            graph = _explore_kernel(parts, meter)
        else:
            graph = _explore_reference(parts, meter)
    obs.add("lint.sem.product_states", graph.n)
    obs.add(
        "lint.sem.product_edges",
        sum(len(m) for m in graph.ext_out) + sum(len(m) for m in graph.int_out),
    )
    return graph


# ----------------------------------------------------------------------
# reference path: labeled states throughout
# ----------------------------------------------------------------------
def _explore_reference(
    parts: tuple[Specification, ...],
    meter: "BudgetMeter | None",
) -> ProductGraph:
    events, owners = _event_owners(parts)

    initial = tuple(p.initial for p in parts)
    index: dict[tuple[State, ...], int] = {initial: 0}
    vectors: list[tuple[State, ...]] = [initial]
    parents: list[tuple[int, Event | None] | None] = [None]
    ext_out: list[tuple[tuple[Event, int], ...]] = []
    int_out: list[tuple[tuple[Event | None, int], ...]] = []
    if meter is not None:
        meter.charge(states=1, frontier=1)

    cursor = 0
    while cursor < len(vectors):
        vec = vectors[cursor]
        ext_moves: list[tuple[Event, int]] = []
        int_moves: list[tuple[Event | None, int]] = []

        def intern(target: tuple[State, ...], label: Event | None) -> int:
            idx = index.get(target)
            if idx is None:
                idx = len(vectors)
                index[target] = idx
                vectors.append(target)
                parents.append((cursor, label))
                if meter is not None:
                    meter.charge(states=1, frontier=len(vectors) - cursor)
            return idx

        for e in events:
            owner_ids = owners[e]
            if any(e not in parts[p].enabled(vec[p]) for p in owner_ids):
                continue
            # cartesian product of each owner's targets, owner-major order
            combos: list[list[State]] = [[]]
            for p in owner_ids:
                targets = sorted(
                    parts[p].successors(vec[p], e), key=_state_sort_key
                )
                combos = [c + [t] for c in combos for t in targets]
            for combo in combos:
                target = list(vec)
                for p, t in zip(owner_ids, combo):
                    target[p] = t
                idx = intern(tuple(target), e)
                if len(owner_ids) == 1:
                    ext_moves.append((e, idx))
                else:
                    int_moves.append((e, idx))
        for p, part in enumerate(parts):
            for t in sorted(part.internal_successors(vec[p]), key=_state_sort_key):
                target = vec[:p] + (t,) + vec[p + 1 :]
                int_moves.append((None, intern(target, None)))

        ext_out.append(tuple(ext_moves))
        int_out.append(tuple(int_moves))
        cursor += 1
        if meter is not None:
            meter.charge(pairs=1, frontier=len(vectors) - cursor)

    return _finish(parts, vectors, ext_out, int_out, parents, owners)


# ----------------------------------------------------------------------
# kernel path: integer ids throughout, decoded once at the end
# ----------------------------------------------------------------------
def _explore_kernel(
    parts: tuple[Specification, ...],
    meter: "BudgetMeter | None",
) -> ProductGraph:
    compiled_parts = tuple(compiled(p) for p in parts)
    events, owners = _event_owners(parts)
    # per event: the owning parts with their local event ids
    sync_plan: list[tuple[Event, tuple[tuple[int, int], ...]]] = [
        (e, tuple((p, compiled_parts[p].event_index[e]) for p in owners[e]))
        for e in events
    ]

    initial = tuple(cs.initial for cs in compiled_parts)
    index: dict[tuple[int, ...], int] = {initial: 0}
    vectors: list[tuple[int, ...]] = [initial]
    parents: list[tuple[int, Event | None] | None] = [None]
    ext_out: list[tuple[tuple[Event, int], ...]] = []
    int_out: list[tuple[tuple[Event | None, int], ...]] = []
    if meter is not None:
        meter.charge(states=1, frontier=1)

    cursor = 0
    while cursor < len(vectors):
        vec = vectors[cursor]
        ext_moves: list[tuple[Event, int]] = []
        int_moves: list[tuple[Event | None, int]] = []

        def intern(target: tuple[int, ...], label: Event | None) -> int:
            idx = index.get(target)
            if idx is None:
                idx = len(vectors)
                index[target] = idx
                vectors.append(target)
                parents.append((cursor, label))
                if meter is not None:
                    meter.charge(states=1, frontier=len(vectors) - cursor)
            return idx

        for e, plan in sync_plan:
            if any(
                not (compiled_parts[p].enabled_mask[vec[p]] >> eid) & 1
                for p, eid in plan
            ):
                continue
            combos: list[list[int]] = [[]]
            for p, eid in plan:
                targets = compiled_parts[p].ext_by_eid[vec[p]][eid]
                combos = [c + [t] for c in combos for t in targets]
            for combo in combos:
                target = list(vec)
                for (p, _), t in zip(plan, combo):
                    target[p] = t
                idx = intern(tuple(target), e)
                if len(plan) == 1:
                    ext_moves.append((e, idx))
                else:
                    int_moves.append((e, idx))
        for p, cs in enumerate(compiled_parts):
            for t in cs.int_succ[vec[p]]:
                target = vec[:p] + (t,) + vec[p + 1 :]
                int_moves.append((None, intern(target, None)))

        ext_out.append(tuple(ext_moves))
        int_out.append(tuple(int_moves))
        cursor += 1
        if meter is not None:
            meter.charge(pairs=1, frontier=len(vectors) - cursor)

    decoded = [
        tuple(compiled_parts[p].states[sid] for p, sid in enumerate(vec))
        for vec in vectors
    ]
    return _finish(parts, decoded, ext_out, int_out, parents, owners)


# ----------------------------------------------------------------------
# shared projection / packaging
# ----------------------------------------------------------------------
def _finish(
    parts: tuple[Specification, ...],
    vectors: list[tuple[State, ...]],
    ext_out: list[tuple[tuple[Event, int], ...]],
    int_out: list[tuple[tuple[Event | None, int], ...]],
    parents: list[tuple[int, Event | None] | None],
    owners: dict[Event, tuple[int, ...]],
) -> ProductGraph:
    used: list[set[State]] = [set() for _ in parts]
    for vec in vectors:
        for p, s in enumerate(vec):
            used[p].add(s)

    fired_ext: list[set[tuple[State, Event, State]]] = [set() for _ in parts]
    fired_int: list[set[tuple[State, State]]] = [set() for _ in parts]
    for src, moves in enumerate(ext_out):
        vec = vectors[src]
        for e, dst in moves:
            (p,) = owners[e]
            fired_ext[p].add((vec[p], e, vectors[dst][p]))
    for src, moves in enumerate(int_out):
        vec = vectors[src]
        for label, dst in moves:
            target = vectors[dst]
            if label is None:
                for p, s in enumerate(vec):
                    if target[p] != s:
                        fired_int[p].add((s, target[p]))
                if target == vec:
                    # a self-looping λ step: attribute it to every part
                    # that has one (cannot be told apart — all fired)
                    for p, part in enumerate(parts):
                        if vec[p] in part.internal_successors(vec[p]):
                            fired_int[p].add((vec[p], vec[p]))
            else:
                for p in owners[label]:
                    fired_ext[p].add((vec[p], label, target[p]))

    return ProductGraph(
        parts=parts,
        vectors=tuple(vectors),
        ext_out=tuple(ext_out),
        int_out=tuple(int_out),
        parents=tuple(parents),
        used=tuple(frozenset(u) for u in used),
        fired_ext=tuple(frozenset(f) for f in fired_ext),
        fired_int=tuple(frozenset(f) for f in fired_int),
    )
