"""The rule registry of the static analyzer.

Each rule is a pure function from an analysis target to zero or more
:class:`~repro.lint.diagnostics.Diagnostic` findings, registered with a
stable code, a default severity, and a fix hint.  Rules never execute the
quotient; they inspect structure only (reachability, λ-SCCs, alphabets,
normal form), so a full lint pass is cheap relative to product
construction.

Code families
-------------
``SPEC0xx``
    Structural problems of a single specification.
``NORM0xx``
    Section 3 normal-form violations of a service specification (the
    collected-diagnostics form of :class:`~repro.errors.NormalFormError`).
``COMP0xx`` / ``CONV0xx``
    Problems of a *set* of components about to be composed: events shared
    by too many alphabets, and ``-x``/``+x`` channel-convention breaks.
``SPEC1xx`` / ``QUOT0xx``
    Problems of an ``(A, B, Int, Ext)`` quotient instance: partition
    violations and solve-preflight predictors of an empty converter.

Scopes
------
A rule's ``scope`` names the target shape it understands:

* ``"spec"`` — any :class:`SpecTarget`;
* ``"service"`` — a :class:`SpecTarget` whose role is ``"service"``;
* ``"composition"`` — a :class:`CompositionTarget` (parts of a ``‖``);
* ``"problem"`` — a :class:`ProblemTarget` (a quotient instance);
* ``"checkpoint"`` — a :class:`CheckpointTarget` (a resume attempt
  checked against the problem it claims to belong to, rule ``QUOT104``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..events import (
    Alphabet,
    is_receive,
    is_send,
    matching_receive,
    matching_send,
)
from ..spec.graph import internal_sccs, reachable_states
from ..spec.normal_form import normal_form_violations
from ..spec.spec import Specification, _state_sort_key
from .diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)

ROLE_COMPONENT = "component"
ROLE_SERVICE = "service"


# ----------------------------------------------------------------------
# analysis targets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpecTarget:
    """A single specification under analysis, with its intended role."""

    spec: Specification
    role: str = ROLE_COMPONENT


@dataclass(frozen=True)
class CompositionTarget:
    """Components about to be composed with ``‖`` (before hiding)."""

    parts: tuple[Specification, ...]


@dataclass(frozen=True)
class ProblemTarget:
    """A quotient instance ``A / B`` with an optionally declared Int."""

    service: Specification
    component: Specification
    declared_int: Alphabet | None = None

    @property
    def inferred_int(self) -> Alphabet:
        return self.component.alphabet - self.service.alphabet


@dataclass(frozen=True)
class CheckpointTarget:
    """A resume attempt: a loaded checkpoint against the current problem.

    Plain strings only (the checkpoint's identity fields and what the
    caller expected), so the lint layer needs no import of
    :mod:`repro.persist`.
    """

    kind: str
    phase: str
    fingerprint: str
    expected_kind: str
    expected_fingerprint: str


@dataclass(frozen=True)
class Rule:
    """A registered static-analysis rule."""

    code: str
    name: str
    scope: str
    severity: str
    summary: str
    hint: str
    check: Callable[[Any], Iterator[Diagnostic]]

    def diagnostic(
        self,
        message: str,
        *,
        spec_name: str | None = None,
        state: Any = None,
        event: str | None = None,
        witness: Any = None,
        severity: str | None = None,
        hint: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=severity or self.severity,
            message=message,
            rule=self.name,
            spec_name=spec_name,
            state=state,
            event=event,
            witness=witness if witness is not None else state,
            hint=hint if hint is not None else self.hint,
        )


_REGISTRY: dict[str, Rule] = {}


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


def rule(
    code: str,
    name: str,
    *,
    scope: str,
    severity: str,
    summary: str,
    hint: str = "",
) -> Callable[[Callable[[Rule, Any], Iterator[Diagnostic]]], Rule]:
    """Register a rule.  The wrapped function receives ``(rule, target)``."""

    def register(fn: Callable[[Rule, Any], Iterator[Diagnostic]]) -> Rule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code!r}")

        def check(
            target: Any,
            *,
            _fn: Callable[[Rule, Any], Iterator[Diagnostic]] = fn,
        ) -> Iterator[Diagnostic]:
            return _fn(_REGISTRY[code], target)

        registered = Rule(
            code=code,
            name=name,
            scope=scope,
            severity=severity,
            summary=summary,
            hint=hint,
            check=check,
        )
        _REGISTRY[code] = registered
        return registered

    return register


def _sorted_states(states: Iterable[Any]) -> list[Any]:
    return sorted(states, key=_state_sort_key)


# ----------------------------------------------------------------------
# SPEC0xx — single-specification structure
# ----------------------------------------------------------------------
@rule(
    "SPEC001",
    "unreachable-state",
    scope="spec",
    severity=SEVERITY_ERROR,
    summary="a state cannot be reached from the initial state",
    hint="remove the state or add transitions reaching it; "
    "prune_unreachable() drops it mechanically",
)
def _check_unreachable(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    reachable = reachable_states(spec)
    for s in _sorted_states(spec.states - reachable):
        n_dead = sum(1 for (src, _, _) in spec.external if src == s) + sum(
            1 for (src, _) in spec.internal if src == s
        )
        suffix = f" (its {n_dead} outgoing transition(s) are dead)" if n_dead else ""
        yield r.diagnostic(
            f"state {s!r} is unreachable from the initial state "
            f"{spec.initial!r}{suffix}",
            spec_name=spec.name,
            state=s,
        )


@rule(
    "SPEC002",
    "unused-event",
    scope="spec",
    severity=SEVERITY_INFO,
    summary="an alphabet event labels no transition",
    hint="a declared-but-refused event is legal (it models permanent "
    "refusal); drop it from the alphabet if unintended",
)
def _check_unused_event(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    used = {e for (_, e, _) in spec.external}
    for e in (spec.alphabet - Alphabet(used)).sorted():
        yield r.diagnostic(
            f"event {e!r} is declared in the alphabet but labels no transition",
            spec_name=spec.name,
            event=e,
            witness=e,
        )


@rule(
    "SPEC003",
    "terminal-state",
    scope="spec",
    severity=SEVERITY_WARNING,
    summary="a reachable state has no outgoing transitions",
    hint="a terminal state deadlocks the component; add transitions or "
    "model explicit termination",
)
def _check_terminal(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    for s in _sorted_states(reachable_states(spec)):
        if not spec.enabled(s) and not spec.has_internal(s):
            yield r.diagnostic(
                f"reachable state {s!r} has no outgoing external or internal "
                "transitions (the component deadlocks there)",
                spec_name=spec.name,
                state=s,
            )


@rule(
    "SPEC004",
    "silent-internal-cycle",
    scope="spec",
    severity=SEVERITY_WARNING,
    summary="an internal sink cycle enables no external event (livelock)",
    hint="under fairness the system may dwell in the cycle forever with "
    "an empty acceptance set; enable an external event on the cycle or "
    "break it",
)
def _check_silent_cycle(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    reachable = reachable_states(spec)
    sccs, scc_of = internal_sccs(spec)
    for idx, component in enumerate(sccs):
        if len(component) < 2:
            continue
        leaves = any(
            scc_of[s2] != idx
            for s in component
            for s2 in spec.internal_successors(s)
        )
        offers = any(spec.enabled(s) for s in component)
        if leaves or offers or not any(s in reachable for s in component):
            continue
        members = frozenset(component)
        yield r.diagnostic(
            f"internal cycle through {_sorted_states(members)!r} is a sink "
            "set with an empty acceptance set: once entered, the component "
            "exchanges internal moves forever and never offers an event",
            spec_name=spec.name,
            witness=members,
        )


@rule(
    "SPEC005",
    "nondeterministic-fanout",
    scope="spec",
    severity=SEVERITY_INFO,
    summary="one state has several targets for the same event",
    hint="fan-out is legal but blocks normal form condition (iii); "
    "determinize() or normalize() resolves it",
)
def _check_fanout(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    for s in _sorted_states(spec.states):
        for e in sorted(spec.enabled(s)):
            targets = spec.successors(s, e)
            if len(targets) > 1:
                yield r.diagnostic(
                    f"state {s!r} has {len(targets)} distinct targets on "
                    f"event {e!r}: {_sorted_states(targets)!r}",
                    spec_name=spec.name,
                    state=s,
                    event=e,
                    witness=(s, e, frozenset(targets)),
                )


@rule(
    "SPEC006",
    "preemptible-external",
    scope="spec",
    severity=SEVERITY_INFO,
    summary="a state mixes internal and external outgoing transitions",
    hint="the internal move can pre-empt the external offer; exact "
    "normalization may be impossible (see NormalizationError)",
)
def _check_preemptible(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    for s in _sorted_states(spec.states):
        if spec.has_internal(s) and spec.enabled(s):
            yield r.diagnostic(
                f"state {s!r} has both internal and external outgoing "
                f"transitions; its offers {sorted(spec.enabled(s))!r} are "
                "pre-emptible",
                spec_name=spec.name,
                state=s,
            )


# ----------------------------------------------------------------------
# NORM0xx — service normal form (Section 3, conditions i-iii)
# ----------------------------------------------------------------------
_NORM_CODE_OF_CONDITION = {"i": "NORM001", "ii": "NORM002", "iii": "NORM003"}


def _norm_rule_check(
    condition: str,
) -> Callable[[Rule, SpecTarget], Iterator[Diagnostic]]:
    def check(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
        for v in normal_form_violations(target.spec):
            if v.condition != condition:
                continue
            yield r.diagnostic(
                f"not in normal form (condition {v.condition}): {v.message}",
                spec_name=target.spec.name,
                witness=v.witness,
            )

    return check


rule(
    "NORM001",
    "normal-form-mixed-state",
    scope="service",
    severity=SEVERITY_ERROR,
    summary="service violates normal form (i): a state has both internal "
    "and external transitions",
    hint="run normalize() (exact) or determinize() (conservative) on the "
    "service before solving",
)(_norm_rule_check("i"))

rule(
    "NORM002",
    "normal-form-internal-cycle",
    scope="service",
    severity=SEVERITY_ERROR,
    summary="service violates normal form (ii): λ* is not antisymmetric",
    hint="collapse the internal cycle (its members are behaviourally one "
    "hub) or run normalize()",
)(_norm_rule_check("ii"))

rule(
    "NORM003",
    "normal-form-divergent-event",
    scope="service",
    severity=SEVERITY_ERROR,
    summary="service violates normal form (iii): one event from a common "
    "λ-ancestor reaches distinct states",
    hint="merge the targets or run normalize(); ψ must be a function of "
    "the trace",
)(_norm_rule_check("iii"))


# ----------------------------------------------------------------------
# COMP0xx / CONV0xx — composition preflight
# ----------------------------------------------------------------------
@rule(
    "COMP001",
    "overshared-event",
    scope="composition",
    severity=SEVERITY_ERROR,
    summary="an event appears in three or more component alphabets",
    hint="iterated binary ‖ hides an event after its first "
    "synchronization; declare distinct point-to-point interfaces",
)
def _check_overshared(r: Rule, target: CompositionTarget) -> Iterator[Diagnostic]:
    counts: dict[str, list[str]] = {}
    for part in target.parts:
        for e in part.alphabet:
            counts.setdefault(e, []).append(part.name)
    for e in sorted(counts):
        owners = counts[e]
        if len(owners) >= 3:
            yield r.diagnostic(
                f"event {e!r} appears in three or more component alphabets "
                f"({sorted(owners)!r}); iterated binary composition would "
                "hide it after the first synchronization",
                event=e,
                witness=tuple(sorted(owners)),
            )


@rule(
    "COMP002",
    "non-synchronizing-part",
    scope="composition",
    severity=SEVERITY_INFO,
    summary="a component shares no event with any other component",
    hint="the part runs fully interleaved; check for a misspelled "
    "interface event",
)
def _check_isolated_part(r: Rule, target: CompositionTarget) -> Iterator[Diagnostic]:
    if len(target.parts) < 2:
        return
    for i, part in enumerate(target.parts):
        others: set[str] = set()
        for j, other in enumerate(target.parts):
            if j != i:
                others |= set(other.alphabet)
        if not (set(part.alphabet) & others):
            yield r.diagnostic(
                f"component {part.name!r} shares no event with the other "
                "components; it never synchronizes",
                spec_name=part.name,
                witness=part.name,
            )


def _union_alphabet(parts: Iterable[Specification]) -> Alphabet:
    events: set[str] = set()
    for part in parts:
        events |= set(part.alphabet)
    return Alphabet(events)


@rule(
    "CONV001",
    "send-without-receive",
    scope="composition",
    severity=SEVERITY_WARNING,
    summary="a send event -x has no matching receive +x in any component",
    hint="messages passed into the channel are never removed; add the "
    "+x receive or rename the event",
)
def _check_send_without_receive(
    r: Rule, target: CompositionTarget
) -> Iterator[Diagnostic]:
    union = _union_alphabet(target.parts)
    for e in union.sorted():
        if is_send(e) and matching_receive(e) not in union:
            owners = sorted(p.name for p in target.parts if e in p.alphabet)
            yield r.diagnostic(
                f"send event {e!r} (in {owners!r}) has no matching receive "
                f"{matching_receive(e)!r} in any composed component",
                event=e,
                witness=e,
            )


@rule(
    "CONV002",
    "receive-without-send",
    scope="composition",
    severity=SEVERITY_WARNING,
    summary="a receive event +x has no matching send -x in any component",
    hint="nothing ever enters the channel; add the -x send or rename "
    "the event",
)
def _check_receive_without_send(
    r: Rule, target: CompositionTarget
) -> Iterator[Diagnostic]:
    union = _union_alphabet(target.parts)
    for e in union.sorted():
        if is_receive(e) and matching_send(e) not in union:
            owners = sorted(p.name for p in target.parts if e in p.alphabet)
            yield r.diagnostic(
                f"receive event {e!r} (in {owners!r}) has no matching send "
                f"{matching_send(e)!r} in any composed component",
                event=e,
                witness=e,
            )


# ----------------------------------------------------------------------
# SPEC1xx / QUOT0xx — quotient-problem preflight
# ----------------------------------------------------------------------
@rule(
    "SPEC101",
    "int-ext-overlap",
    scope="problem",
    severity=SEVERITY_ERROR,
    summary="the declared Int overlaps Ext (the service alphabet)",
    hint="Int and Ext partition the composite's interface; an event "
    "cannot face both the converter and the users",
)
def _check_int_ext_overlap(r: Rule, target: ProblemTarget) -> Iterator[Diagnostic]:
    if target.declared_int is None:
        return
    overlap = target.declared_int & target.service.alphabet
    if overlap:
        yield r.diagnostic(
            f"Int ∩ Ext must be empty; both contain {overlap.sorted()!r}",
            spec_name=target.service.name,
            witness=overlap,
        )


@rule(
    "SPEC102",
    "component-missing-ext",
    scope="problem",
    severity=SEVERITY_ERROR,
    summary="the component alphabet is missing service (Ext) events",
    hint="the quotient requires Σ_B = Int ∪ Ext; add the missing events "
    "to B's interface (B may refuse them, but must declare them)",
)
def _check_component_missing_ext(
    r: Rule, target: ProblemTarget
) -> Iterator[Diagnostic]:
    missing = target.service.alphabet - target.component.alphabet
    if missing:
        yield r.diagnostic(
            f"component alphabet lacks service events {missing.sorted()!r}; "
            "Σ_B must equal Int ∪ Ext",
            spec_name=target.component.name,
            witness=missing,
        )


@rule(
    "SPEC103",
    "declared-int-mismatch",
    scope="problem",
    severity=SEVERITY_ERROR,
    summary="the declared Int differs from the inferred Σ_B − Σ_A",
    hint="either fix the declaration or fix the component alphabet; the "
    "converter's interface is exactly Σ_B − Σ_A",
)
def _check_declared_int_mismatch(
    r: Rule, target: ProblemTarget
) -> Iterator[Diagnostic]:
    if target.declared_int is None:
        return
    inferred = target.inferred_int
    if frozenset(target.declared_int) != frozenset(inferred):
        yield r.diagnostic(
            f"declared Int {target.declared_int.sorted()!r} does not match "
            f"inferred Σ_B − Σ_A = {inferred.sorted()!r}",
            spec_name=target.component.name,
            witness=(
                tuple(target.declared_int.sorted()),
                tuple(inferred.sorted()),
            ),
        )


@rule(
    "QUOT001",
    "ext-event-never-offered",
    scope="problem",
    severity=SEVERITY_WARNING,
    summary="the service uses an Ext event the component never performs",
    hint="no converter can make B offer it; if the service *requires* "
    "the event, expect an empty quotient",
)
def _check_ext_never_offered(r: Rule, target: ProblemTarget) -> Iterator[Diagnostic]:
    used_by_service = {e for (_, e, _) in target.service.external}
    used_by_component = {e for (_, e, _) in target.component.external}
    for e in sorted(used_by_service & set(target.component.alphabet)):
        if e not in used_by_component:
            yield r.diagnostic(
                f"service event {e!r} labels no transition of the component: "
                "B can never offer it, with or without a converter",
                spec_name=target.component.name,
                event=e,
                witness=e,
            )


@rule(
    "QUOT002",
    "dead-converter-port",
    scope="problem",
    severity=SEVERITY_WARNING,
    summary="an Int event labels no component transition",
    hint="the converter would own an interface event that can never "
    "fire; drop it from B's alphabet or fix B",
)
def _check_dead_converter_port(
    r: Rule, target: ProblemTarget
) -> Iterator[Diagnostic]:
    int_events = (
        target.declared_int if target.declared_int is not None else target.inferred_int
    )
    used_by_component = {e for (_, e, _) in target.component.external}
    for e in sorted(set(int_events) - set(target.service.alphabet)):
        if e in target.component.alphabet and e not in used_by_component:
            yield r.diagnostic(
                f"Int event {e!r} labels no transition of the component; the "
                "converter could never exercise it",
                spec_name=target.component.name,
                event=e,
                witness=e,
            )


@rule(
    "QUOT104",
    "stale-checkpoint",
    scope="checkpoint",
    severity=SEVERITY_ERROR,
    summary="a checkpoint does not belong to the problem being resumed",
    hint="resume with the original service/component/Int (checkpoints "
    "fingerprint their inputs), or start a fresh solve without --resume",
)
def _check_stale_checkpoint(
    r: Rule, target: CheckpointTarget
) -> Iterator[Diagnostic]:
    if target.kind != target.expected_kind:
        yield r.diagnostic(
            f"checkpoint was taken by a {target.kind!r} run but is being "
            f"resumed as {target.expected_kind!r}",
            witness=(target.kind, target.expected_kind),
        )
        return
    if target.fingerprint != target.expected_fingerprint:
        yield r.diagnostic(
            f"checkpoint fingerprint {target.fingerprint[:12]}… was taken "
            f"for a different problem than the one being resumed "
            f"({target.expected_fingerprint[:12]}…); its "
            f"{target.phase!r}-phase state cannot be trusted here",
            witness=(target.fingerprint, target.expected_fingerprint),
        )


# ----------------------------------------------------------------------
# CHAN1xx — fault-model conventions (see docs/robustness.md)
# ----------------------------------------------------------------------
_FAULT_STATE = "lost"


def _fault_states(spec: Specification) -> list[Any]:
    """States marked as fault states by the ``"lost"`` naming convention
    (used by :func:`repro.protocols.channels.lossy_duplex_channel` and the
    :mod:`repro.faults` transformers), including composite tuple states
    with a ``"lost"`` coordinate."""
    found = []
    for s in spec.sorted_states():
        if s == _FAULT_STATE or (
            isinstance(s, tuple) and _FAULT_STATE in s
        ):
            found.append(s)
    return found


def _is_timeout_like(event: str) -> bool:
    return not is_send(event) and not is_receive(event)


@rule(
    "CHAN101",
    "active-fault-state",
    scope="spec",
    severity=SEVERITY_WARNING,
    summary="a fault state enables events other than a timeout",
    hint="a loss must be announced (timeout) before the channel acts "
    "again; drop the extra transitions or rename the state if it is "
    "not a fault state",
)
def _check_active_fault_state(r: Rule, target: SpecTarget) -> Iterator[Diagnostic]:
    spec = target.spec
    for s in _fault_states(spec):
        extra = sorted(
            e for e in spec.enabled(s) if not _is_timeout_like(e)
        )
        if extra:
            yield r.diagnostic(
                f"fault state {s!r} enables {extra!r} — message traffic "
                "from a fault state lets the system act on a loss before "
                "any timeout announces it (premature-timeout hazard)",
                spec_name=spec.name,
                state=s,
                witness=tuple(extra),
            )


@rule(
    "CHAN102",
    "timeout-sharing-hazard",
    scope="composition",
    severity=SEVERITY_WARNING,
    summary="a fault state's timeout event is unshared or ambiguous",
    hint="a timeout announced from a fault state must synchronize with "
    "exactly one fault-free partner; rename per-component timeout "
    "events apart (e.g. faults.loss(timeout=...)) or add the partner",
)
def _check_timeout_sharing(
    r: Rule, target: CompositionTarget
) -> Iterator[Diagnostic]:
    # which components announce which timeout-like events from fault states
    announcers: dict[str, list[str]] = {}
    for part in target.parts:
        for s in _fault_states(part):
            for e in part.enabled(s):
                if _is_timeout_like(e):
                    owners = announcers.setdefault(e, [])
                    if part.name not in owners:
                        owners.append(part.name)
    for e in sorted(announcers):
        owners = announcers[e]
        if len(owners) > 1:
            yield r.diagnostic(
                f"timeout event {e!r} is announced from fault states of "
                f"multiple components ({sorted(owners)!r}); their losses "
                "are indistinguishable to the synchronizing partner",
                event=e,
                witness=tuple(sorted(owners)),
            )
            continue
        listeners = [
            p.name
            for p in target.parts
            if e in p.alphabet and p.name not in owners
        ]
        if not listeners:
            yield r.diagnostic(
                f"timeout event {e!r} announced by {owners[0]!r} is in no "
                "other component's alphabet; losses are silent (the fault "
                "is never observed, so no recovery can trigger)",
                spec_name=owners[0],
                event=e,
                witness=e,
            )
