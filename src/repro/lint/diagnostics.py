"""Structured diagnostics and reports for the static analyzer.

A :class:`Diagnostic` is one finding of one rule: a stable code
(``SPEC001``, ``NORM002``, ``QUOT101`` ...), a severity, a human-readable
message, the offending spec/state/event witness, and a fix hint.  A
:class:`LintReport` is an ordered collection of diagnostics with the
renderings the CLI exposes (text, JSON, SARIF) and the raise/exit-code
policy the preflights rely on.

The same types are emitted by :mod:`repro.quotient.diagnose` and
:mod:`repro.analysis.explain`, so ``repro-converter lint`` and
``repro-converter diagnose`` share a single rendering path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..errors import LintError

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)
_SEVERITY_RANK: Mapping[str, int] = {s: i for i, s in enumerate(SEVERITIES)}

_SARIF_LEVEL = {
    SEVERITY_ERROR: "error",
    SEVERITY_WARNING: "warning",
    SEVERITY_INFO: "note",
}

#: Base of the per-rule ``helpUri`` anchors (one anchor per rule code in
#: the docs/lint.md catalogue).
HELP_URI_BASE = "https://example.invalid/repro/docs/lint.md"


def help_uri(code: str) -> str:
    """The documentation anchor for a rule code (stable, lowercase)."""
    return f"{HELP_URI_BASE}#{code.lower()}"


def _sarif_rule(code: str) -> dict[str, Any]:
    """A SARIF ``reportingDescriptor`` for one rule code.

    Registered rules contribute their name, summary and default level;
    unregistered codes (e.g. the ``QUOT10x`` diagnosis family) still get
    an id and a help anchor.
    """
    entry: dict[str, Any] = {"id": code, "helpUri": help_uri(code)}
    try:
        from .rules import get_rule

        registered = get_rule(code)
    except KeyError:
        return entry
    entry["name"] = registered.name
    entry["shortDescription"] = {"text": registered.summary}
    entry["defaultConfiguration"] = {"level": _SARIF_LEVEL[registered.severity]}
    return entry


def _sarif_result(d: "Diagnostic") -> dict[str, Any]:
    """A SARIF ``result`` for one diagnostic.

    State witnesses become logical locations
    (``fullyQualifiedName = spec::state``); product-state witnesses (dicts
    with ``product_state``/``trace``) additionally surface the
    counterexample trace in ``properties.trace``.
    """
    result: dict[str, Any] = {
        "ruleId": d.code,
        "level": _SARIF_LEVEL[d.severity],
        "message": {"text": d.message},
        "properties": {
            "spec": d.spec_name,
            "witness": json_safe(d.witness),
            "hint": d.hint,
        },
    }
    if d.state is not None:
        logical: dict[str, Any] = {
            "name": repr(d.state),
            "kind": "state",
        }
        if d.spec_name:
            logical["fullyQualifiedName"] = f"{d.spec_name}::{d.state!r}"
        result["locations"] = [{"logicalLocations": [logical]}]
    if isinstance(d.witness, dict) and "trace" in d.witness:
        result["properties"]["trace"] = json_safe(d.witness["trace"])
        if "product_state" in d.witness:
            result["properties"]["productState"] = json_safe(
                d.witness["product_state"]
            )
    return result


def json_safe(value: Any) -> Any:
    """Encode an arbitrary witness value into JSON-stable structure.

    States may be ints, strings, tuples, or frozensets of those; anything
    else falls back to ``repr``.  Sets are sorted for determinism.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (tuple, list)):
        return [json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        encoded = [json_safe(v) for v in value]
        encoded.sort(key=lambda v: json.dumps(v, sort_keys=True))
        return encoded
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return repr(value)


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of a static-analysis rule.

    ``code`` is stable across releases; tooling may match on it.  ``witness``
    holds the offending structure in a rule-specific shape (a state, an
    event, a ``(state, event, targets)`` triple ...); ``state`` and
    ``event`` duplicate the common cases for easy filtering.
    """

    code: str
    severity: str
    message: str
    rule: str = ""
    spec_name: str | None = None
    state: Any = None
    event: str | None = None
    witness: Any = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR

    def sort_key(self) -> tuple[int, str, str, str]:
        return (
            _SEVERITY_RANK[self.severity],
            self.code,
            self.spec_name or "",
            repr(self.witness),
        )

    def describe(self) -> str:
        """Render this diagnostic as indented text (the shared path used by
        both ``lint`` and ``diagnose``)."""
        where = f" [{self.spec_name}]" if self.spec_name else ""
        first, *rest = self.message.splitlines() or [""]
        lines = [f"{self.severity}[{self.code}]{where} {first}"]
        lines.extend(f"    {line}" for line in rest)
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "rule": self.rule,
            "spec": self.spec_name,
            "message": self.message,
            "state": json_safe(self.state),
            "event": self.event,
            "witness": json_safe(self.witness),
            "hint": self.hint,
        }


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """Render a sequence of diagnostics, one block per finding."""
    return "\n".join(d.describe() for d in diagnostics)


@dataclass(frozen=True)
class LintReport:
    """The outcome of running a set of rules over one target.

    ``diagnostics`` are sorted most-severe first with deterministic
    tie-breaking.  ``target`` names what was analyzed (for report headers).
    """

    diagnostics: tuple[Diagnostic, ...]
    target: str = ""
    rules_run: tuple[str, ...] = field(default=())

    @classmethod
    def collect(
        cls,
        diagnostics: Iterable[Diagnostic],
        *,
        target: str = "",
        rules_run: Iterable[str] = (),
    ) -> "LintReport":
        ordered = tuple(sorted(diagnostics, key=Diagnostic.sort_key))
        return cls(ordered, target=target, rules_run=tuple(rules_run))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == SEVERITY_ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == SEVERITY_WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == SEVERITY_INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were produced."""
        return not self.errors

    def codes(self) -> tuple[str, ...]:
        """Distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def exit_code(self, *, strict: bool = False, fail_on: str = SEVERITY_ERROR) -> int:
        """CLI exit code: 2 when findings at/above *fail_on* are present.

        ``fail_on="error"`` (the default) fails only on error-severity
        diagnostics; ``fail_on="warning"`` also fails on warnings.
        Warnings-only runs exit 0 under the default.  ``strict=True`` is
        the legacy spelling of ``fail_on="warning"``.
        """
        if fail_on not in (SEVERITY_ERROR, SEVERITY_WARNING):
            raise ValueError(f"fail_on must be 'error' or 'warning', got {fail_on!r}")
        if strict:
            fail_on = SEVERITY_WARNING
        if self.errors:
            return 2
        if fail_on == SEVERITY_WARNING and self.warnings:
            return 2
        return 0

    def raise_if_errors(self) -> None:
        """Raise :class:`~repro.errors.LintError` when errors are present.

        This is the preflight contract: warnings and infos never block; an
        error-severity diagnostic aborts before expensive construction.
        """
        errors = self.errors
        if errors:
            raise LintError(
                f"static analysis found {len(errors)} error(s) in "
                f"{self.target or 'input'}:\n" + format_diagnostics(errors),
                diagnostics=errors,
            )

    def summary(self) -> str:
        return (
            f"lint {self.target or '(input)'}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )

    def describe(self) -> str:
        """Full text rendering: summary header plus one block per finding."""
        lines = [self.summary()]
        if self.diagnostics:
            lines.append(format_diagnostics(self.diagnostics))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # machine-readable renderings
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "target": self.target,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    def to_sarif_dict(self) -> dict[str, Any]:
        """SARIF 2.1.0 document (one run, one result per finding).

        Driver rules carry ``helpUri`` anchors into ``docs/lint.md`` and
        the registered summary; results with a state witness carry a
        logical location, and product-state witnesses additionally expose
        their counterexample trace under ``properties.trace``.
        """
        rule_ids = sorted({d.code for d in self.diagnostics} | set(self.rules_run))
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": "https://example.invalid/repro",
                            "rules": [_sarif_rule(rid) for rid in rule_ids],
                        }
                    },
                    "results": [_sarif_result(d) for d in self.diagnostics],
                }
            ],
        }

    def to_sarif(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_sarif_dict(), indent=indent, sort_keys=True)

    def merged_with(self, other: "LintReport") -> "LintReport":
        """Combine two reports (used when linting several specs at once)."""
        target = self.target if self.target == other.target else (
            ", ".join(t for t in (self.target, other.target) if t)
        )
        return LintReport.collect(
            self.diagnostics + other.diagnostics,
            target=target,
            rules_run=tuple(dict.fromkeys(self.rules_run + other.rules_run)),
        )
