"""The semantic analyzer: reachability-based ``SEM2xx`` rules.

Where the structural rules (:mod:`repro.lint.rules`) inspect one machine's
shape, the semantic pass certifies *behaviour*: it builds the reachable
product graph of a system (:mod:`repro.lint.product`, kernel-accelerated
and budget-bounded) and reports the classic failure modes of communicating
machines — the properties reachability analysis detects statically
(Pachl's CFSM analysis; the paper's Section 5 livelock observation):

``SEM201``  a part's state never occurs in any reachable product state;
``SEM202``  a part's transition never fires on any reachable product path;
``SEM203``  an unspecified reception: a shared receive event is offered,
            but a co-owning part can never accept it from its current
            state (anywhere in its forward cone);
``SEM204``  a reachable product deadlock (no moves at all);
``SEM205``  a livelock: an internal cycle with no exit and no external
            event offered anywhere on it;
``SEM206``  sink-unreachable acceptance: a product state from which every
            internal path falls silent (``τ* = ∅``) without being a
            deadlock or livelock itself;
``SEM207``  converter-coverage gaps: states/transitions of a derived
            converter ``C`` never exercised on the reachable ``B ‖ C``;
``SEM208``  quotient-maximality diagnostics: safety-quotient states the
            progress phase removed (and vacuous converter states) on a
            solved problem.

Every finding carries a **product-state witness**: the offending vector
``⟨s₁ … sₙ⟩`` plus the shortest-in-BFS-order event trace reaching it
(``λ`` marks internal steps).  Findings flow through the ordinary
:class:`~repro.lint.diagnostics.Diagnostic` / :class:`LintReport`
machinery, so text/JSON/SARIF rendering, ``select``/``ignore`` filtering,
and the docs self-check all treat semantic rules like structural ones.

Entry points: :func:`analyze_spec`, :func:`analyze_composition`,
:func:`analyze_converter`, :func:`analyze_result`, :func:`analyze_problem`
and the :func:`deep_preflight` hook used by ``solve_quotient``.  All are
budget-aware: a tripped :class:`~repro.quotient.budget.Budget` raises
:class:`~repro.errors.BudgetExceeded` with the diagnostics collected so
far attached as ``exc.partial_report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

from .. import obs
from ..events import Alphabet, Event, is_receive
from ..errors import BudgetExceeded, InterruptRequested
from ..spec.graph import reachable_states
from ..spec.spec import Specification, State, _state_sort_key
from .diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    LintReport,
)
from .engine import Selection, select_rules
from .product import ProductGraph, explore_product
from .rules import Rule, rule

if TYPE_CHECKING:
    from ..persist.interrupt import InterruptController
    from ..quotient.budget import Budget, BudgetMeter
    from ..quotient.types import QuotientResult

#: Scope names of the semantic rule family (see ``select_rules``).
SEMANTIC_SCOPES = ("semantic", "semantic-converter", "semantic-result")


# ----------------------------------------------------------------------
# analysis targets (pre-chewed so rules stay pure formatters)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SemanticTarget:
    """A system's reachable product graph plus the derived facts the
    ``SEM201``–``SEM206`` rules report on."""

    parts: tuple[Specification, ...]
    graph: ProductGraph
    context: str
    local_reachable: tuple[frozenset[State], ...]
    future_events: tuple[Mapping[State, Alphabet], ...]
    deadlock_idxs: tuple[int, ...]
    livelock_sccs: tuple[tuple[int, ...], ...]
    doomed_idxs: tuple[int, ...]


@dataclass(frozen=True)
class ConverterTarget:
    """A derived converter against its component composite (``B ‖ C``)."""

    component: Specification
    converter: Specification
    graph: ProductGraph


@dataclass(frozen=True)
class ResultTarget:
    """A solved quotient (:class:`~repro.quotient.types.QuotientResult`)."""

    result: "QuotientResult"


# ----------------------------------------------------------------------
# derived-fact computation
# ----------------------------------------------------------------------
def _future_events(part: Specification) -> dict[State, Alphabet]:
    """Events enabled anywhere in each state's forward cone (``T ∪ λ``).

    ``e ∉ future_events[s]`` means the part can *never* take ``e`` again
    once in ``s`` — the conservative trigger for ``SEM203``.
    """
    future: dict[State, set[Event]] = {
        s: set(part.enabled(s)) for s in part.states
    }
    succs: dict[State, list[State]] = {}
    for s in part.states:
        nexts: set[State] = set(part.internal_successors(s))
        for e in part.enabled(s):
            nexts |= part.successors(s, e)
        succs[s] = sorted(nexts, key=_state_sort_key)
    changed = True
    while changed:
        changed = False
        for s in part.sorted_states():
            merged = future[s]
            before = len(merged)
            for s2 in succs[s]:
                merged |= future[s2]
            if len(merged) != before:
                changed = True
    return {s: Alphabet(evs) for s, evs in future.items()}


def _live_flags(graph: ProductGraph) -> list[bool]:
    """``live[i]`` — an external event is offered somewhere in the
    internal closure of vector ``i`` (the product-level ``τ* ≠ ∅``)."""
    n = graph.n
    live = [bool(graph.ext_out[i]) for i in range(n)]
    rev: list[list[int]] = [[] for _ in range(n)]
    for src in range(n):
        for _, dst in graph.int_out[src]:
            rev[dst].append(src)
    stack = [i for i in range(n) if live[i]]
    while stack:
        i = stack.pop()
        for j in rev[i]:
            if not live[j]:
                live[j] = True
                stack.append(j)
    return live


def _internal_sccs(graph: ProductGraph) -> tuple[list[list[int]], list[int]]:
    """Tarjan SCCs of the product's internal-move graph (iterative)."""
    n = graph.n
    index = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    counter = 0
    components: list[list[int]] = []
    scc_of = [-1] * n
    succ = [[dst for _, dst in graph.int_out[i]] for i in range(n)]
    for root in range(n):
        if index[root] != -1:
            continue
        work: list[tuple[int, Iterator[int]]] = [(root, iter(succ[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for s2 in it:
                if index[s2] == -1:
                    index[s2] = lowlink[s2] = counter
                    counter += 1
                    stack.append(s2)
                    on_stack[s2] = True
                    work.append((s2, iter(succ[s2])))
                    advanced = True
                    break
                if on_stack[s2]:
                    lowlink[node] = min(lowlink[node], index[s2])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                comp_idx = len(components)
                components.append(component)
                for member in component:
                    scc_of[member] = comp_idx
    return components, scc_of


def _semantic_target(
    parts: Sequence[Specification],
    *,
    meter: "BudgetMeter | None" = None,
    context: str | None = None,
) -> SemanticTarget:
    parts = tuple(parts)
    graph = explore_product(parts, meter=meter)
    live = _live_flags(graph)
    deadlocks = tuple(
        i
        for i in range(graph.n)
        if not graph.ext_out[i] and not graph.int_out[i]
    )
    components, scc_of = _internal_sccs(graph)
    livelock_sccs: list[tuple[int, ...]] = []
    for comp_idx, members in enumerate(components):
        member_set = set(members)
        has_cycle = len(members) > 1 or any(
            dst == members[0] for _, dst in graph.int_out[members[0]]
        )
        if not has_cycle:
            continue
        if any(graph.ext_out[i] for i in members):
            continue
        leaves = any(
            dst not in member_set
            for i in members
            for _, dst in graph.int_out[i]
        )
        if not leaves:
            livelock_sccs.append(tuple(sorted(members)))
    livelock_sccs.sort(key=lambda scc: scc[0])
    livelocked = {i for scc in livelock_sccs for i in scc}
    dead = set(deadlocks)
    doomed = tuple(
        i
        for i in range(graph.n)
        if not live[i] and i not in dead and i not in livelocked
    )
    return SemanticTarget(
        parts=parts,
        graph=graph,
        context=context or "||".join(p.name for p in parts),
        local_reachable=tuple(frozenset(reachable_states(p)) for p in parts),
        future_events=tuple(_future_events(p) for p in parts),
        deadlock_idxs=deadlocks,
        livelock_sccs=tuple(livelock_sccs),
        doomed_idxs=doomed,
    )


# ----------------------------------------------------------------------
# rendering helpers (stable — golden files pin these formats)
# ----------------------------------------------------------------------
def _fmt_vec(vec: tuple[State, ...]) -> str:
    return "⟨" + ", ".join(repr(s) for s in vec) + "⟩"


def _fmt_trace(trace: tuple[str, ...]) -> str:
    return "⟨" + ".".join(trace) + "⟩"


# ----------------------------------------------------------------------
# SEM201–SEM206 — product-graph rules
# ----------------------------------------------------------------------
@rule(
    "SEM201",
    "dead-state-in-context",
    scope="semantic",
    severity=SEVERITY_WARNING,
    summary="a locally reachable state never occurs in any reachable "
    "product state of the composed system",
    hint="the state is dead code in this composition: remove it, or fix "
    "the partner specs that block every path to it",
)
def _check_dead_in_context(r: Rule, target: SemanticTarget) -> Iterator[Diagnostic]:
    for p, part in enumerate(target.parts):
        dead = target.local_reachable[p] - target.graph.used[p]
        for s in sorted(dead, key=_state_sort_key):
            yield r.diagnostic(
                f"state {s!r} of part {part.name!r} is locally reachable "
                f"but never occurs in any reachable state of "
                f"{target.context}",
                spec_name=part.name,
                state=s,
            )


@rule(
    "SEM202",
    "non-executable-transition",
    scope="semantic",
    severity=SEVERITY_WARNING,
    summary="a transition never fires on any reachable product path",
    hint="the transition is non-executable in this composition (Pachl's "
    "dead transition): remove it or fix the synchronization that "
    "blocks it",
)
def _check_non_executable(r: Rule, target: SemanticTarget) -> Iterator[Diagnostic]:
    for p, part in enumerate(target.parts):
        used = target.graph.used[p]
        fired_ext = target.graph.fired_ext[p]
        fired_int = target.graph.fired_int[p]
        ext = sorted(
            (t for t in part.external if t[0] in used and t not in fired_ext),
            key=lambda t: (_state_sort_key(t[0]), t[1], _state_sort_key(t[2])),
        )
        for s, e, t in ext:
            yield r.diagnostic(
                f"transition {s!r} --{e}--> {t!r} of part {part.name!r} "
                f"can never fire in {target.context}",
                spec_name=part.name,
                state=s,
                event=e,
                witness={"source": s, "event": e, "target": t},
            )
        lam = sorted(
            (t for t in part.internal if t[0] in used and t not in fired_int),
            key=lambda t: (_state_sort_key(t[0]), _state_sort_key(t[1])),
        )
        for s, t in lam:
            yield r.diagnostic(
                f"internal transition {s!r} --λ--> {t!r} of part "
                f"{part.name!r} can never fire in {target.context}",
                spec_name=part.name,
                state=s,
                witness={"source": s, "event": None, "target": t},
            )


@rule(
    "SEM203",
    "unspecified-reception",
    scope="semantic",
    severity=SEVERITY_ERROR,
    summary="a shared receive event is offered but a co-owning part can "
    "never accept it from its current state",
    hint="add the missing reception to the refusing machine (every state "
    "in its forward cone lacks the event), or show the offer is "
    "unreachable",
)
def _check_unspecified_reception(
    r: Rule, target: SemanticTarget
) -> Iterator[Diagnostic]:
    if len(target.parts) < 2:
        return
    parts = target.parts
    graph = target.graph
    owners: dict[Event, list[int]] = {}
    for p, part in enumerate(parts):
        for e in part.alphabet:
            owners.setdefault(e, []).append(p)
    shared_recv = sorted(
        e for e, ps in owners.items() if len(ps) >= 2 and is_receive(e)
    )
    if not shared_recv:
        return
    seen: set[tuple[int, State, Event]] = set()
    for idx in range(graph.n):
        vec = graph.vectors[idx]
        for e in shared_recv:
            owner_ids = owners[e]
            offerers = [p for p in owner_ids if e in parts[p].enabled(vec[p])]
            if not offerers:
                continue
            for p in owner_ids:
                if e in target.future_events[p][vec[p]]:
                    continue
                key = (p, vec[p], e)
                if key in seen:
                    continue
                seen.add(key)
                offerer = parts[offerers[0]]
                yield r.diagnostic(
                    f"reception {e!r} is unspecified: part "
                    f"{offerer.name!r} offers it in product state "
                    f"{_fmt_vec(vec)} (after {_fmt_trace(graph.trace_to(idx))}) "
                    f"but part {parts[p].name!r} can never accept it from "
                    f"state {vec[p]!r}",
                    spec_name=parts[p].name,
                    state=vec[p],
                    event=e,
                    witness={
                        **graph.witness(idx),
                        "event": e,
                        "offering_part": offerer.name,
                        "refusing_part": parts[p].name,
                        "refusing_state": vec[p],
                    },
                )


@rule(
    "SEM204",
    "reachable-deadlock",
    scope="semantic",
    severity=SEVERITY_ERROR,
    summary="a reachable product state has no outgoing transitions at all",
    hint="follow the witness trace; the composed machines block each "
    "other — add the missing synchronization or reception",
)
def _check_reachable_deadlock(
    r: Rule, target: SemanticTarget
) -> Iterator[Diagnostic]:
    graph = target.graph
    for idx in target.deadlock_idxs:
        vec = graph.vectors[idx]
        yield r.diagnostic(
            f"deadlock: product state {_fmt_vec(vec)} is reachable after "
            f"{_fmt_trace(graph.trace_to(idx))} and has no outgoing "
            f"transitions",
            spec_name=target.context,
            state=vec,
            witness=graph.witness(idx),
        )


@rule(
    "SEM205",
    "livelock-scc",
    scope="semantic",
    severity=SEVERITY_ERROR,
    summary="an internal cycle with no exit offers no external event "
    "(useless exchange forever)",
    hint="the paper's Section 5 livelock: the parts exchange hidden "
    "messages forever while the environment sees nothing — break the "
    "cycle or expose an external event on it",
)
def _check_livelock_scc(r: Rule, target: SemanticTarget) -> Iterator[Diagnostic]:
    graph = target.graph
    for scc in target.livelock_sccs:
        entry = scc[0]
        yield r.diagnostic(
            f"livelock: {len(scc)} product state(s) reachable after "
            f"{_fmt_trace(graph.trace_to(entry))} cycle internally forever "
            f"with no exit and no external event (entry "
            f"{_fmt_vec(graph.vectors[entry])})",
            spec_name=target.context,
            state=graph.vectors[entry],
            witness={
                "scc": [graph.vectors[i] for i in scc],
                "trace": list(graph.trace_to(entry)),
            },
        )


@rule(
    "SEM206",
    "sink-unreachable-acceptance",
    scope="semantic",
    severity=SEVERITY_WARNING,
    summary="every internal path from a reachable product state falls "
    "silent: no sink set with a non-empty acceptance menu is reachable",
    hint="the state is doomed (its τ* is empty): every continuation ends "
    "in the deadlock or livelock reported alongside",
)
def _check_sink_unreachable(
    r: Rule, target: SemanticTarget
) -> Iterator[Diagnostic]:
    graph = target.graph
    for idx in target.doomed_idxs:
        vec = graph.vectors[idx]
        yield r.diagnostic(
            f"no acceptance reachable from product state {_fmt_vec(vec)} "
            f"(after {_fmt_trace(graph.trace_to(idx))}): τ* is empty, every "
            f"internal path ends in deadlock or livelock",
            spec_name=target.context,
            state=vec,
            witness=graph.witness(idx),
        )


# ----------------------------------------------------------------------
# SEM207 — converter coverage on B ‖ C
# ----------------------------------------------------------------------
@rule(
    "SEM207",
    "converter-coverage-gap",
    scope="semantic-converter",
    severity=SEVERITY_INFO,
    summary="a state or transition of the derived converter is never "
    "exercised on the reachable B ‖ C",
    hint="expected for a maximal converter (the paper's \"superfluous "
    "portions\"); prune with prune_unreachable()/coverage tooling if a "
    "minimal converter is wanted",
)
def _check_converter_coverage(
    r: Rule, target: ConverterTarget
) -> Iterator[Diagnostic]:
    graph = target.graph
    conv = target.converter
    engaged = graph.used[1]
    for s in sorted(conv.states - engaged, key=_state_sort_key):
        yield r.diagnostic(
            f"converter state {s!r} is never engaged by any reachable "
            f"state of {target.component.name}||{conv.name}",
            spec_name=conv.name,
            state=s,
        )
    fired = graph.fired_ext[1]
    unexercised = sorted(
        (t for t in conv.external if t[0] in engaged and t not in fired),
        key=lambda t: (_state_sort_key(t[0]), t[1], _state_sort_key(t[2])),
    )
    for s, e, t in unexercised:
        yield r.diagnostic(
            f"converter transition {s!r} --{e}--> {t!r} is never exercised "
            f"on the reachable {target.component.name}||{conv.name}",
            spec_name=conv.name,
            state=s,
            event=e,
            witness={"source": s, "event": e, "target": t},
        )


# ----------------------------------------------------------------------
# SEM208 — quotient maximality on a solved problem
# ----------------------------------------------------------------------
def _sorted_pairs(pairs: Iterable[tuple[State, State]]) -> list[tuple[State, State]]:
    return sorted(
        pairs, key=lambda ab: (_state_sort_key(ab[0]), _state_sort_key(ab[1]))
    )


@rule(
    "SEM208",
    "quotient-maximality",
    scope="semantic-result",
    severity=SEVERITY_INFO,
    summary="diagnostics on how far the solved converter is from the "
    "safety-maximal quotient (progress-removed and vacuous states)",
    hint="informational: Theorem 2 removes exactly the non-progressing "
    "states, so these gaps are inherent to the problem, not a solver "
    "defect",
)
def _check_quotient_maximality(
    r: Rule, target: ResultTarget
) -> Iterator[Diagnostic]:
    result = target.result
    if not result.exists or result.converter is None or result.c0 is None:
        return
    surviving = set(result.f.values())
    removed_in_round: dict[Any, int] = {}
    if result.progress is not None:
        for rnd in result.progress.rounds:
            for bad in rnd.bad_states:
                removed_in_round.setdefault(bad, rnd.round_index)
    for state in sorted(result.c0_f, key=_state_sort_key):
        pair_set = result.c0_f[state]
        if pair_set in surviving:
            continue
        pairs = _sorted_pairs(pair_set)
        round_idx = removed_in_round.get(pair_set)
        if round_idx is not None:
            reason = f"removed as non-progressing in progress round {round_idx}"
        else:
            reason = "unreachable after progress pruning"
        yield r.diagnostic(
            f"safety-quotient state {state!r} ({len(pairs)} pair(s)) is "
            f"not in the final converter: {reason}",
            spec_name=result.converter.name,
            state=state,
            witness={"pairs": pairs, "reason": reason},
        )
    for state in sorted(result.f, key=_state_sort_key):
        if not result.f[state]:
            yield r.diagnostic(
                f"converter state {state!r} is vacuous: its quotient pair "
                f"set is empty (no component trace matches any converter "
                f"trace reaching it)",
                spec_name=result.converter.name,
                state=state,
                witness={"pairs": [], "reason": "vacuous"},
            )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def _meter(
    budget: "Budget | None", interrupt: "InterruptController | None"
) -> "BudgetMeter | None":
    from ..quotient.budget import make_meter

    return make_meter(budget, "semantic", interrupt)


def _attach_partial(
    exc: BudgetExceeded | InterruptRequested, reports: Sequence[LintReport]
) -> None:
    partial = LintReport.collect((), target="(semantic, partial)")
    for report in reports:
        partial = partial.merged_with(report)
    exc.partial_report = partial  # type: ignore[attr-defined]


def _finish_report(report: LintReport) -> LintReport:
    obs.add("lint.sem.analyses", 1)
    obs.add("lint.sem.findings", len(report.diagnostics))
    return report


def analyze_spec(
    spec: Specification,
    *,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Semantic analysis of one machine's own reachable graph.

    For a single part the composition-only rules (``SEM201``–``SEM203``)
    are vacuous by construction; the pass certifies deadlock (SEM204),
    livelock (SEM205) and doomed-state (SEM206) freedom.
    """
    return analyze_composition(
        [spec], budget=budget, interrupt=interrupt, select=select, ignore=ignore
    )


def analyze_composition(
    parts: Sequence[Specification],
    *,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Semantic analysis of the product of *parts* (``SEM201``–``SEM206``)."""
    rules = select_rules(scopes=["semantic"], select=select, ignore=ignore)
    parts = tuple(parts)
    context = "||".join(p.name for p in parts)
    with obs.span("analyze_semantic", target=context):
        try:
            target = _semantic_target(parts, meter=_meter(budget, interrupt))
        except (BudgetExceeded, InterruptRequested) as exc:
            _attach_partial(exc, [])
            raise
        found: list[Diagnostic] = []
        for r in rules:
            found.extend(r.check(target))
    return _finish_report(
        LintReport.collect(
            found, target=context, rules_run=(r.code for r in rules)
        )
    )


def analyze_converter(
    component: Specification,
    converter: Specification,
    *,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Coverage analysis of a derived converter on ``B ‖ C`` (``SEM207``)."""
    rules = select_rules(
        scopes=["semantic-converter"], select=select, ignore=ignore
    )
    context = f"{component.name}||{converter.name}"
    with obs.span("analyze_converter", target=context):
        try:
            graph = explore_product(
                (component, converter), meter=_meter(budget, interrupt)
            )
        except (BudgetExceeded, InterruptRequested) as exc:
            _attach_partial(exc, [])
            raise
        target = ConverterTarget(component, converter, graph)
        found: list[Diagnostic] = []
        for r in rules:
            found.extend(r.check(target))
    return _finish_report(
        LintReport.collect(
            found, target=context, rules_run=(r.code for r in rules)
        )
    )


def analyze_result(
    result: "QuotientResult",
    *,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Post-solve analysis: ``SEM207`` coverage plus ``SEM208`` maximality."""
    rules = select_rules(scopes=["semantic-result"], select=select, ignore=ignore)
    target_name = (
        result.converter.name
        if result.converter is not None
        else f"{result.problem.service.name}/{result.problem.component.name}"
    )
    found: list[Diagnostic] = []
    for r in rules:
        found.extend(r.check(ResultTarget(result)))
    report = LintReport.collect(
        found, target=target_name, rules_run=(r.code for r in rules)
    )
    if result.exists and result.converter is not None:
        try:
            coverage = analyze_converter(
                result.problem.component,
                result.converter,
                budget=budget,
                interrupt=interrupt,
                select=select,
                ignore=ignore,
            )
        except (BudgetExceeded, InterruptRequested) as exc:
            _attach_partial(exc, [report])
            raise
        report = report.merged_with(coverage)
    return _finish_report(report)


def analyze_problem(
    service: Specification,
    component: Specification,
    int_events: Iterable[str] | None = None,
    *,
    solve: bool = True,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
    select: Selection = None,
    ignore: Selection = None,
) -> LintReport:
    """Full semantic certification of a quotient problem.

    Analyzes the service and the component composite as standalone
    machines, then (with ``solve``, the default) derives the converter and
    adds the ``SEM207``/``SEM208`` coverage and maximality diagnostics.
    A problem with no converter simply contributes no coverage findings —
    use ``repro-converter diagnose`` for the *why*.
    """
    reports: list[LintReport] = []
    try:
        reports.append(
            analyze_spec(
                service,
                budget=budget,
                interrupt=interrupt,
                select=select,
                ignore=ignore,
            )
        )
        reports.append(
            analyze_spec(
                component,
                budget=budget,
                interrupt=interrupt,
                select=select,
                ignore=ignore,
            )
        )
        if solve:
            from ..quotient.solve import solve_quotient

            result = solve_quotient(
                service,
                component,
                int_events=int_events,
                budget=budget,
                interrupt=interrupt,
            )
            reports.append(
                analyze_result(
                    result,
                    budget=budget,
                    interrupt=interrupt,
                    select=select,
                    ignore=ignore,
                )
            )
    except (BudgetExceeded, InterruptRequested) as exc:
        if not hasattr(exc, "partial_report"):
            _attach_partial(exc, reports)
        else:
            _attach_partial(
                exc, reports + [exc.partial_report]  # type: ignore[attr-defined]
            )
        raise
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merged_with(report)
    return merged


def deep_preflight(
    service: Specification,
    component: Specification,
    *,
    budget: "Budget | None" = None,
    interrupt: "InterruptController | None" = None,
) -> LintReport:
    """The ``solve_quotient(deep_preflight=True)`` hook.

    Semantically certifies both inputs *before* the quotient runs: a
    component composite with a reachable deadlock or livelock (``SEM204``
    / ``SEM205``) is a malformed world model, and catching it here gives
    a witness trace instead of an empty converter downstream.  Errors
    abort the solve via :meth:`LintReport.raise_if_errors`.
    """
    report = analyze_spec(service, budget=budget, interrupt=interrupt)
    return report.merged_with(
        analyze_spec(component, budget=budget, interrupt=interrupt)
    )
