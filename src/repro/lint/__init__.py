"""Static analysis of specifications and quotient problems.

``repro.lint`` runs a registry of structural rules over
:class:`~repro.spec.spec.Specification` objects, compositions, and
``(A, B, Int, Ext)`` quotient instances, emitting structured
:class:`Diagnostic` findings (stable code, severity, witness, fix hint)
*without* executing the quotient.  It backs three surfaces:

* the ``repro-converter lint`` CLI subcommand (text / JSON / SARIF);
* the opt-out preflights inside :func:`repro.quotient.solve_quotient`
  and :func:`repro.compose.compose_many`, which reject malformed inputs
  with a :class:`~repro.errors.LintError` before product construction;
* this public API — :func:`run_rules` and the scoped helpers.

See ``docs/lint.md`` for the rule catalogue.
"""

from .diagnostics import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    LintReport,
    format_diagnostics,
)
from .engine import (
    lint_checkpoint,
    lint_composition,
    lint_problem,
    lint_spec,
    preflight_composition,
    preflight_quotient,
    run_rules,
    select_rules,
)
from .rules import (
    ROLE_COMPONENT,
    ROLE_SERVICE,
    CheckpointTarget,
    CompositionTarget,
    ProblemTarget,
    Rule,
    SpecTarget,
    all_rules,
    get_rule,
)
from .product import ProductGraph, explore_product
from .semantic import (
    SEMANTIC_SCOPES,
    ConverterTarget,
    ResultTarget,
    SemanticTarget,
    analyze_composition,
    analyze_converter,
    analyze_problem,
    analyze_result,
    analyze_spec,
    deep_preflight,
)

__all__ = [
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "CheckpointTarget",
    "CompositionTarget",
    "ConverterTarget",
    "Diagnostic",
    "LintReport",
    "ProblemTarget",
    "ProductGraph",
    "ROLE_COMPONENT",
    "ROLE_SERVICE",
    "ResultTarget",
    "Rule",
    "SEMANTIC_SCOPES",
    "SemanticTarget",
    "SpecTarget",
    "all_rules",
    "analyze_composition",
    "analyze_converter",
    "analyze_problem",
    "analyze_result",
    "analyze_spec",
    "deep_preflight",
    "explore_product",
    "format_diagnostics",
    "get_rule",
    "lint_checkpoint",
    "lint_composition",
    "lint_problem",
    "lint_spec",
    "preflight_composition",
    "preflight_quotient",
    "run_rules",
    "select_rules",
]
