"""Command-line interface: ``repro-converter``.

Subcommands
-----------
``show``
    Parse a spec file (DSL or JSON) and render its machines.
``lint``
    Statically analyze specs, compositions, or a quotient problem without
    solving; emit structured diagnostics (text, JSON, or SARIF).  With
    ``--semantic`` the reachability-based ``SEM2xx`` pass runs too.
``analyze``
    The semantic analyzer on its own: build the reachable product graph
    of specs, a composition, a quotient problem, or a built-in scenario
    (optionally under a fault model) and report the ``SEM2xx`` findings.
``compose``
    Compose named specs from a file and render/export the composite.
``check``
    Check one spec satisfies another (safety + progress).
``solve``
    Run the quotient algorithm: derive a converter or prove none exists.
``resilience``
    Sweep a grid of fault models over a conversion system and report,
    per cell, whether the derived converter survives (see
    ``docs/robustness.md``).
``history``
    Inspect the run ledger written by ``--ledger``: list/show recorded
    runs, diff the deterministic work counters of two runs of the same
    problem (non-zero exit on regression), and garbage-collect old
    records.  Server-executed jobs appear with ``--kind served``.
``serve``
    Run the derivation server: solve/resilience/analyze jobs over
    HTTP/JSON with content-addressed dedup, crash recovery, and graceful
    degradation (see ``docs/serving.md``).
``submit``
    Submit a job to a running server (optionally ``--wait`` for the
    result; a cached fingerprint returns instantly).
``status``
    Show a server job's record, progress tail, and result.
``demo``
    Run the paper's Section 5 scenarios end to end.

Files ending in ``.json`` are read with the JSON codec; anything else is
parsed as the spec DSL (see :mod:`repro.io.dsl`).

Exit codes are uniform across subcommands (see ``docs/CLI.md``): 0
success, 1 negative verdict, 2 usage/input error, 3 budget exceeded
without a checkpoint, 4 interrupted or budget exceeded *with* a
checkpoint written (resume with ``--resume``), 5 backpressure (the
server's admission queue is full; honor ``retry_after_s``).  ``lint`` and ``analyze``
exit 0 when no finding reaches the ``--fail-on`` threshold (warnings-only
runs pass by default) and 2 when one does.
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import sys
import time
from typing import Callable

from . import obs
from .analysis.explain import explain_converter
from .errors import BudgetExceeded, InterruptRequested, ReproError
from .io.dot import to_dot
from .io.dsl import parse_dsl
from .io.json_codec import load as load_json
from .io.render import render_spec
from .quotient.solve import solve_quotient
from .satisfy.verify import satisfies
from .spec.spec import Specification


def _load_specs(path: str) -> dict[str, Specification]:
    try:
        if path.endswith(".json"):
            spec = load_json(path)
            return {spec.name: spec}
        with open(path, "r", encoding="utf-8") as fh:
            return parse_dsl(fh.read())
    except OSError as exc:
        raise ReproError(f"cannot read {path!r}: {exc}") from exc


def _pick(specs: dict[str, Specification], name: str) -> Specification:
    if name not in specs:
        raise ReproError(
            f"no spec named {name!r} in file (available: {sorted(specs)})"
        )
    return specs[name]


# ----------------------------------------------------------------------
# observability flags (shared by solve / compose / check / simulate /
# diagnose; see docs/observability.md)
# ----------------------------------------------------------------------
def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--profile", action="store_true",
        help="after the command, print the span tree (per-phase wall "
        "times) and all counters/gauges",
    )
    group.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace_event file loadable in "
        "chrome://tracing or https://ui.perfetto.dev",
    )
    group.add_argument(
        "--metrics", choices=["text", "json"], default=None,
        help="after the command, print the metrics snapshot (text: "
        "counters/gauges; json: full snapshot including spans)",
    )


def _wants_observation(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "profile", False)
        or getattr(args, "trace", None)
        or getattr(args, "metrics", None)
    )


def _run_observed(args: argparse.Namespace, body: Callable[[], int]) -> int:
    """Run *body* under a recording collector when any obs flag is set,
    then export as requested (exports go after the command's own output).

    Exports also run when *body* raises — a budget trip or interrupt
    propagating out of ``lint``/``analyze`` must not lose the partial
    trace/metrics (those runs are precisely the ones worth inspecting).
    """
    if not _wants_observation(args):
        return body()
    collector = obs.MetricsCollector()
    try:
        with obs.use_collector(collector):
            return body()
    finally:
        in_flight = sys.exc_info()[0] is not None
        snapshot = collector.snapshot()
        if args.trace:
            try:
                obs.write_chrome_trace(snapshot, args.trace)
            except OSError as exc:
                if in_flight:
                    # don't mask the partial-exit exception with an
                    # export failure; the trace is best-effort here
                    print(
                        f"warning: cannot write trace {args.trace!r}: {exc}",
                        file=sys.stderr,
                    )
                else:
                    raise ReproError(
                        f"cannot write trace {args.trace!r}: {exc}"
                    ) from exc
            else:
                print(f"trace written to {args.trace}", file=sys.stderr)
        if args.profile:
            print()
            print(snapshot.render_text())
        if args.metrics == "text":
            print()
            print(snapshot.render_metrics_text())
        elif args.metrics == "json":
            print(snapshot.to_json())


# ----------------------------------------------------------------------
# budget flags (shared by solve / resilience; see docs/robustness.md)
# ----------------------------------------------------------------------
def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("budget")
    group.add_argument(
        "--budget-pairs", type=int, default=None, metavar="N",
        help="abort any single phase after exploring N pairs "
        "(exit code 3, with partial statistics)",
    )
    group.add_argument(
        "--budget-states", type=int, default=None, metavar="N",
        help="abort any single phase after materializing N states",
    )
    group.add_argument(
        "--budget-time", type=float, default=None, metavar="SECONDS",
        help="abort any single phase after SECONDS of wall time "
        "(checked periodically, so slightly approximate)",
    )


def _budget_from_args(args: argparse.Namespace):
    from .quotient.budget import Budget

    if (
        args.budget_pairs is None
        and args.budget_states is None
        and args.budget_time is None
    ):
        return None
    return Budget(
        max_pairs=args.budget_pairs,
        max_states=args.budget_states,
        wall_time_s=args.budget_time,
    )


# ----------------------------------------------------------------------
# parallel flags (solve / resilience / analyze; see docs/performance.md)
# ----------------------------------------------------------------------
def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("parallelism")
    group.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the kernel explorations across N worker processes "
        "(default: REPRO_WORKERS, else 1 = sequential); the merge is "
        "deterministic, so output is byte-identical at any N",
    )
    group.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="inject a seeded fault schedule into this run's own runtime "
        "(key=value comma list, e.g. 'seed=7,p_kill=0.05'; default: "
        "REPRO_CHAOS); the supervised runtime must keep the output "
        "byte-identical — see docs/robustness.md",
    )


def _chaos_scope(args: argparse.Namespace):
    """A scoped chaos plan from ``--chaos`` (``REPRO_CHAOS`` otherwise)."""
    spec = getattr(args, "chaos", None)
    if spec is None:
        return contextlib.nullcontext()
    from . import chaos

    return chaos.use_chaos(chaos.ChaosPlan.from_spec(spec))


def _workers_scope(args: argparse.Namespace):
    """An ambient worker-count scope for the command body.

    ``--workers`` wins; without it the ambient default (``REPRO_WORKERS``)
    applies, so returning a null scope keeps env-driven runs working.
    """
    workers = getattr(args, "workers", None)
    if workers is None:
        return contextlib.nullcontext()
    if workers < 1:
        raise ReproError(f"--workers must be >= 1, got {workers}")
    from .quotient.parallel import use_workers

    return use_workers(workers)


# ----------------------------------------------------------------------
# checkpoint / resume / deadline flags (solve, resilience; docs/CLI.md)
# ----------------------------------------------------------------------
def _add_persist_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("checkpointing")
    group.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="write a durable, resumable snapshot here when the run is "
        "interrupted or runs out of budget (exit code 4); resilience "
        "sweeps also snapshot after every completed cell",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="load --checkpoint FILE and continue exactly where the "
        "interrupted run stopped (a checkpoint for a different problem "
        "is rejected by lint rule QUOT104)",
    )
    group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="stop cooperatively after SECONDS of wall time with a "
        "consistent checkpoint, unlike the hard per-phase --budget-time",
    )


def _interrupt_from_args(args: argparse.Namespace):
    """A controller when graceful interruption is wanted, else ``None``.

    A checkpoint path alone is enough: with a controller installed,
    Ctrl-C stops at a charge boundary and the snapshot is written.
    """
    if args.deadline is None and args.checkpoint is None:
        return None
    from .persist import InterruptController

    return InterruptController(deadline_s=args.deadline)


def _sigint_scope(interrupt):
    if interrupt is None:
        return contextlib.nullcontext()
    # SIGTERM gets the same cooperative treatment as Ctrl-C: an
    # orchestrator draining this run still leaves a consistent checkpoint
    return interrupt.install_signals()


def _resume_checkpoint_from_args(args: argparse.Namespace):
    if not getattr(args, "resume", False):
        return None
    if args.checkpoint is None:
        raise ReproError("--resume requires --checkpoint FILE")
    from .persist import load_checkpoint

    return load_checkpoint(args.checkpoint)


def _emit_partial(
    args: argparse.Namespace, exc: BudgetExceeded | InterruptRequested
) -> int:
    """Report an interrupted/over-budget run and write its checkpoint.

    The output always carries the explicit ``guarantees: partial``
    marker.  Exit code is 4 when a checkpoint was written (or the stop
    was a cooperative interrupt), 3 for a plain budget trip.
    """
    from .persist import anytime_summary, render_anytime_text, save_checkpoint

    ckpt = getattr(exc, "checkpoint", None)
    written = None
    if args.checkpoint is not None and ckpt is not None:
        save_checkpoint(args.checkpoint, ckpt)
        written = args.checkpoint
    if args.format == "json":
        payload = exc.to_json_dict()
        payload["guarantees"] = "partial"
        if ckpt is not None:
            payload["anytime"] = anytime_summary(ckpt)
        payload["checkpoint"] = written
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        label = (
            "interrupted"
            if isinstance(exc, InterruptRequested)
            else "budget exceeded"
        )
        print(f"{label}: {exc}")
        if ckpt is not None:
            print(render_anytime_text(anytime_summary(ckpt)))
        else:
            print("guarantees: partial")
        if written is not None:
            print(f"checkpoint written to {written} (continue with --resume)")
    return 4 if written is not None or isinstance(exc, InterruptRequested) else 3


# ----------------------------------------------------------------------
# flight recorder: live progress streaming + the run ledger (solve /
# resilience / analyze; see docs/observability.md)
# ----------------------------------------------------------------------
def _add_recorder_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("flight recorder")
    group.add_argument(
        "--progress", action="store_true",
        help="stream a one-line live status to stderr while phases run "
        "(heartbeats from the budget-charge boundaries; solver output is "
        "byte-identical with or without this flag)",
    )
    group.add_argument(
        "--progress-json", metavar="FILE", default=None,
        help="stream heartbeat events as JSON lines to FILE ('-' for "
        "stderr); schema in docs/observability.md",
    )
    group.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="append one run record (problem fingerprint, deterministic "
        "work counters, verdict, outcome) to this ledger file; inspect "
        "and regression-diff with the 'history' subcommand",
    )


@contextlib.contextmanager
def _progress_scope(args: argparse.Namespace, budget):
    """Install a :class:`~repro.obs.ProgressReporter` when requested.

    Yields the reporter (or ``None`` when no progress flag is set).  The
    terminal ``done`` event is emitted on scope exit: ``complete`` on a
    clean exit, ``partial-budget`` / ``partial-interrupt`` when the
    corresponding exception propagates out.  ``finish()`` is idempotent,
    so bodies may also report a specific outcome on early-return paths
    (e.g. a baseline budget trip handled inside the scope).
    """
    wants_human = getattr(args, "progress", False)
    json_path = getattr(args, "progress_json", None)
    if not wants_human and json_path is None:
        yield None
        return
    with contextlib.ExitStack() as stack:
        if json_path is None:
            jsonl = None
        elif json_path == "-":
            jsonl = sys.stderr
        else:
            try:
                jsonl = stack.enter_context(
                    open(json_path, "w", encoding="utf-8")
                )
            except OSError as exc:
                raise ReproError(
                    f"cannot open progress stream {json_path!r}: {exc}"
                ) from exc
        reporter = obs.ProgressReporter(
            jsonl=jsonl,
            human=sys.stderr if wants_human else None,
            limits=budget.to_json_dict() if budget is not None else None,
        )
        with obs.use_reporter(reporter):
            try:
                yield reporter
            except BudgetExceeded:
                reporter.finish("partial-budget")
                raise
            except InterruptRequested:
                reporter.finish("partial-interrupt")
                raise
        reporter.finish("complete")


def _ledger_append(
    args: argparse.Namespace,
    *,
    kind: str,
    fingerprint: str,
    label: str = "",
    outcome: str = "complete",
    verdict: str | None = None,
    counters: dict | None = None,
    wall_time_s: float | None = None,
    artifacts: dict | None = None,
) -> None:
    """Record one run in the ``--ledger`` file (no-op when unset).

    *counters* is the run's nested deterministic counter structure; it is
    flattened into the diffable ``work`` map (wall times dropped) and also
    stored verbatim as ``phases``.
    """
    path = getattr(args, "ledger", None)
    if path is None:
        return
    from .obs.ledger import append_run, flatten_work

    record = append_run(
        path,
        kind=kind,
        fingerprint=fingerprint,
        label=label,
        outcome=outcome,
        verdict=verdict,
        work=flatten_work(counters or {}),
        phases=counters or {},
        wall_time_s=(
            round(wall_time_s, 6) if wall_time_s is not None else None
        ),
        artifacts={k: v for k, v in (artifacts or {}).items() if v},
    )
    print(f"ledger: recorded run {record.run_id} in {path}", file=sys.stderr)


def _artifact_refs(
    args: argparse.Namespace, *, checkpoint: str | None = None
) -> dict:
    """Paths of durable artifacts this run produced, for the ledger."""
    refs: dict[str, str] = {}
    if checkpoint:
        refs["checkpoint"] = checkpoint
    if getattr(args, "trace", None):
        refs["trace"] = args.trace
    return refs


def _partial_outcome(exc: BudgetExceeded | InterruptRequested) -> str:
    return (
        "partial-interrupt"
        if isinstance(exc, InterruptRequested)
        else "partial-budget"
    )


def _analysis_fingerprint(specs) -> str:
    """The identity of an ``analyze`` run: its input specs, order-free."""
    from .persist import spec_fingerprint

    digest = hashlib.sha256()
    for fp in sorted(spec_fingerprint(s) for s in specs):
        digest.update(fp.encode("ascii"))
    return digest.hexdigest()


def _cmd_show(args: argparse.Namespace) -> int:
    specs = _load_specs(args.file)
    names = args.names or sorted(specs)
    for name in names:
        spec = _pick(specs, name)
        if args.dot:
            print(to_dot(spec))
        else:
            print(render_spec(spec))
            print()
    return 0


def _fail_on(args: argparse.Namespace) -> str:
    if getattr(args, "strict", False):
        return "warning"
    return args.fail_on


def _print_report(args: argparse.Namespace, report) -> None:
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(report.to_sarif())
    else:
        print(report.describe())


def _emit_partial_report(
    args: argparse.Namespace, exc: BudgetExceeded | InterruptRequested
) -> int:
    """Render the diagnostics collected before a budget/interrupt trip.

    The partial report (``exc.partial_report``) carries every finding of
    the sub-analyses that completed; the output is explicitly marked
    partial.  Exit code 3 (budget) / 4 (interrupt), as elsewhere.
    """
    from .lint import LintReport

    partial = getattr(exc, "partial_report", None)
    if partial is None:
        partial = LintReport.collect((), target="(semantic, partial)")
    if args.format == "json":
        payload = partial.to_json_dict()
        payload["guarantees"] = "partial"
        payload["interrupted"] = exc.to_json_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(partial.to_sarif())
        print(f"guarantees: partial ({exc})", file=sys.stderr)
    else:
        print(partial.describe())
        label = (
            "interrupted"
            if isinstance(exc, InterruptRequested)
            else "budget exceeded"
        )
        print(f"{label}: {exc}")
        print("guarantees: partial")
    return 4 if isinstance(exc, InterruptRequested) else 3


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import (
        LintReport,
        analyze_composition,
        analyze_problem,
        analyze_spec,
        lint_composition,
        lint_problem,
        lint_spec,
    )

    specs = _load_specs(args.file)
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    budget = _budget_from_args(args)

    if (args.service is None) != (args.component is None):
        raise ReproError("--service and --component must be given together")

    def body() -> int:
        if args.service is not None and args.component is not None:
            int_events = args.int_events.split(",") if args.int_events else None
            service = _pick(specs, args.service)
            component = _pick(specs, args.component)
            report = lint_problem(
                service, component, int_events, select=select, ignore=ignore
            )
            if args.semantic:
                report = report.merged_with(
                    analyze_problem(
                        service,
                        component,
                        int_events,
                        solve=False,
                        budget=budget,
                        select=select,
                        ignore=ignore,
                    )
                )
        else:
            names = args.names or sorted(specs)
            parts = [_pick(specs, name) for name in names]
            if args.compose:
                report = lint_composition(
                    parts, include_parts=True, select=select, ignore=ignore
                )
                if args.semantic:
                    report = report.merged_with(
                        analyze_composition(
                            parts, budget=budget, select=select, ignore=ignore
                        )
                    )
            else:
                merged: LintReport | None = None
                for part in parts:
                    partial = lint_spec(
                        part, role=args.role, select=select, ignore=ignore
                    )
                    if args.semantic:
                        partial = partial.merged_with(
                            analyze_spec(
                                part, budget=budget, select=select, ignore=ignore
                            )
                        )
                    merged = (
                        partial if merged is None else merged.merged_with(partial)
                    )
                assert merged is not None
                report = merged

        _print_report(args, report)
        return report.exit_code(fail_on=_fail_on(args))

    try:
        return _run_observed(args, body)
    except (BudgetExceeded, InterruptRequested) as exc:
        return _emit_partial_report(args, exc)


def _report_counters(report) -> dict:
    """Deterministic findings counters for the ledger (analyze runs)."""
    by_code: dict[str, int] = {}
    for diag in report:
        by_code[diag.code] = by_code.get(diag.code, 0) + 1
    return {
        "findings": {
            "total": len(report),
            "error": len(report.errors),
            "warning": len(report.warnings),
            "info": len(report.infos),
        },
        "codes": dict(sorted(by_code.items())),
    }


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .lint import (
        LintReport,
        analyze_composition,
        analyze_problem,
        analyze_spec,
    )

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    budget = _budget_from_args(args)

    if args.scenario is None and args.file is None:
        raise ReproError("give a spec FILE or --scenario NAME")
    if (args.service is None) != (args.component is None):
        raise ReproError("--service and --component must be given together")

    started = time.monotonic()
    # the ledger identity of the run, filled in once the inputs are
    # resolved inside body() so the partial-exit path can still use it
    run_key = {"fingerprint": "", "label": ""}

    def body() -> int:
        with _workers_scope(args), _progress_scope(args, budget):
            if args.scenario is not None:
                scenario = _analyze_scenarios()[args.scenario]()
                if args.ledger:
                    run_key["fingerprint"] = _analysis_fingerprint(
                        [scenario.service, *scenario.components]
                    )
                    run_key["label"] = f"scenario:{args.scenario}"
                report = analyze_composition(
                    scenario.components,
                    budget=budget,
                    select=select,
                    ignore=ignore,
                )
                if not args.no_solve:
                    report = report.merged_with(
                        analyze_problem(
                            scenario.service,
                            scenario.composite,
                            scenario.interface.int_events,
                            budget=budget,
                            select=select,
                            ignore=ignore,
                        )
                    )
            else:
                specs = _apply_analyze_faults(args, _load_specs(args.file))
                if args.service is not None:
                    int_events = (
                        args.int_events.split(",") if args.int_events else None
                    )
                    service = _pick(specs, args.service)
                    component = _pick(specs, args.component)
                    if args.ledger:
                        run_key["fingerprint"] = _analysis_fingerprint(
                            [service, component]
                        )
                        run_key["label"] = f"{service.name}/{component.name}"
                    report = analyze_problem(
                        service,
                        component,
                        int_events,
                        solve=not args.no_solve,
                        budget=budget,
                        select=select,
                        ignore=ignore,
                    )
                else:
                    names = args.names or sorted(specs)
                    parts = [_pick(specs, name) for name in names]
                    if args.ledger:
                        run_key["fingerprint"] = _analysis_fingerprint(parts)
                        run_key["label"] = "+".join(p.name for p in parts)
                    if args.compose and len(parts) >= 2:
                        report = analyze_composition(
                            parts, budget=budget, select=select, ignore=ignore
                        )
                    else:
                        merged: LintReport | None = None
                        for part in parts:
                            partial = analyze_spec(
                                part,
                                budget=budget,
                                select=select,
                                ignore=ignore,
                            )
                            merged = (
                                partial
                                if merged is None
                                else merged.merged_with(partial)
                            )
                        assert merged is not None
                        report = merged

        _print_report(args, report)
        code = report.exit_code(fail_on=_fail_on(args))
        _ledger_append(
            args,
            kind="analyze",
            fingerprint=run_key["fingerprint"],
            label=run_key["label"],
            verdict="clean" if code == 0 else "findings",
            counters=_report_counters(report),
            wall_time_s=time.monotonic() - started,
            artifacts=_artifact_refs(args),
        )
        return code

    try:
        return _run_observed(args, body)
    except (BudgetExceeded, InterruptRequested) as exc:
        code = _emit_partial_report(args, exc)
        _ledger_append(
            args,
            kind="analyze",
            fingerprint=run_key["fingerprint"],
            label=run_key["label"],
            outcome=_partial_outcome(exc),
            counters={exc.phase: exc.partial},
            wall_time_s=time.monotonic() - started,
            artifacts=_artifact_refs(args),
        )
        return code


def _analyze_scenarios():
    """The built-in conversion scenarios ``analyze --scenario`` accepts."""
    from .protocols import (
        ab_end_to_end,
        colocated_scenario,
        handshake_scenario,
        lossy_handshake_scenario,
        ns_end_to_end,
        symmetric_scenario,
        weakened_symmetric_scenario,
    )

    return {
        "symmetric": symmetric_scenario,
        "colocated": colocated_scenario,
        "weakened": weakened_symmetric_scenario,
        "ns-e2e": ns_end_to_end,
        "ab-e2e": ab_end_to_end,
        "handshake": handshake_scenario,
        "lossy-handshake": lossy_handshake_scenario,
    }


def _apply_analyze_faults(
    args: argparse.Namespace, specs: dict[str, Specification]
) -> dict[str, Specification]:
    """Apply ``--fault`` transformers to the targeted spec before analysis."""
    if not getattr(args, "fault", None):
        return specs
    from .faults import apply_faults, fault_model

    models = [
        fault_model(kind, args.fault_severity)
        for kind in args.fault.split(",")
    ]
    target = args.fault_target
    if target is None:
        candidates = args.names or sorted(specs)
        if len(candidates) != 1:
            raise ReproError(
                "--fault needs --fault-target NAME when more than one "
                "spec is analyzed"
            )
        target = candidates[0]
    faulted = apply_faults(_pick(specs, target), models)
    return {**specs, target: faulted.renamed(_pick(specs, target).name)}


def _cmd_compose(args: argparse.Namespace) -> int:
    from .compose.nary import compose_many

    specs = _load_specs(args.file)
    parts = [_pick(specs, name) for name in args.names]

    def body() -> int:
        composite = compose_many(parts)
        if args.dot:
            print(to_dot(composite))
        else:
            print(render_spec(composite, max_rows=args.max_rows))
        return 0

    return _run_observed(args, body)


def _cmd_check(args: argparse.Namespace) -> int:
    specs = _load_specs(args.file)
    impl = _pick(specs, args.impl)
    service = _pick(specs, args.service)

    def body() -> int:
        report = satisfies(impl, service)
        print(report.describe())
        return 0 if report.holds else 1

    return _run_observed(args, body)


def _cmd_solve(args: argparse.Namespace) -> int:
    specs = _load_specs(args.file)
    service = _pick(specs, args.service)
    component = _pick(specs, args.component)
    label = f"{service.name}/{component.name}"

    def body() -> int:
        resume_from = _resume_checkpoint_from_args(args)
        interrupt = _interrupt_from_args(args)
        budget = _budget_from_args(args)
        started = time.monotonic()
        try:
            with _sigint_scope(interrupt), _workers_scope(args), \
                    _chaos_scope(args), _progress_scope(args, budget):
                result = solve_quotient(
                    service,
                    component,
                    preflight=not args.no_preflight,
                    deep_preflight=args.deep_preflight,
                    budget=budget,
                    interrupt=interrupt,
                    resume_from=resume_from,
                )
        except (BudgetExceeded, InterruptRequested) as exc:
            code = _emit_partial(args, exc)
            ckpt = getattr(exc, "checkpoint", None)
            written = (
                args.checkpoint
                if args.checkpoint is not None and ckpt is not None
                else None
            )
            _ledger_append(
                args,
                kind="solve",
                fingerprint=ckpt.fingerprint if ckpt is not None else "",
                label=label,
                outcome=_partial_outcome(exc),
                counters={exc.phase: exc.partial},
                wall_time_s=time.monotonic() - started,
                artifacts=_artifact_refs(args, checkpoint=written),
            )
            return code
        if args.format == "json":
            # phase counters are always included, so an empty result still
            # says which phase emptied the machine and what survived safety
            print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(explain_converter(result, show_pairs=args.pairs))
            if result.exists and args.dot:
                assert result.converter is not None
                print()
                print(to_dot(result.converter))
        from .persist import problem_fingerprint

        counters = result.phase_counters()
        if result.degradations:
            # surface a degraded (but exact) execution in the run record
            counters["degradations"] = [
                d.to_json_dict() for d in result.degradations
            ]
        _ledger_append(
            args,
            kind="solve",
            fingerprint=problem_fingerprint(result.problem),
            label=label,
            verdict="converter" if result.exists else "no-converter",
            counters=counters,
            wall_time_s=time.monotonic() - started,
            artifacts=_artifact_refs(args),
        )
        return 0 if result.exists else 1

    return _run_observed(args, body)


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .quotient.diagnose import diagnose_nonexistence

    specs = _load_specs(args.file)
    service = _pick(specs, args.service)
    component = _pick(specs, args.component)

    # diagnose always records, so the JSON report can carry result.stats
    # (the "why is this slow" half of the shared diagnostics surface)
    collector = obs.MetricsCollector()
    with obs.use_collector(collector):
        result = solve_quotient(service, component)
    if result.exists:
        print("a converter exists — nothing to diagnose:")
        print(result.summary())
        return 0
    try:
        diagnosis = diagnose_nonexistence(result, max_frontier=args.frontier)
    except ValueError as exc:
        print(f"no converter exists; {exc}")
        return 1
    if args.format == "json":
        target = f"{service.name}/{component.name}"
        payload = diagnosis.to_report(target=target).to_json_dict()
        payload["phases"] = result.phase_counters()
        if result.stats is not None:
            payload["stats"] = result.stats.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(diagnosis.describe())
    return 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .simulate import FairRandomPolicy, ServiceMonitor, Simulator, render_msc

    specs = _load_specs(args.file)
    components = [_pick(specs, name) for name in args.components]
    service = _pick(specs, args.service) if args.service else None

    def body() -> int:
        simulator = Simulator(components, FairRandomPolicy(args.seed))
        monitor = ServiceMonitor(service) if service is not None else None
        with obs.span("simulate.run", max_steps=args.steps) as sp:
            for _ in range(args.steps):
                move = simulator.step()
                if move is None:
                    break
                if (
                    monitor is not None
                    and move.kind == "external"
                    and move.event in service.alphabet
                ):
                    # only service-interface events are the monitored
                    # behaviour; other externals are open converter-side ports
                    monitor.observe(move.event)
            sp.set(
                steps=len(simulator.log.steps),
                deadlocked=simulator.log.deadlocked,
            )

        log = simulator.log
        if args.msc:
            print(render_msc(log, components, max_steps=args.msc))
            print()
        print(
            f"ran {len(log.steps)} steps (seed {args.seed})"
            + ("; DEADLOCKED" if log.deadlocked else "")
        )
        if log.deadlocked:
            vector = ", ".join(
                f"{c.name}={s!r}"
                for c, s in zip(components, simulator.states)
            )
            print(f"  deadlock at step {len(log.steps)} in state ({vector})")
        for label, count in log.histogram().items():
            print(f"  {label:16s} ×{count}")
        if monitor is not None:
            print(monitor.verdict().describe())
            return 0 if monitor.verdict().ok else 1
        return 0

    return _run_observed(args, body)


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .compose.nary import compose_many
    from .faults import FAULT_KINDS, default_grid, evaluate_resilience

    if args.scenario is not None:
        if args.file is not None:
            raise ReproError(
                "--scenario and FILE are mutually exclusive"
            )
        from .protocols.configs import (
            colocated_scenario,
            weakened_symmetric_scenario,
        )

        scenario = {
            "colocated": colocated_scenario,
            "weakened": weakened_symmetric_scenario,
        }[args.scenario]()
        service = scenario.service
        components = list(scenario.components)
        int_events = scenario.interface.int_events
    else:
        if args.file is None or args.service is None or not args.components:
            raise ReproError(
                "resilience needs FILE SERVICE COMPONENT [COMPONENT ...] "
                "or --scenario"
            )
        specs = _load_specs(args.file)
        service = _pick(specs, args.service)
        components = [_pick(specs, name) for name in args.components]
        int_events = args.int_events.split(",") if args.int_events else None

    target: int | str | None = args.target
    if target is not None:
        try:
            target = int(target)
        except ValueError:
            pass

    try:
        severities = tuple(
            int(s) for s in args.severities.split(",") if s.strip()
        )
    except ValueError as exc:
        raise ReproError(f"bad --severities: {exc}") from exc
    if not severities:
        raise ReproError("--severities must name at least one level")
    grid = default_grid(severities, timeout=args.timeout)
    if args.faults:
        kinds = [k for k in args.faults.split(",") if k]
        unknown = sorted(set(kinds) - set(FAULT_KINDS))
        if unknown:
            raise ReproError(
                f"unknown fault kinds {unknown} "
                f"(available: {list(FAULT_KINDS)})"
            )
        grid = [m for m in grid if m.kind in set(kinds)]

    budget = _budget_from_args(args)
    label = f"{service.name}/{'+'.join(c.name for c in components)}"

    def body() -> int:
        from .faults import sweep_fingerprint

        if args.resume and args.checkpoint is None:
            raise ReproError("--resume requires --checkpoint FILE")
        started = time.monotonic()
        with _workers_scope(args), _progress_scope(args, budget) as reporter:
            try:
                # the baseline derivation is not checkpointed here (a
                # sweep's unit of resume is the cell), so its budget trips
                # stay exit 3
                composite = compose_many(components, budget=budget)
                result = solve_quotient(
                    service, composite, int_events=int_events, budget=budget
                )
            except BudgetExceeded as exc:
                if reporter is not None:
                    reporter.finish("partial-budget")
                if args.format == "json":
                    print(
                        json.dumps(exc.to_json_dict(), indent=2, sort_keys=True)
                    )
                else:
                    print(f"budget exceeded deriving baseline converter: {exc}")
                _ledger_append(
                    args,
                    kind="resilience",
                    fingerprint="",
                    label=label,
                    outcome="partial-budget",
                    counters={f"baseline.{exc.phase}": exc.partial},
                    wall_time_s=time.monotonic() - started,
                    artifacts=_artifact_refs(args),
                )
                return 3
            if not result.exists:
                print(
                    "no baseline converter exists for this system; "
                    "nothing to evaluate"
                )
                return 1
            assert result.converter is not None
            fingerprint = sweep_fingerprint(
                service,
                components,
                result.converter,
                grid=grid,
                target=target,
                timeout=args.timeout,
            )
            interrupt = _interrupt_from_args(args)
            try:
                with _sigint_scope(interrupt):
                    matrix = evaluate_resilience(
                        service,
                        components,
                        result.converter,
                        int_events=int_events,
                        target=target,
                        grid=grid,
                        rederive=not args.no_rederive,
                        budget=budget,
                        timeout=args.timeout,
                        interrupt=interrupt,
                        checkpoint=args.checkpoint,
                        resume=args.resume,
                    )
            except InterruptRequested as exc:
                if reporter is not None:
                    reporter.finish("partial-interrupt")
                code = _emit_partial(args, exc)
                ckpt = getattr(exc, "checkpoint", None)
                written = (
                    args.checkpoint
                    if args.checkpoint is not None and ckpt is not None
                    else None
                )
                _ledger_append(
                    args,
                    kind="resilience",
                    fingerprint=fingerprint,
                    label=label,
                    outcome="partial-interrupt",
                    counters={"sweep": exc.partial},
                    wall_time_s=time.monotonic() - started,
                    artifacts=_artifact_refs(args, checkpoint=written),
                )
                return code
        if args.format == "json":
            print(json.dumps(matrix.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(matrix.render_text())
        from .faults.resilience import VERDICTS

        counts = matrix.counts()
        worst = next((v for v in reversed(VERDICTS) if counts.get(v)), None)
        _ledger_append(
            args,
            kind="resilience",
            fingerprint=fingerprint,
            label=label,
            verdict=worst,
            counters={
                "cells": {"total": len(matrix.cells), **counts},
            },
            wall_time_s=time.monotonic() - started,
            artifacts=_artifact_refs(args, checkpoint=args.checkpoint),
        )
        return 0

    return _run_observed(args, body)


def _cmd_demo(args: argparse.Namespace) -> int:
    from .protocols.configs import (
        colocated_scenario,
        symmetric_scenario,
        weakened_symmetric_scenario,
    )

    scenarios = {
        "symmetric": symmetric_scenario,
        "colocated": colocated_scenario,
        "weakened": weakened_symmetric_scenario,
    }
    scenario = scenarios[args.scenario]()
    print(scenario.describe())
    print()
    result = solve_quotient(
        scenario.service,
        scenario.composite,
        int_events=scenario.interface.int_events,
    )
    print(explain_converter(result))
    return 0 if result.exists else 1


def _history_diff_pair(ledger, args: argparse.Namespace):
    """Resolve the (base, new) records for ``history diff``.

    Explicit run ids win; otherwise the two most recent runs of the
    newest run's (fingerprint, kind) group are compared — the common
    "did my last run regress?" question needs no arguments at all.
    """
    from .errors import PersistError

    if (args.base is None) != (args.new is None):
        raise ReproError("history diff takes zero or two run ids")
    if args.base is not None:
        return ledger.get(args.base), ledger.get(args.new)
    records = ledger.read()
    if args.fingerprint:
        records = tuple(
            r for r in records if r.fingerprint.startswith(args.fingerprint)
        )
    if not records:
        raise PersistError(
            f"ledger {ledger.path!r} has no matching runs to diff"
        )
    newest = records[-1]
    group = [
        r
        for r in records
        if r.fingerprint == newest.fingerprint and r.kind == newest.kind
    ]
    if len(group) < 2:
        raise PersistError(
            f"ledger {ledger.path!r} has only {len(group)} run(s) of "
            f"{newest.kind} {newest.fingerprint[:12]}...; need two to diff "
            "(pass explicit run ids?)"
        )
    return group[-2], group[-1]


def _cmd_history(args: argparse.Namespace) -> int:
    from .obs.ledger import Ledger, diff_records, render_history_list

    ledger = Ledger(args.ledger)
    if args.history_cmd == "list":
        records = ledger.read()
        if args.kind:
            records = tuple(r for r in records if r.kind == args.kind)
        if args.fingerprint:
            records = tuple(
                r
                for r in records
                if r.fingerprint.startswith(args.fingerprint)
            )
        if args.format == "json":
            print(
                json.dumps(
                    [r.to_json_dict() for r in records],
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(render_history_list(records))
        return 0
    if args.history_cmd == "show":
        record = ledger.get(args.run)
        print(json.dumps(record.to_json_dict(), indent=2, sort_keys=True))
        return 0
    if args.history_cmd == "diff":
        if args.threshold < 0:
            raise ReproError(
                f"--threshold must be >= 0, got {args.threshold!r}"
            )
        base, new = _history_diff_pair(ledger, args)
        diff = diff_records(base, new, threshold=args.threshold)
        if args.format == "json":
            print(json.dumps(diff.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(diff.render_text())
        return 1 if diff.regressed else 0
    assert args.history_cmd == "gc"
    if args.keep < 1:
        raise ReproError(f"--keep must be >= 1, got {args.keep!r}")
    removed = ledger.gc(keep=args.keep)
    print(
        f"removed {removed} record(s) from {args.ledger} "
        f"(kept the newest {args.keep} per problem)"
    )
    return 0



# ----------------------------------------------------------------------
# serve / submit / status (the derivation server; docs/serving.md)
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import DerivationServer

    server = DerivationServer(
        args.store,
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        workers=args.workers,
        respawn_budget=args.respawn_budget,
    )

    def ready(s: DerivationServer) -> None:
        # one machine-readable line so scripts (and the CI smoke) can
        # pick up the bound port without racing the log
        print(
            json.dumps(
                {"serving": {"host": s.host, "port": s.port,
                             "store": args.store}},
                sort_keys=True,
            ),
            flush=True,
        )

    asyncio.run(server.run(ready=ready))
    print(json.dumps({"drained": True}, sort_keys=True), flush=True)
    return 0


def _submit_payload(args: argparse.Namespace) -> dict:
    from .io.json_codec import spec_to_dict

    specs = _load_specs(args.file)
    if args.kind == "solve":
        if not (args.service and args.component):
            raise ReproError("kind=solve needs --service and --component")
        payload: dict = {
            "service": spec_to_dict(_pick(specs, args.service)),
            "component": spec_to_dict(_pick(specs, args.component)),
        }
        if args.int_events:
            payload["int_events"] = sorted(
                e for e in args.int_events.split(",") if e
            )
        return payload
    if args.kind == "analyze":
        names = (
            [n for n in args.specs.split(",") if n]
            if args.specs
            else sorted(specs)
        )
        return {"specs": [spec_to_dict(_pick(specs, n)) for n in names]}
    assert args.kind == "resilience"
    if not (args.service and args.components and args.converter):
        raise ReproError(
            "kind=resilience needs --service, --components, and --converter"
        )
    return {
        "service": spec_to_dict(_pick(specs, args.service)),
        "components": [
            spec_to_dict(_pick(specs, n))
            for n in args.components.split(",")
            if n
        ],
        "converter": spec_to_dict(_pick(specs, args.converter)),
        "target": args.target,
        "severities": [int(x) for x in args.severities.split(",") if x],
        "timeout": args.timeout,
    }


#: Job verdicts that mean "positive answer" (CLI exit 0); everything
#: else on a completed job exits 1, mirroring the batch subcommands.
_POSITIVE_VERDICTS = ("converter", "resilient", "clean")


def _served_exit(record: dict) -> int:
    state = record.get("state")
    outcome = record.get("outcome")
    if state == "done":
        return 0 if record.get("verdict") in _POSITIVE_VERDICTS else 1
    if outcome == "partial-budget":
        return 3
    if outcome == "partial-interrupt" or state == "interrupted":
        return 4
    return 2


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient

    doc: dict = {
        "kind": args.kind,
        "payload": _submit_payload(args),
        "priority": args.priority,
        "label": args.label,
    }
    if args.deadline is not None:
        doc["deadline_s"] = args.deadline
    budget = _budget_from_args(args)
    if budget is not None:
        doc["budget"] = budget.to_json_dict()
    client = ServeClient(args.host, args.port)
    status, response = client.submit(doc)
    if status == 429:
        hint = response.get("retry_after_s")
        if args.format == "json":
            print(json.dumps(response, indent=2, sort_keys=True))
        else:
            print(f"queue full; retry in {hint}s", file=sys.stderr)
        return 5
    job = response["job"]
    if not args.wait:
        if args.format == "json":
            print(json.dumps({"job": job}, indent=2, sort_keys=True))
        else:
            print(
                f"job {job['job_id']} {job['state']} "
                f"(cache {job['cache']}, fingerprint "
                f"{job['fingerprint'][:12]}...)"
            )
        return 0
    final = client.wait(job["job_id"], timeout_s=args.timeout_s)
    record = final["job"]
    if args.format == "json":
        if record["state"] == "done" and "result" in final:
            # the canonical body: byte-identical to the batch command's
            # --format json output for the same inputs
            print(json.dumps(final["result"], indent=2, sort_keys=True))
        else:
            print(json.dumps({"job": record}, indent=2, sort_keys=True))
    else:
        line = (
            f"job {record['job_id']} {record['state']}"
            f" outcome={record['outcome']} verdict={record['verdict']}"
            f" attempts={record['attempts']}"
        )
        if record.get("worker_deaths"):
            line += f" worker_deaths={record['worker_deaths']}"
        if record.get("error"):
            line += f" error={record['error']!r}"
        print(line)
    return _served_exit(record)


def _cmd_status(args: argparse.Namespace) -> int:
    from .serve import ServeClient

    client = ServeClient(args.host, args.port)
    if args.wait:
        doc = client.wait(args.job_id, timeout_s=args.timeout_s)
    else:
        doc = client.job(args.job_id)
    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    record = doc["job"]
    print(
        f"job {record['job_id']} [{record['kind']}] {record['state']}"
        f" cache={record.get('cache')} outcome={record.get('outcome')}"
        f" verdict={record.get('verdict')}"
    )
    for event in doc.get("progress", [])[-args.tail:]:
        print(f"  {json.dumps(event, sort_keys=True)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-converter",
        description=(
            "Protocol converter synthesis by quotient "
            "(Calvert & Lam, SIGCOMM 1989)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_show = sub.add_parser("show", help="render specs from a file")
    p_show.add_argument("file")
    p_show.add_argument("names", nargs="*", help="spec names (default: all)")
    p_show.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_show.set_defaults(func=_cmd_show)

    p_lint = sub.add_parser(
        "lint",
        help="statically analyze specs without solving",
        description=(
            "Run the rule-based static analyzer (repro.lint) over specs, a "
            "composition, or a full quotient problem, without executing the "
            "quotient.  Rule codes are stable (SPEC0xx structure, NORM0xx "
            "normal form, COMP0xx/CONV0xx composition and channel "
            "conventions, CHAN1xx fault-model conventions, "
            "SPEC1xx/QUOT0xx quotient preflight); with --semantic the "
            "reachability-based SEM2xx rules run too.  See docs/lint.md "
            "for the catalogue.  Exit code 0 means no finding reached the "
            "--fail-on threshold (warnings-only runs pass by default), 2 "
            "means threshold findings or an unloadable input, 3 means a "
            "--budget-* limit interrupted the semantic pass (partial "
            "report printed)."
        ),
    )
    p_lint.add_argument("file")
    p_lint.add_argument(
        "names", nargs="*", help="spec names to lint (default: all in file)"
    )
    p_lint.add_argument(
        "--service", default=None,
        help="lint the quotient problem SERVICE / COMPONENT",
    )
    p_lint.add_argument(
        "--component", default=None,
        help="component (composite B) of the quotient problem",
    )
    p_lint.add_argument(
        "--int", dest="int_events", default=None, metavar="EV,EV,...",
        help="declared Int events to validate (with --service/--component)",
    )
    p_lint.add_argument(
        "--compose", action="store_true",
        help="treat the named specs as parts of one || composition",
    )
    p_lint.add_argument(
        "--role", choices=["component", "service"], default="component",
        help="role of the linted specs (service adds NORM0xx rules)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default text)",
    )
    p_lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes/prefixes to run (e.g. SPEC,NORM001)",
    )
    p_lint.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes/prefixes to skip",
    )
    p_lint.add_argument(
        "--fail-on", choices=["error", "warning"], default="error",
        help="lowest severity that makes the exit code 2 (default error: "
        "warnings-only runs exit 0)",
    )
    p_lint.add_argument(
        "--strict", action="store_true",
        help="legacy alias for --fail-on warning",
    )
    p_lint.add_argument(
        "--semantic", action="store_true",
        help="additionally run the reachability-based SEM2xx semantic "
        "pass (explores the product graph; honors --budget-*)",
    )
    _add_budget_arguments(p_lint)
    _add_obs_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_an = sub.add_parser(
        "analyze",
        help="semantic analysis on the reachable product graph",
        description=(
            "Run the semantic analyzer (repro.lint.semantic): build the "
            "reachable product graph with the compiled kernel and report "
            "the SEM2xx findings — dead states (SEM201), non-executable "
            "transitions (SEM202), unspecified receptions (SEM203), "
            "reachable deadlocks (SEM204), livelock SCCs (SEM205), "
            "sink-unreachable acceptance (SEM206) and, when a quotient "
            "problem is solved, converter-coverage gaps (SEM207) and "
            "quotient-maximality diagnostics (SEM208).  Witnesses are "
            "shortest product-state traces.  Exit code 0 means no finding "
            "reached the --fail-on threshold, 2 means threshold findings "
            "or an unloadable input, 3 means a --budget-* limit "
            "interrupted the exploration (partial report printed)."
        ),
    )
    p_an.add_argument(
        "file", nargs="?", default=None,
        help="spec file (omit when using --scenario)",
    )
    p_an.add_argument(
        "names", nargs="*",
        help="spec names to analyze (default: all in file)",
    )
    p_an.add_argument(
        "--scenario",
        choices=[
            "symmetric", "colocated", "weakened", "ns-e2e", "ab-e2e",
            "handshake", "lossy-handshake",
        ],
        default=None,
        help="analyze a built-in conversion scenario instead of FILE "
        "specs (components composition plus the solved quotient problem)",
    )
    p_an.add_argument(
        "--service", default=None,
        help="analyze the quotient problem SERVICE / COMPONENT "
        "(solves it and checks the derived converter unless --no-solve)",
    )
    p_an.add_argument(
        "--component", default=None,
        help="component (composite B) of the quotient problem",
    )
    p_an.add_argument(
        "--int", dest="int_events", default=None, metavar="EV,EV,...",
        help="declared Int events (with --service/--component)",
    )
    p_an.add_argument(
        "--compose", action="store_true",
        help="analyze the named specs as one || composition (enables "
        "the cross-part rules SEM203/SEM204/SEM205)",
    )
    p_an.add_argument(
        "--no-solve", action="store_true",
        help="skip solving the quotient (drops SEM207/SEM208)",
    )
    p_an.add_argument(
        "--fault", default=None, metavar="KIND,KIND,...",
        help="apply these fault models (loss, duplication, reorder, "
        "corruption, crash_restart) to one spec before analyzing",
    )
    p_an.add_argument(
        "--fault-severity", type=int, default=1, metavar="N",
        help="severity level of the applied fault models (default 1)",
    )
    p_an.add_argument(
        "--fault-target", default=None, metavar="NAME",
        help="spec the fault models transform (default: the only spec "
        "analyzed; required when several are)",
    )
    p_an.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="output format (default text)",
    )
    p_an.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes/prefixes to run (e.g. SEM204)",
    )
    p_an.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes/prefixes to skip",
    )
    p_an.add_argument(
        "--fail-on", choices=["error", "warning"], default="error",
        help="lowest severity that makes the exit code 2 (default error)",
    )
    _add_budget_arguments(p_an)
    _add_parallel_arguments(p_an)
    _add_obs_arguments(p_an)
    _add_recorder_arguments(p_an)
    p_an.set_defaults(func=_cmd_analyze)

    p_compose = sub.add_parser("compose", help="compose specs with ||")
    p_compose.add_argument("file")
    p_compose.add_argument("names", nargs="+")
    p_compose.add_argument("--dot", action="store_true")
    p_compose.add_argument("--max-rows", type=int, default=None)
    _add_obs_arguments(p_compose)
    p_compose.set_defaults(func=_cmd_compose)

    p_check = sub.add_parser("check", help="check impl satisfies service")
    p_check.add_argument("file")
    p_check.add_argument("impl")
    p_check.add_argument("service")
    _add_obs_arguments(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_solve = sub.add_parser("solve", help="derive a converter (quotient)")
    p_solve.add_argument("file")
    p_solve.add_argument("service")
    p_solve.add_argument("component")
    p_solve.add_argument("--pairs", action="store_true",
                         help="show pair-set state annotations")
    p_solve.add_argument("--dot", action="store_true")
    p_solve.add_argument(
        "--no-preflight", action="store_true",
        help="skip the static-analysis preflight (repro.lint) before solving",
    )
    p_solve.add_argument(
        "--deep-preflight", action="store_true",
        help="additionally run the semantic SEM2xx analyzer on the inputs "
        "and refuse to solve if it finds errors (deadlocks, livelocks, "
        "unspecified receptions)",
    )
    p_solve.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format; json always includes the phase-level counters "
        "(which phase emptied the machine, pairs surviving safety)",
    )
    _add_budget_arguments(p_solve)
    _add_parallel_arguments(p_solve)
    _add_persist_arguments(p_solve)
    _add_obs_arguments(p_solve)
    _add_recorder_arguments(p_solve)
    p_solve.set_defaults(func=_cmd_solve)

    p_res = sub.add_parser(
        "resilience",
        help="evaluate converter resilience under a grid of fault models",
        description=(
            "Derive the baseline converter for a conversion system, then "
            "sweep severity-parameterized fault models (loss, duplication, "
            "reorder, corruption, crash_restart) over one component — by "
            "default the channel — and report per cell whether the fixed "
            "converter still satisfies the service, and if not whether a "
            "converter can be re-derived for the faultier world.  See "
            "docs/robustness.md for the verdict taxonomy and JSON schema.  "
            "Exit code 0 on a completed matrix, 1 when no baseline "
            "converter exists, 3 when a budget interrupts the baseline "
            "derivation."
        ),
    )
    p_res.add_argument("file", nargs="?", default=None)
    p_res.add_argument("service", nargs="?", default=None)
    p_res.add_argument("components", nargs="*")
    p_res.add_argument(
        "--scenario", choices=["colocated", "weakened"], default=None,
        help="evaluate a built-in paper scenario instead of FILE specs",
    )
    p_res.add_argument(
        "--int", dest="int_events", default=None, metavar="EV,EV,...",
        help="declared Int events (converter-facing interface)",
    )
    p_res.add_argument(
        "--target", default=None, metavar="NAME|IDX",
        help="component to fault (default: the first channel-shaped one)",
    )
    p_res.add_argument(
        "--severities", default="1,2", metavar="N,N,...",
        help="severity levels to sweep (default 1,2)",
    )
    p_res.add_argument(
        "--faults", default=None, metavar="KIND,KIND,...",
        help="restrict the grid to these fault kinds (default: all)",
    )
    p_res.add_argument(
        "--timeout", default="timeout", metavar="EVENT",
        help="timeout event the loss model adds (default 'timeout')",
    )
    p_res.add_argument(
        "--no-rederive", action="store_true",
        help="skip re-derivation attempts for broken cells (faster; "
        "verdicts stay safety-broken/progress-broken)",
    )
    p_res.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default text)",
    )
    _add_budget_arguments(p_res)
    _add_parallel_arguments(p_res)
    _add_persist_arguments(p_res)
    _add_obs_arguments(p_res)
    _add_recorder_arguments(p_res)
    p_res.set_defaults(func=_cmd_resilience)

    p_hist = sub.add_parser(
        "history",
        help="inspect and regression-diff the run ledger",
        description=(
            "Read a ledger written with --ledger FILE: list recorded runs, "
            "show one run's full record, diff the deterministic work "
            "counters of two runs of the same problem (exit 1 when a "
            "counter regressed beyond --threshold), and garbage-collect "
            "old records.  Wall times are never diffed.  See "
            "docs/observability.md for the record schema."
        ),
    )
    hsub = p_hist.add_subparsers(dest="history_cmd", required=True)

    def _ledger_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger", metavar="FILE", required=True,
            help="the ledger file to read (written by --ledger on "
            "solve/resilience/analyze)",
        )

    h_list = hsub.add_parser("list", help="list recorded runs")
    _ledger_arg(h_list)
    h_list.add_argument(
        "--kind", default=None,
        choices=["solve", "resilience", "analyze", "bench", "served"],
        help="only runs of this kind",
    )
    h_list.add_argument(
        "--fingerprint", default=None, metavar="PREFIX",
        help="only runs whose problem fingerprint starts with PREFIX",
    )
    h_list.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    h_list.set_defaults(func=_cmd_history)

    h_show = hsub.add_parser("show", help="show one run record as JSON")
    _ledger_arg(h_show)
    h_show.add_argument("run", type=int, help="run id (see 'history list')")
    h_show.set_defaults(func=_cmd_history)

    h_diff = hsub.add_parser(
        "diff",
        help="compare work counters of two runs (exit 1 on regression)",
    )
    _ledger_arg(h_diff)
    h_diff.add_argument(
        "base", nargs="?", type=int, default=None,
        help="baseline run id (default: second-newest run of the newest "
        "run's problem)",
    )
    h_diff.add_argument(
        "new", nargs="?", type=int, default=None,
        help="run id to compare against the baseline (default: newest)",
    )
    h_diff.add_argument(
        "--threshold", type=float, default=0.0, metavar="FRACTION",
        help="relative increase a counter may show before it counts as a "
        "regression (0 = any increase regresses; 0.05 = 5%% headroom)",
    )
    h_diff.add_argument(
        "--fingerprint", default=None, metavar="PREFIX",
        help="with no run ids: pick the newest runs matching this "
        "fingerprint prefix",
    )
    h_diff.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    h_diff.set_defaults(func=_cmd_history)

    h_gc = hsub.add_parser(
        "gc", help="drop all but the newest records per problem"
    )
    _ledger_arg(h_gc)
    h_gc.add_argument(
        "--keep", type=int, default=5, metavar="N",
        help="records to keep per (fingerprint, kind) group (default 5)",
    )
    h_gc.set_defaults(func=_cmd_history)

    p_diag = sub.add_parser(
        "diagnose", help="explain why no converter exists"
    )
    p_diag.add_argument("file")
    p_diag.add_argument("service")
    p_diag.add_argument("component")
    p_diag.add_argument("--frontier", type=int, default=5,
                        help="max points-of-no-return to report")
    p_diag.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="render the diagnosis as text or structured JSON diagnostics "
        "(json includes the phase counters and the metrics snapshot)",
    )
    p_diag.set_defaults(func=_cmd_diagnose)

    p_sim = sub.add_parser(
        "simulate", help="execute components with a fair random policy"
    )
    p_sim.add_argument("file")
    p_sim.add_argument("components", nargs="+")
    p_sim.add_argument("--service", default=None,
                       help="monitor the run against this service spec")
    p_sim.add_argument("--steps", type=int, default=500)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--msc", type=int, default=None, metavar="N",
                       help="render the first N steps as a sequence chart")
    _add_obs_arguments(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_serve = sub.add_parser(
        "serve",
        help="run the derivation server (HTTP/JSON, content-addressed)",
        description=(
            "Serve solve/resilience/analyze jobs over HTTP/JSON with "
            "content-addressed deduplication, bounded admission, "
            "crash-recovering supervised execution, and graceful "
            "degradation.  Runs until SIGTERM/SIGINT (or POST "
            "/shutdown), then drains: running jobs checkpoint, queued "
            "jobs persist, and a restarted server resumes all of them.  "
            "REPRO_CHAOS fault schedules apply to the server's own "
            "execution (site serve.job) and its store I/O.  See "
            "docs/serving.md."
        ),
    )
    p_serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="durable state directory (results, jobs, checkpoints, "
        "index, ledger)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default 0: an ephemeral port, printed on "
        "the 'serving' line)",
    )
    p_serve.add_argument(
        "--capacity", type=int, default=16,
        help="admission queue bound; beyond it, submissions are shed "
        "(lower priority) or rejected with retry_after_s (default 16)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job executors (default 2)",
    )
    p_serve.add_argument(
        "--respawn-budget", type=int, default=16, metavar="N",
        help="worker deaths absorbed before degrading to sequential "
        "in-process draining (default 16)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a job to a running derivation server",
        description=(
            "Build a job from a spec file and submit it.  The server "
            "dedups by content fingerprint: a repeated submission "
            "returns the cached result (or joins the in-flight job) "
            "instead of recomputing.  With --wait and --format json, a "
            "completed solve prints the same bytes 'repro-converter "
            "solve --format json' would.  Exit codes: 0/1 verdict, 2 "
            "failed job, 3 budget, 4 interrupted, 5 backpressure."
        ),
    )
    p_submit.add_argument("file", help="spec file (DSL or JSON)")
    p_submit.add_argument(
        "--kind", choices=["solve", "resilience", "analyze"],
        default="solve",
    )
    p_submit.add_argument("--service", default=None, metavar="NAME")
    p_submit.add_argument("--component", default=None, metavar="NAME")
    p_submit.add_argument(
        "--components", default=None, metavar="NAME,NAME,...",
        help="resilience: the conversion system's components",
    )
    p_submit.add_argument("--converter", default=None, metavar="NAME")
    p_submit.add_argument(
        "--specs", default=None, metavar="NAME,NAME,...",
        help="analyze: specs to analyze (default: all in FILE)",
    )
    p_submit.add_argument(
        "--int", dest="int_events", default=None, metavar="EV,EV,...",
        help="solve: declared Int events",
    )
    p_submit.add_argument("--target", default=None, metavar="NAME|IDX")
    p_submit.add_argument("--severities", default="1,2", metavar="N,N,...")
    p_submit.add_argument("--timeout", default="timeout", metavar="EVENT")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, required=True)
    p_submit.add_argument(
        "--priority", type=int, default=0,
        help="admission priority (higher first; lowest shed under load)",
    )
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock deadline (cooperative; the job "
        "checkpoints when it trips)",
    )
    p_submit.add_argument("--label", default="")
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )
    p_submit.add_argument(
        "--timeout-s", type=float, default=120.0, metavar="SECONDS",
        help="ceiling for --wait (default 120)",
    )
    p_submit.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    _add_budget_arguments(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status",
        help="show a server job's record, progress, and result",
    )
    p_status.add_argument("job_id")
    p_status.add_argument("--host", default="127.0.0.1")
    p_status.add_argument("--port", type=int, required=True)
    p_status.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state",
    )
    p_status.add_argument(
        "--timeout-s", type=float, default=120.0, metavar="SECONDS",
    )
    p_status.add_argument(
        "--tail", type=int, default=10,
        help="progress events to show in text mode (default 10)",
    )
    p_status.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    p_status.set_defaults(func=_cmd_status)

    p_demo = sub.add_parser("demo", help="run a paper scenario")
    p_demo.add_argument(
        "scenario", choices=["symmetric", "colocated", "weakened"]
    )
    p_demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
