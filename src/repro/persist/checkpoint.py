"""Checkpoint value objects, fingerprints, and phase-state codecs.

A :class:`Checkpoint` is a schema-versioned, JSON-safe snapshot of a
partially executed pipeline run, tagged with a **content fingerprint** of
the inputs it was taken from.  The fingerprint — a SHA-256 over the
canonical (name-insensitive) serialization of the problem — is what makes
resume *safe*: feeding a checkpoint to a different problem is detected
before any state is replayed (lint rule ``QUOT104``).

Phase state is stored in the **reference representation**: pair sets are
encoded with the tagged state scheme of :mod:`repro.io.json_codec`, never
as kernel integer codes.  That makes checkpoints path-independent — a run
interrupted on the compiled-kernel path resumes correctly on the reference
path and vice versa, because the kernel's pair coding is a bijection that
is re-derived from the problem on load.

Two checkpoint kinds exist:

``"quotient"``
    A partially executed :func:`repro.quotient.solve_quotient`.  The
    payload carries the safety-phase loop state (explored pair-set states,
    the FIFO frontier, the in-progress state and its next event index,
    transitions, work counters) and — once safety completed — the list of
    finished progress rounds.  ``phase`` names how far the run got
    (``"safety"`` / ``"progress"`` / ``"verify"``).

``"resilience"``
    A partially executed :func:`repro.faults.evaluate_resilience` sweep.
    The payload carries the completed cells in grid order, so a resumed
    sweep recomputes none of them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import PersistError
from ..io.json_codec import _decode_state, _encode_state, spec_to_dict
from ..spec.spec import Specification

#: Version of the checkpoint *body* schema.  Bump on incompatible layout
#: changes; loaders reject any other version (resuming through a guessed
#: migration would silently break byte-identical resume).
SCHEMA_VERSION = 1

KIND_QUOTIENT = "quotient"
KIND_RESILIENCE = "resilience"
_KINDS = (KIND_QUOTIENT, KIND_RESILIENCE)

_CHECKPOINT_KEYS = frozenset(
    {"schema", "kind", "fingerprint", "phase", "payload"}
)


@dataclass(frozen=True)
class Checkpoint:
    """One durable snapshot of a partially executed run.

    ``payload`` is always JSON-safe (plain dicts/lists/strings/numbers);
    the phase-state codecs below translate between it and the live loop
    state.  Instances round-trip exactly through
    ``json.loads(json.dumps(ckpt.to_json_dict()))``.
    """

    kind: str
    fingerprint: str
    phase: str
    payload: dict = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_json_dict(self) -> dict:
        return {
            "schema": self.schema,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "phase": self.phase,
            "payload": self.payload,
        }

    @classmethod
    def from_json_dict(cls, doc: Any) -> "Checkpoint":
        """Decode strictly: unknown fields and schemas are rejected.

        A checkpoint written by a *future* version of this library may
        carry state this version cannot replay; silently ignoring the
        extra fields would resume from a half-understood snapshot, so any
        surprise raises :class:`~repro.errors.PersistError` instead.
        """
        if not isinstance(doc, dict):
            raise PersistError(
                f"checkpoint body must be an object, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - _CHECKPOINT_KEYS)
        if unknown:
            raise PersistError(
                f"checkpoint carries unknown field(s) {unknown} — written by "
                "a newer schema? refusing to resume from a half-understood "
                "snapshot"
            )
        missing = sorted(_CHECKPOINT_KEYS - set(doc))
        if missing:
            raise PersistError(f"checkpoint is missing field(s) {missing}")
        if doc["schema"] != SCHEMA_VERSION:
            raise PersistError(
                f"unsupported checkpoint schema {doc['schema']!r} "
                f"(this version reads schema {SCHEMA_VERSION})"
            )
        if doc["kind"] not in _KINDS:
            raise PersistError(f"unknown checkpoint kind {doc['kind']!r}")
        if not isinstance(doc["payload"], dict):
            raise PersistError("checkpoint payload must be an object")
        return cls(
            kind=doc["kind"],
            fingerprint=str(doc["fingerprint"]),
            phase=str(doc["phase"]),
            payload=doc["payload"],
            schema=int(doc["schema"]),
        )


# ----------------------------------------------------------------------
# content fingerprints
# ----------------------------------------------------------------------
def _sha256_of(doc: Any) -> str:
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_fingerprint(spec: Specification) -> str:
    """SHA-256 of the canonical serialization of *spec*, name excluded.

    ``Specification.__eq__`` deliberately ignores the display name, so the
    fingerprint must too: renaming a machine does not change the problem.
    """
    doc = spec_to_dict(spec)
    doc.pop("name", None)
    return _sha256_of(doc)


def problem_fingerprint(problem: Any) -> str:
    """The identity of a quotient problem ``(A, B, Int)``.

    *problem* is any object with ``service``, ``component``, and
    ``interface.int_events`` (a :class:`repro.quotient.QuotientProblem`
    or a :class:`repro.quotient.kernel.CompiledProblem`'s underlying
    problem).
    """
    return _sha256_of(
        {
            "kind": KIND_QUOTIENT,
            "service": spec_fingerprint(problem.service),
            "component": spec_fingerprint(problem.component),
            "int_events": sorted(problem.interface.int_events),
        }
    )


def resilience_fingerprint(
    service: Specification,
    components: Sequence[Specification],
    converter: Specification,
    grid: Iterable[Any],
    target_idx: int,
) -> str:
    """The identity of a resilience sweep: system, grid, and target."""
    return _sha256_of(
        {
            "kind": KIND_RESILIENCE,
            "service": spec_fingerprint(service),
            "components": [spec_fingerprint(c) for c in components],
            "converter": spec_fingerprint(converter),
            "grid": [m.label for m in grid],
            "target": target_idx,
        }
    )


# ----------------------------------------------------------------------
# quotient phase-state codecs
# ----------------------------------------------------------------------
def _encode_pairset(pairs: Any) -> Any:
    return _encode_state(frozenset(pairs))


def _decode_pairset(doc: Any) -> frozenset:
    decoded = _decode_state(doc)
    if not isinstance(decoded, frozenset):
        raise PersistError(f"expected an encoded pair set, got {decoded!r}")
    return decoded


def _encode_safety_state(state: dict | None) -> dict | None:
    """JSON-safe form of the safety-phase loop snapshot (or ``None``)."""
    if state is None:
        return None
    return {
        "start": _encode_pairset(state["start"]),
        "current": (
            _encode_pairset(state["current"])
            if state["current"] is not None
            else None
        ),
        "next_event": state["next_event"],
        "states": sorted(
            (_encode_pairset(s) for s in state["states"]),
            key=lambda d: json.dumps(d, sort_keys=True),
        ),
        "worklist": [_encode_pairset(s) for s in state["worklist"]],
        "transitions": [
            [_encode_pairset(s), e, _encode_pairset(s2)]
            for s, e, s2 in state["transitions"]
        ],
        "explored": state["explored"],
        "rejected": state["rejected"],
    }


def _decode_safety_state(doc: dict | None) -> dict | None:
    if doc is None:
        return None
    try:
        return {
            "start": _decode_pairset(doc["start"]),
            "current": (
                _decode_pairset(doc["current"])
                if doc["current"] is not None
                else None
            ),
            "next_event": int(doc["next_event"]),
            "states": {_decode_pairset(s) for s in doc["states"]},
            "worklist": [_decode_pairset(s) for s in doc["worklist"]],
            "transitions": [
                (_decode_pairset(s), str(e), _decode_pairset(s2))
                for s, e, s2 in doc["transitions"]
            ],
            "explored": int(doc["explored"]),
            "rejected": int(doc["rejected"]),
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(f"malformed safety phase state: {exc}") from exc


def _encode_rounds(rounds: Iterable[Any]) -> list[dict]:
    return [
        {
            "round_index": r.round_index,
            "bad_states": sorted(
                (_encode_pairset(s) for s in r.bad_states),
                key=lambda d: json.dumps(d, sort_keys=True),
            ),
            "remaining": r.remaining,
        }
        for r in rounds
    ]


def _decode_rounds(docs: Iterable[dict]) -> tuple:
    from ..quotient.types import ProgressRound

    try:
        return tuple(
            ProgressRound(
                round_index=int(d["round_index"]),
                bad_states=frozenset(
                    _decode_pairset(s) for s in d["bad_states"]
                ),
                remaining=int(d["remaining"]),
            )
            for d in docs
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(f"malformed progress phase state: {exc}") from exc


def completed_safety_state(safety: Any) -> dict:
    """The resume-state of a safety phase that ran to completion.

    Feeding this to ``safety_phase(resume=...)`` replays no work (the
    frontier is empty) and reconstructs a byte-identical
    ``SafetyPhaseResult`` — including the work counters — which is how a
    checkpoint taken during a *later* phase restores the earlier one.
    """
    spec = safety.spec
    return {
        "start": spec.initial,
        "current": None,
        "next_event": 0,
        "states": set(spec.states),
        "worklist": [],
        "transitions": [tuple(t) for t in spec.external],
        "explored": safety.explored,
        "rejected": safety.rejected,
    }


def quotient_checkpoint(
    problem: Any,
    *,
    phase: str,
    safety_state: dict | None,
    rounds: Iterable[Any] | None,
) -> Checkpoint:
    """Build the quotient-kind checkpoint for an interrupted solve."""
    payload: dict = {"safety": _encode_safety_state(safety_state)}
    if rounds is not None:
        payload["progress"] = {"rounds": _encode_rounds(rounds)}
    return Checkpoint(
        kind=KIND_QUOTIENT,
        fingerprint=problem_fingerprint(problem),
        phase=phase,
        payload=payload,
    )


def decode_quotient_payload(ckpt: Checkpoint) -> tuple[dict | None, tuple | None]:
    """``(safety_resume, progress_resume)`` of a quotient checkpoint."""
    if ckpt.kind != KIND_QUOTIENT:
        raise PersistError(
            f"checkpoint kind {ckpt.kind!r} cannot resume a quotient solve"
        )
    safety = _decode_safety_state(ckpt.payload.get("safety"))
    progress = ckpt.payload.get("progress")
    rounds = _decode_rounds(progress["rounds"]) if progress is not None else None
    return safety, rounds


# ----------------------------------------------------------------------
# the anytime partial result
# ----------------------------------------------------------------------
def anytime_summary(ckpt: Checkpoint) -> dict:
    """The *anytime* view of an interrupted run, as a JSON-ready dict.

    Everything reported is a safe under-approximation of the completed
    run (states already proved safe, rounds already finished, cells
    already judged); the explicit ``"guarantees": "partial"`` marker keeps
    it from being mistaken for a final verdict.
    """
    out: dict = {"guarantees": "partial", "kind": ckpt.kind, "phase": ckpt.phase}
    if ckpt.kind == KIND_QUOTIENT:
        safety = ckpt.payload.get("safety")
        if safety is not None:
            out["safety"] = {
                "pairs_explored": safety["explored"],
                "pairs_rejected": safety["rejected"],
                "states_discovered": len(safety["states"]),
                "frontier": len(safety["worklist"]),
            }
        progress = ckpt.payload.get("progress")
        if progress is not None:
            out["progress"] = {"rounds_completed": len(progress["rounds"])}
    elif ckpt.kind == KIND_RESILIENCE:
        cells = ckpt.payload.get("cells", [])
        out["cells_completed"] = len(cells)
        out["cells_total"] = ckpt.payload.get("total")
        out["verdicts_so_far"] = _verdict_counts(cells)
    return out


def _verdict_counts(cells: Iterable[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for cell in cells:
        v = cell.get("verdict", "?")
        counts[v] = counts.get(v, 0) + 1
    return dict(sorted(counts.items()))


def render_anytime_text(summary: dict) -> str:
    """The anytime summary as deterministic human-readable lines."""
    lines = [f"guarantees: {summary['guarantees']}"]
    lines.append(
        f"interrupted during the {summary['phase']} phase "
        f"of a {summary['kind']} run"
    )
    safety = summary.get("safety")
    if safety is not None:
        lines.append(
            f"  safety so far: {safety['states_discovered']} state(s) proved "
            f"safe, {safety['pairs_explored']} pair set(s) explored "
            f"({safety['pairs_rejected']} rejected), "
            f"{safety['frontier']} on the frontier"
        )
    progress = summary.get("progress")
    if progress is not None:
        lines.append(
            f"  progress so far: {progress['rounds_completed']} round(s) "
            "completed"
        )
    if "cells_completed" in summary:
        lines.append(
            f"  cells so far: {summary['cells_completed']}"
            f"/{summary['cells_total']} judged"
        )
        verdicts = summary.get("verdicts_so_far") or {}
        if verdicts:
            lines.append(
                "  verdicts so far: "
                + ", ".join(f"{v}: {n}" for v, n in verdicts.items())
            )
    return "\n".join(lines)
