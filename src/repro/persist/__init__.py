"""Crash-safe checkpointing and exact resume for long-running solves.

The quotient's pair-set exploration is combinatorial (and for general
communicating FSMs unbounded), so production solves must survive
interruption: a budget trip, a SIGINT, a deadline, or a crashed worker.
This package provides the three layers that make that survivable:

* :mod:`repro.persist.checkpoint` — schema-versioned, content-fingerprinted
  serialization of partial phase state (:class:`Checkpoint`), precise
  enough that resuming reproduces the uninterrupted run **byte for byte**;
* :mod:`repro.persist.store` — atomic durable snapshots (tmp + fsync +
  rename) with corruption detection and fallback to the previous good
  snapshot; the generic :func:`write_envelope` / :func:`read_envelope`
  pair is also what the run ledger (:mod:`repro.obs.ledger`) builds on;
* :mod:`repro.persist.interrupt` — the cooperative
  :class:`InterruptController` that turns SIGINT / deadlines /
  deterministic test points into
  :class:`~repro.errors.InterruptRequested` at charge boundaries.

See ``docs/robustness.md`` for the end-to-end story (CLI flags
``--checkpoint`` / ``--resume`` / ``--deadline``, exit code 4, the
``guarantees: partial`` anytime output).
"""

from ..errors import InterruptRequested, PersistError
from .checkpoint import (
    SCHEMA_VERSION,
    Checkpoint,
    anytime_summary,
    completed_safety_state,
    decode_quotient_payload,
    problem_fingerprint,
    quotient_checkpoint,
    render_anytime_text,
    resilience_fingerprint,
    spec_fingerprint,
)
from .interrupt import InterruptController
from .store import (
    Store,
    load_checkpoint,
    read_envelope,
    save_checkpoint,
    write_envelope,
)

__all__ = [
    "Checkpoint",
    "InterruptController",
    "InterruptRequested",
    "PersistError",
    "SCHEMA_VERSION",
    "Store",
    "anytime_summary",
    "completed_safety_state",
    "decode_quotient_payload",
    "load_checkpoint",
    "problem_fingerprint",
    "quotient_checkpoint",
    "read_envelope",
    "render_anytime_text",
    "resilience_fingerprint",
    "save_checkpoint",
    "spec_fingerprint",
    "write_envelope",
]
