"""Cooperative interruption at deterministic work-counter boundaries.

An :class:`InterruptController` is shared by every
:class:`~repro.quotient.budget.BudgetMeter` of one run.  Each charge
calls :meth:`InterruptController.tick`; when an interrupt is pending the
tick returns its reason and the meter raises
:class:`~repro.errors.InterruptRequested` *at that charge boundary* —
after the current unit of work has been fully processed — so the captured
phase state is always consistent and resume is exact.

Three interrupt sources:

* :meth:`request` — called from a signal handler (see
  :meth:`install_sigint`) or any other thread; the run stops at the next
  boundary instead of unwinding mid-loop the way ``KeyboardInterrupt``
  would.
* ``deadline_s`` — a soft wall-clock ceiling measured from construction,
  checked every :data:`DEADLINE_CHECK_INTERVAL` charges to keep the hot
  loop free of clock reads.
* ``at_charge`` — fire at the N-th charge exactly.  This is the
  deterministic test hook: because charge sites are mirrored between the
  kernel and reference paths, ``at_charge=n`` interrupts both at the same
  unit of work, which is what the differential resume tests exploit.

The controller also counts charges (``charges``), so a dry run with no
interrupt configured doubles as a work-counter probe.
"""

from __future__ import annotations

import contextlib
import signal
import time
from typing import Callable, Iterator

__all__ = ["DEADLINE_CHECK_INTERVAL", "InterruptController"]

#: Charges between deadline clock reads (same rationale as the budget
#: meter's TIME_CHECK_INTERVAL, but smaller: a deadline is usually set by
#: an operator who wants the overrun bounded tightly).
DEADLINE_CHECK_INTERVAL = 64


class InterruptController:
    """Turns external stop requests into charge-boundary interrupts."""

    __slots__ = (
        "deadline_s",
        "at_charge",
        "charges",
        "_clock",
        "_started",
        "_reason",
        "_ticks",
    )

    def __init__(
        self,
        *,
        deadline_s: float | None = None,
        at_charge: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s!r}")
        if at_charge is not None and at_charge < 1:
            raise ValueError(f"at_charge must be >= 1, got {at_charge!r}")
        self.deadline_s = deadline_s
        self.at_charge = at_charge
        self.charges = 0
        self._clock = clock
        self._started = clock()
        self._reason: str | None = None
        # one tick short of the interval, so very short runs still see
        # their deadline at the first charge
        self._ticks = DEADLINE_CHECK_INTERVAL - 1

    # ------------------------------------------------------------------
    def request(self, reason: str = "interrupt requested") -> None:
        """Ask the run to stop at the next charge boundary (thread-safe:
        a single attribute store)."""
        self._reason = reason

    @property
    def requested(self) -> bool:
        return self._reason is not None

    def elapsed(self) -> float:
        return self._clock() - self._started

    def tick(self) -> str | None:
        """Count one charge; the pending interrupt reason, or ``None``."""
        self.charges += 1
        if self._reason is not None:
            return self._reason
        if self.at_charge is not None and self.charges >= self.at_charge:
            return f"test interrupt at charge {self.charges}"
        if self.deadline_s is not None:
            self._ticks += 1
            if self._ticks >= DEADLINE_CHECK_INTERVAL:
                self._ticks = 0
                if self.elapsed() > self.deadline_s:
                    return f"deadline of {self.deadline_s}s exceeded"
        return None

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def install_signals(
        self, signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)
    ) -> Iterator["InterruptController"]:
        """Route *signals* to :meth:`request` while the context is active.

        Inside the context, Ctrl-C — and, by default, a polite ``kill`` /
        orchestrator ``SIGTERM`` (a draining container, a preempted batch
        slot) — stops the run *cooperatively*: the solve raises
        :class:`~repro.errors.InterruptRequested` at the next charge
        boundary with a consistent checkpoint, instead of
        ``KeyboardInterrupt`` (or summary death) tearing through the
        loop.  The previous handlers are restored on exit.  A second
        signal while one is already pending falls through to that
        signal's previous handler, so a stuck run can still be killed
        the hard way.
        """

        previous = {sig: signal.getsignal(sig) for sig in signals}

        def make_handler(sig: int):
            name = signal.Signals(sig).name

            def handler(signum: int, frame: object) -> None:
                before = previous[sig]
                if self._reason is not None and callable(before):
                    before(signum, frame)
                    return
                self.request(f"{name} received")

            return handler

        for sig in signals:
            signal.signal(sig, make_handler(sig))
        try:
            yield self
        finally:
            for sig, before in previous.items():
                signal.signal(sig, before)

    @contextlib.contextmanager
    def install_sigint(self) -> Iterator["InterruptController"]:
        """Route SIGINT only (see :meth:`install_signals`)."""
        with self.install_signals((signal.SIGINT,)):
            yield self
