"""Atomic, integrity-checked JSON document store.

The on-disk format wraps a JSON body in an envelope carrying its own
content hash::

    {"schema": 1, "sha256": "<hex of canonical body>", "body": {...}}

Writes are atomic: the document goes to a temporary file *in the same
directory* (so the final rename never crosses filesystems), is flushed
and fsync'd, and only then renamed over the target with ``os.replace``.
Before the rename, the previous snapshot — known good, because it passed
the same hash check when written — is rotated to ``<path>.prev``.  A
crash at any point therefore leaves either the old snapshot, the new
snapshot, or (between the two renames) only ``.prev``; never a torn file
that parses.

Reads verify the hash over the canonical body serialization.  A
truncated, bit-flipped, or otherwise corrupt file raises
:class:`~repro.errors.PersistError` — and the loaders then fall back to
``.prev`` automatically, so one bad write costs at most one snapshot's
worth of progress.

Two document kinds share this machinery: checkpoints
(:func:`save_checkpoint` / :func:`load_checkpoint`) and the append-only
run ledger (:mod:`repro.obs.ledger`), which uses the generic
:func:`write_envelope` / :func:`read_envelope` pair directly.

Raw file I/O additionally runs under a
:class:`~repro.chaos.RetryPolicy` (``DEFAULT_STORE_RETRY``): a transient
:class:`OSError` — a full disk that frees up, an I/O hiccup — is retried
with deterministic jittered backoff before surfacing as
:class:`~repro.errors.PersistError`.  Integrity failures are **never**
retried (re-reading a bit-flipped file cannot help); they go straight to
the ``.prev`` fallback.  Both the write and the read path carry
:mod:`repro.chaos` seams so fault-injection tests can exercise exactly
these layers; the seams cost one global read when chaos is inactive.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile

from .. import chaos, obs
from ..chaos import DEFAULT_STORE_RETRY, RetryPolicy
from ..errors import PersistError
from .checkpoint import Checkpoint

__all__ = [
    "load_checkpoint",
    "read_envelope",
    "save_checkpoint",
    "write_envelope",
]

#: Version of the file *envelope* (independent of the body schema).
STORE_VERSION = 1

_ENVELOPE_KEYS = frozenset({"schema", "sha256", "body"})

#: Suffix of the rotated previous-good snapshot.
PREV_SUFFIX = ".prev"


def _canonical_body(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _write_envelope_raw(path: str, envelope: dict) -> None:
    """One physical write attempt; raises :class:`OSError` on failure.

    The chaos seam sits here — *inside* the retried unit — so an
    injected transient fault exercises the same retry path a real one
    would.  An injected *partial* write is the one fault the atomic
    rename cannot model from outside: it "succeeds" while leaving a torn
    primary (after rotating the previous good snapshot to ``.prev``),
    which is precisely the crash state the read fallback exists for.
    """
    state = chaos.active()
    fault = state.store_write_fault() if state is not None else None
    if fault == "enospc":
        raise OSError(errno.ENOSPC, f"chaos: injected ENOSPC writing {path!r}")
    if fault == "error":
        raise OSError(errno.EIO, f"chaos: injected I/O error writing {path!r}")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        if os.path.exists(path):
            os.replace(path, path + PREV_SUFFIX)
        if fault == "partial":
            text = json.dumps(envelope, indent=2, sort_keys=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text[: max(8, len(text) // 3)])
            os.unlink(tmp_path)
            return
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_envelope(
    path: str,
    body: dict,
    *,
    kind: str = "document",
    retry: RetryPolicy | None = None,
) -> str:
    """Durably write *body* inside an integrity envelope; returns *path*.

    The write is atomic (tmp file + fsync + ``os.replace``) and the
    previous snapshot (if any) survives as ``path + ".prev"`` until the
    next successful write rotates it out.  Transient :class:`OSError`\\ s
    are retried under *retry* (default ``DEFAULT_STORE_RETRY``) before
    surfacing as :class:`~repro.errors.PersistError`.  *kind* labels
    errors and the retry site.
    """
    canonical = _canonical_body(body)
    envelope = {
        "schema": STORE_VERSION,
        "sha256": hashlib.sha256(canonical).hexdigest(),
        "body": body,
    }
    policy = retry if retry is not None else DEFAULT_STORE_RETRY
    try:
        policy.call(
            lambda: _write_envelope_raw(path, envelope),
            site=f"store.write:{kind}",
        )
    except OSError as exc:
        raise PersistError(f"cannot write {kind} {path!r}: {exc}") from exc
    return path


def _read_text(path: str) -> str:
    """One physical read attempt; raises :class:`OSError` on failure."""
    state = chaos.active()
    if state is not None and state.store_read_fault():
        raise OSError(errno.EIO, f"chaos: injected I/O error reading {path!r}")
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _read_envelope_one(path: str, *, kind: str = "document") -> dict:
    try:
        text = DEFAULT_STORE_RETRY.call(
            lambda: _read_text(path), site=f"store.read:{kind}"
        )
    except FileNotFoundError as exc:
        raise PersistError(f"no {kind} at {path!r}") from exc
    except OSError as exc:
        raise PersistError(f"cannot read {kind} {path!r}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise PersistError(
            f"{kind} {path!r} is corrupt (not valid JSON): {exc}"
        ) from exc
    if not isinstance(envelope, dict):
        raise PersistError(f"{kind} {path!r} is not an object")
    unknown = sorted(set(envelope) - _ENVELOPE_KEYS)
    if unknown:
        raise PersistError(
            f"{kind} {path!r} carries unknown envelope field(s) "
            f"{unknown} — written by a newer schema?"
        )
    missing = sorted(_ENVELOPE_KEYS - set(envelope))
    if missing:
        raise PersistError(
            f"{kind} {path!r} is missing envelope field(s) {missing}"
        )
    if envelope["schema"] != STORE_VERSION:
        raise PersistError(
            f"{kind} {path!r} has unsupported envelope schema "
            f"{envelope['schema']!r} (this version reads {STORE_VERSION})"
        )
    body = envelope["body"]
    if not isinstance(body, dict):
        raise PersistError(f"{kind} {path!r} body is not an object")
    digest = hashlib.sha256(_canonical_body(body)).hexdigest()
    if digest != envelope["sha256"]:
        raise PersistError(
            f"{kind} {path!r} failed its integrity check "
            f"(sha256 mismatch: file says {envelope['sha256']!r}, "
            f"body hashes to {digest!r}) — truncated or bit-flipped write?"
        )
    return body


def read_envelope(
    path: str, *, fallback: bool = True, kind: str = "document"
) -> dict:
    """Load and verify the envelope body at *path*.

    On corruption (or a missing primary file), falls back to the rotated
    previous-good snapshot ``path + ".prev"`` when *fallback* is on,
    counting ``persist.fallbacks``.  Raises
    :class:`~repro.errors.PersistError` when neither is usable.
    """
    try:
        return _read_envelope_one(path, kind=kind)
    except PersistError as primary_error:
        prev = path + PREV_SUFFIX
        if not fallback or not os.path.exists(prev):
            raise
        obs.add("persist.fallbacks", 1)
        try:
            return _read_envelope_one(prev, kind=kind)
        except PersistError as prev_error:
            raise PersistError(
                f"both snapshots are unusable: {primary_error}; "
                f"fallback: {prev_error}"
            ) from prev_error


def save_checkpoint(path: str, checkpoint: Checkpoint) -> str:
    """Durably write *checkpoint* to *path*; returns the path written.

    The previous snapshot (if any) survives as ``path + ".prev"`` until
    the next successful write rotates it out.  The write is announced to
    the current obs collector (``checkpoint.write`` instant event) and
    the current progress reporter, so it is visible both on the trace
    timeline and in a live ``--progress`` stream.
    """
    write_envelope(path, checkpoint.to_json_dict(), kind="checkpoint")
    obs.add("persist.snapshots_written", 1)
    obs.event("checkpoint.write", path=path, phase=checkpoint.phase)
    from ..obs.progress import current_reporter

    reporter = current_reporter()
    if reporter is not None:
        reporter.checkpoint_written(path)
    return path


def _load_one(path: str) -> Checkpoint:
    body = _read_envelope_one(path, kind="checkpoint")
    checkpoint = Checkpoint.from_json_dict(body)
    obs.add("persist.snapshots_loaded", 1)
    return checkpoint


def load_checkpoint(path: str, *, fallback: bool = True) -> Checkpoint:
    """Load and verify the checkpoint snapshot at *path*.

    On corruption (or a missing primary file, or a body that does not
    decode as a checkpoint), falls back to the rotated previous-good
    snapshot ``path + ".prev"`` when *fallback* is on, counting
    ``persist.fallbacks``.  Raises :class:`~repro.errors.PersistError`
    when neither is usable.
    """
    try:
        return _load_one(path)
    except PersistError as primary_error:
        prev = path + PREV_SUFFIX
        if not fallback or not os.path.exists(prev):
            raise
        obs.add("persist.fallbacks", 1)
        try:
            return _load_one(prev)
        except PersistError as prev_error:
            raise PersistError(
                f"both snapshots are unusable: {primary_error}; "
                f"fallback: {prev_error}"
            ) from prev_error
