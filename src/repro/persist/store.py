"""Atomic, integrity-checked JSON document store.

The on-disk format wraps a JSON body in an envelope carrying its own
content hash::

    {"schema": 1, "sha256": "<hex of canonical body>", "body": {...}}

Writes are atomic: the document goes to a temporary file *in the same
directory* (so the final rename never crosses filesystems), is flushed
and fsync'd, and only then renamed over the target with ``os.replace``.
Before the rename, the previous snapshot — known good, because it passed
the same hash check when written — is rotated to ``<path>.prev``.  A
crash at any point therefore leaves either the old snapshot, the new
snapshot, or (between the two renames) only ``.prev``; never a torn file
that parses.

Reads verify the hash over the canonical body serialization.  A
truncated, bit-flipped, or otherwise corrupt file raises
:class:`~repro.errors.PersistError` — and the loaders then fall back to
``.prev`` automatically, so one bad write costs at most one snapshot's
worth of progress.

Two document kinds share this machinery: checkpoints
(:func:`save_checkpoint` / :func:`load_checkpoint`) and the append-only
run ledger (:mod:`repro.obs.ledger`), which uses the generic
:func:`write_envelope` / :func:`read_envelope` pair directly.

Raw file I/O additionally runs under a
:class:`~repro.chaos.RetryPolicy` (``DEFAULT_STORE_RETRY``): a transient
:class:`OSError` — a full disk that frees up, an I/O hiccup — is retried
with deterministic jittered backoff before surfacing as
:class:`~repro.errors.PersistError`.  Integrity failures are **never**
retried (re-reading a bit-flipped file cannot help); they go straight to
the ``.prev`` fallback.  Both the write and the read path carry
:mod:`repro.chaos` seams so fault-injection tests can exercise exactly
these layers; the seams cost one global read when chaos is inactive.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile

from .. import chaos, obs
from ..chaos import DEFAULT_STORE_RETRY, RetryPolicy
from ..errors import PersistError
from .checkpoint import Checkpoint

__all__ = [
    "Store",
    "load_checkpoint",
    "read_envelope",
    "save_checkpoint",
    "write_envelope",
]

#: Version of the file *envelope* (independent of the body schema).
STORE_VERSION = 1

_ENVELOPE_KEYS = frozenset({"schema", "sha256", "body"})

#: Suffix of the rotated previous-good snapshot.
PREV_SUFFIX = ".prev"


def _canonical_body(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _write_envelope_raw(path: str, envelope: dict) -> None:
    """One physical write attempt; raises :class:`OSError` on failure.

    The chaos seam sits here — *inside* the retried unit — so an
    injected transient fault exercises the same retry path a real one
    would.  An injected *partial* write is the one fault the atomic
    rename cannot model from outside: it "succeeds" while leaving a torn
    primary (after rotating the previous good snapshot to ``.prev``),
    which is precisely the crash state the read fallback exists for.
    """
    state = chaos.active()
    fault = state.store_write_fault() if state is not None else None
    if fault == "enospc":
        raise OSError(errno.ENOSPC, f"chaos: injected ENOSPC writing {path!r}")
    if fault == "error":
        raise OSError(errno.EIO, f"chaos: injected I/O error writing {path!r}")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        if os.path.exists(path):
            os.replace(path, path + PREV_SUFFIX)
        if fault == "partial":
            text = json.dumps(envelope, indent=2, sort_keys=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text[: max(8, len(text) // 3)])
            os.unlink(tmp_path)
            return
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_envelope(
    path: str,
    body: dict,
    *,
    kind: str = "document",
    retry: RetryPolicy | None = None,
) -> str:
    """Durably write *body* inside an integrity envelope; returns *path*.

    The write is atomic (tmp file + fsync + ``os.replace``) and the
    previous snapshot (if any) survives as ``path + ".prev"`` until the
    next successful write rotates it out.  Transient :class:`OSError`\\ s
    are retried under *retry* (default ``DEFAULT_STORE_RETRY``) before
    surfacing as :class:`~repro.errors.PersistError`.  *kind* labels
    errors and the retry site.
    """
    canonical = _canonical_body(body)
    envelope = {
        "schema": STORE_VERSION,
        "sha256": hashlib.sha256(canonical).hexdigest(),
        "body": body,
    }
    policy = retry if retry is not None else DEFAULT_STORE_RETRY
    try:
        policy.call(
            lambda: _write_envelope_raw(path, envelope),
            site=f"store.write:{kind}",
        )
    except OSError as exc:
        raise PersistError(f"cannot write {kind} {path!r}: {exc}") from exc
    return path


def _read_text(path: str) -> str:
    """One physical read attempt; raises :class:`OSError` on failure."""
    state = chaos.active()
    if state is not None and state.store_read_fault():
        raise OSError(errno.EIO, f"chaos: injected I/O error reading {path!r}")
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _read_envelope_one(path: str, *, kind: str = "document") -> dict:
    try:
        text = DEFAULT_STORE_RETRY.call(
            lambda: _read_text(path), site=f"store.read:{kind}"
        )
    except FileNotFoundError as exc:
        raise PersistError(f"no {kind} at {path!r}") from exc
    except OSError as exc:
        raise PersistError(f"cannot read {kind} {path!r}: {exc}") from exc
    return _validate_envelope(text, path, kind)


def _validate_envelope(text: str, path: str, kind: str) -> dict:
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise PersistError(
            f"{kind} {path!r} is corrupt (not valid JSON): {exc}"
        ) from exc
    if not isinstance(envelope, dict):
        raise PersistError(f"{kind} {path!r} is not an object")
    unknown = sorted(set(envelope) - _ENVELOPE_KEYS)
    if unknown:
        raise PersistError(
            f"{kind} {path!r} carries unknown envelope field(s) "
            f"{unknown} — written by a newer schema?"
        )
    missing = sorted(_ENVELOPE_KEYS - set(envelope))
    if missing:
        raise PersistError(
            f"{kind} {path!r} is missing envelope field(s) {missing}"
        )
    if envelope["schema"] != STORE_VERSION:
        raise PersistError(
            f"{kind} {path!r} has unsupported envelope schema "
            f"{envelope['schema']!r} (this version reads {STORE_VERSION})"
        )
    body = envelope["body"]
    if not isinstance(body, dict):
        raise PersistError(f"{kind} {path!r} body is not an object")
    digest = hashlib.sha256(_canonical_body(body)).hexdigest()
    if digest != envelope["sha256"]:
        raise PersistError(
            f"{kind} {path!r} failed its integrity check "
            f"(sha256 mismatch: file says {envelope['sha256']!r}, "
            f"body hashes to {digest!r}) — truncated or bit-flipped write?"
        )
    return body


def read_envelope(
    path: str, *, fallback: bool = True, kind: str = "document"
) -> dict:
    """Load and verify the envelope body at *path*.

    On corruption (or a missing primary file), falls back to the rotated
    previous-good snapshot ``path + ".prev"`` when *fallback* is on,
    counting ``persist.fallbacks``.  Raises
    :class:`~repro.errors.PersistError` when neither is usable.
    """
    try:
        return _read_envelope_one(path, kind=kind)
    except PersistError as primary_error:
        prev = path + PREV_SUFFIX
        if not fallback or not os.path.exists(prev):
            raise
        obs.add("persist.fallbacks", 1)
        try:
            return _read_envelope_one(prev, kind=kind)
        except PersistError as prev_error:
            raise PersistError(
                f"both snapshots are unusable: {primary_error}; "
                f"fallback: {prev_error}"
            ) from prev_error


def save_checkpoint(path: str, checkpoint: Checkpoint) -> str:
    """Durably write *checkpoint* to *path*; returns the path written.

    The previous snapshot (if any) survives as ``path + ".prev"`` until
    the next successful write rotates it out.  The write is announced to
    the current obs collector (``checkpoint.write`` instant event) and
    the current progress reporter, so it is visible both on the trace
    timeline and in a live ``--progress`` stream.
    """
    write_envelope(path, checkpoint.to_json_dict(), kind="checkpoint")
    obs.add("persist.snapshots_written", 1)
    obs.event("checkpoint.write", path=path, phase=checkpoint.phase)
    from ..obs.progress import current_reporter

    reporter = current_reporter()
    if reporter is not None:
        reporter.checkpoint_written(path)
    return path


def _load_one(path: str) -> Checkpoint:
    body = _read_envelope_one(path, kind="checkpoint")
    checkpoint = Checkpoint.from_json_dict(body)
    obs.add("persist.snapshots_loaded", 1)
    return checkpoint


def load_checkpoint(path: str, *, fallback: bool = True) -> Checkpoint:
    """Load and verify the checkpoint snapshot at *path*.

    On corruption (or a missing primary file, or a body that does not
    decode as a checkpoint), falls back to the rotated previous-good
    snapshot ``path + ".prev"`` when *fallback* is on, counting
    ``persist.fallbacks``.  Raises :class:`~repro.errors.PersistError`
    when neither is usable.
    """
    try:
        return _load_one(path)
    except PersistError as primary_error:
        prev = path + PREV_SUFFIX
        if not fallback or not os.path.exists(prev):
            raise
        obs.add("persist.fallbacks", 1)
        try:
            return _load_one(prev)
        except PersistError as prev_error:
            raise PersistError(
                f"both snapshots are unusable: {primary_error}; "
                f"fallback: {prev_error}"
            ) from prev_error


# ----------------------------------------------------------------------
# directory stores: named documents plus garbage collection
# ----------------------------------------------------------------------
class Store:
    """A directory of named envelope documents, with :meth:`gc`.

    Thin sugar over :func:`write_envelope` / :func:`read_envelope`: each
    document is one file under *root* (names may contain ``/`` for
    subdirectories), so every read and write inherits the atomic-rename,
    ``.prev``-fallback, integrity-check, and chaos/retry machinery of the
    module functions.  The serve layer (:mod:`repro.serve`) keys its
    result cache, job records, and checkpoints through stores.

    :meth:`gc` is the maintenance pass the write protocol makes
    necessary: crashes (and injected ``write_partial`` chaos) can leave
    orphaned ``*.tmp`` files, torn primaries, and stale ``.prev``
    snapshots behind.  It prunes the garbage, heals torn primaries from
    their healthy ``.prev``, and counts everything under ``persist.gc.*``.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- paths ---------------------------------------------------------
    def path(self, name: str) -> str:
        if os.path.isabs(name) or ".." in name.split("/"):
            raise PersistError(f"invalid store document name {name!r}")
        return os.path.join(self.root, name)

    def exists(self, name: str) -> bool:
        path = self.path(name)
        return os.path.exists(path) or os.path.exists(path + PREV_SUFFIX)

    def names(self) -> tuple[str, ...]:
        """Relative names of all primary documents, sorted."""
        out = []
        for dirpath, _, filenames in os.walk(self.root):
            for fn in filenames:
                if fn.endswith((PREV_SUFFIX, ".tmp")):
                    continue
                full = os.path.join(dirpath, fn)
                out.append(os.path.relpath(full, self.root).replace(os.sep, "/"))
        return tuple(sorted(out))

    # -- documents -----------------------------------------------------
    def write(self, name: str, body: dict, *, kind: str = "document") -> str:
        path = self.path(name)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        return write_envelope(path, body, kind=kind)

    def read(
        self, name: str, *, kind: str = "document", fallback: bool = True
    ) -> dict:
        return read_envelope(self.path(name), kind=kind, fallback=fallback)

    def remove(self, name: str) -> None:
        """Drop a document and its ``.prev`` snapshot (missing is fine)."""
        path = self.path(name)
        for victim in (path, path + PREV_SUFFIX):
            try:
                os.unlink(victim)
            except FileNotFoundError:
                pass

    # -- garbage collection --------------------------------------------
    @staticmethod
    def _probe(path: str) -> bool | None:
        """``True`` healthy, ``False`` corrupt, ``None`` unreadable.

        Deliberately bypasses the chaos read seam and the retry policy:
        gc must never mistake an *injected* transient read fault for
        corruption and delete a healthy file.  A real :class:`OSError`
        maps to ``None`` — gc leaves files it cannot read alone.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return None
        try:
            _validate_envelope(text, path, "document")
        except PersistError:
            return False
        return True

    def gc(self) -> dict:
        """Prune write debris; returns (and counts) what was done.

        Three kinds of garbage, all produced by crashes in the write
        protocol (or its chaos simulation):

        * orphaned ``*.tmp`` files — a crash between ``mkstemp`` and the
          final rename (removed);
        * torn primaries — a partial write that "succeeded" past the
          ``.prev`` rotation (healed by promoting the healthy ``.prev``
          back to primary, or removed when no fallback survives);
        * corrupt or orphaned ``.prev`` snapshots — a fallback that could
          never serve (removed; an orphan whose primary is gone is
          promoted instead).

        Healthy primaries and their healthy ``.prev`` fallbacks are never
        touched.  Stats land in the returned dict and the ``persist.gc.*``
        counters.
        """
        stats = {
            "scanned": 0,
            "tmp_removed": 0,
            "healed": 0,
            "corrupt_removed": 0,
            "prev_removed": 0,
        }
        primaries: list[str] = []
        prevs: list[str] = []
        for dirpath, _, filenames in os.walk(self.root):
            for fn in sorted(filenames):
                full = os.path.join(dirpath, fn)
                if fn.endswith(".tmp"):
                    try:
                        os.unlink(full)
                        stats["tmp_removed"] += 1
                    except OSError:
                        pass
                elif fn.endswith(PREV_SUFFIX):
                    prevs.append(full)
                else:
                    primaries.append(full)
        for path in primaries:
            stats["scanned"] += 1
            verdict = self._probe(path)
            if verdict is None:
                continue
            prev = path + PREV_SUFFIX
            prev_healthy = self._probe(prev) if os.path.exists(prev) else None
            if verdict:
                # healthy primary: a corrupt .prev can never serve as a
                # fallback, so it is garbage
                if prev_healthy is False:
                    os.unlink(prev)
                    stats["prev_removed"] += 1
                continue
            if prev_healthy:
                os.replace(prev, path)
                stats["healed"] += 1
            else:
                os.unlink(path)
                stats["corrupt_removed"] += 1
                if prev_healthy is False:
                    os.unlink(prev)
                    stats["prev_removed"] += 1
        for prev in prevs:
            # an orphaned .prev (primary gone: crash between the two
            # renames) is the previous good snapshot — promote it
            primary = prev[: -len(PREV_SUFFIX)]
            if os.path.exists(primary) or not os.path.exists(prev):
                continue
            if self._probe(prev):
                os.replace(prev, primary)
                stats["healed"] += 1
            else:
                os.unlink(prev)
                stats["prev_removed"] += 1
        obs.add("persist.gc.runs", 1)
        for key, value in stats.items():
            if value:
                obs.add(f"persist.gc.{key}", value)
        return stats
