"""State-space minimization.

Two reductions are provided:

* :func:`minimize_bisimulation` — quotient by strong bisimilarity (λ kept
  as a distinguished action).  Sound for *every* property this library
  checks, since strong bisimilarity refines trace equivalence and preserves
  sink/acceptance structure.
* :func:`minimize_deterministic` — classical Moore-style DFA minimization
  for λ-free deterministic specs (e.g. quotient-algorithm outputs), merging
  states with identical enabled-event behaviour.  Since our specifications
  carry prefix-closed languages (every state "accepts"), states are
  distinguished only by their enabled sets and successors.

Both return canonically relabeled machines.
"""

from __future__ import annotations

from ..errors import SpecError
from .equivalence import strong_bisimulation_classes
from .ops import prune_unreachable
from .spec import Specification, State


def minimize_bisimulation(spec: Specification) -> Specification:
    """Quotient *spec* by strong bisimilarity (after reachability pruning).

    A block whose members are joined by internal transitions cannot be
    merged faithfully: the quotient state would need a λ self-loop, which
    :class:`Specification` drops (self-loops are inert for ``λ*`` but not
    for strong bisimilarity, where λ is an explicit action).  Such blocks
    are split into singletons and the partition re-refined from that seed —
    splitting never *creates* intra-block λ edges, so one pass suffices and
    the result is strongly bisimilar to the input (if not always minimal).
    """
    spec = prune_unreachable(spec)
    classes = strong_bisimulation_classes(spec)
    offending = {
        classes[s] for s, s2 in spec.internal if classes[s] == classes[s2]
    }
    if offending:
        seed: dict[State, int] = {}
        block_map: dict[int, int] = {}
        next_id = 0
        for s in spec.sorted_by_rank(spec.states):
            old = classes[s]
            if old in offending:
                seed[s] = next_id
                next_id += 1
            else:
                if old not in block_map:
                    block_map[old] = next_id
                    next_id += 1
                seed[s] = block_map[old]
        classes = strong_bisimulation_classes(spec, initial_partition=seed)
    # pick deterministic representatives: block id is already deterministic
    states = sorted(set(classes.values()))
    external = {
        (classes[s], e, classes[s2]) for s, e, s2 in spec.external
    }
    internal = {
        (classes[s], classes[s2])
        for s, s2 in spec.internal
        if classes[s] != classes[s2]
    }
    return Specification(
        f"min({spec.name})",
        states,
        spec.alphabet,
        external,
        internal,
        classes[spec.initial],
    ).map_states(None)


def minimize_deterministic(spec: Specification) -> Specification:
    """Minimize a deterministic λ-free spec by Moore partition refinement.

    Raises :class:`SpecError` if the spec has internal transitions or
    event fan-out.  The result is the unique (up to isomorphism) minimal
    deterministic machine with the same trace set.
    """
    if not spec.is_deterministic():
        raise SpecError(
            "minimize_deterministic requires a deterministic λ-free spec",
            spec_name=spec.name,
        )
    spec = prune_unreachable(spec)

    # initial partition: by enabled-event set
    block_of: dict[State, int] = {}
    by_enabled: dict[frozenset, int] = {}
    for s in spec.sorted_states():
        key = frozenset(spec.enabled(s))
        if key not in by_enabled:
            by_enabled[key] = len(by_enabled)
        block_of[s] = by_enabled[key]
    n_blocks = len(by_enabled)

    while True:
        sig_of: dict[State, tuple] = {}
        for s in spec.states:
            succ_sig = tuple(
                sorted(
                    (e, block_of[next(iter(spec.successors(s, e)))])
                    for e in spec.enabled(s)
                )
            )
            sig_of[s] = (block_of[s], succ_sig)
        distinct = sorted(set(sig_of.values()))
        index = {sig: i for i, sig in enumerate(distinct)}
        new_block_of = {s: index[sig_of[s]] for s in spec.states}
        if len(distinct) == n_blocks:
            block_of = new_block_of
            break
        block_of = new_block_of
        n_blocks = len(distinct)

    external = {(block_of[s], e, block_of[s2]) for s, e, s2 in spec.external}
    return Specification(
        f"min({spec.name})",
        sorted(set(block_of.values())),
        spec.alphabet,
        external,
        (),
        block_of[spec.initial],
    ).map_states(None)
